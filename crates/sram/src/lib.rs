//! # bitrobust-sram
//!
//! A low-voltage SRAM simulator for the Rust reproduction of *"Bit Error
//! Robustness for Energy-Efficient DNN Accelerators"* (Stutz et al.,
//! MLSys 2021).
//!
//! DNN accelerators scale their scratchpad supply voltage below `Vmin` to
//! save energy; the price is an exponentially growing bit error rate in the
//! stored weights (the paper's Fig. 1). This crate provides the three
//! models that figure rests on:
//!
//! * [`VoltageErrorModel`] — voltage → bit error rate, calibrated to the
//!   published 14 nm measurements;
//! * [`EnergyModel`] — voltage → energy per access (`c + (1-c)V²`);
//! * [`SramArray`] — per-cell failure thresholds with spatial structure
//!   ([`CellProfile`]), stuck values, and persistence, from which
//!   `bitrobust-biterror` builds profiled chips.
//!
//! # Examples
//!
//! Fig. 1 in five lines — the energy available at each tolerated error rate:
//!
//! ```
//! use bitrobust_sram::{EnergyModel, VoltageErrorModel};
//!
//! let volts = VoltageErrorModel::chandramoorthy14nm();
//! let energy = EnergyModel::default();
//! for p in [1e-4, 1e-3, 1e-2] {
//!     let v = volts.voltage_for_rate(p);
//!     println!("p={p:.4} -> V/Vmin={v:.3}, saving={:.1}%", 100.0 * energy.saving_at(v));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod energy;
mod voltage;

pub use cells::{characterize, CellProfile, FaultStats, SramArray};
pub use energy::EnergyModel;
pub use voltage::VoltageErrorModel;
