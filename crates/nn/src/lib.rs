//! # bitrobust-nn
//!
//! A from-scratch neural-network substrate with hand-written backprop,
//! built for the Rust reproduction of *"Bit Error Robustness for
//! Energy-Efficient DNN Accelerators"* (Stutz et al., MLSys 2021).
//!
//! The paper's training schemes (quantization-aware training, weight
//! clipping, random bit error training) all revolve around swapping
//! parameter tensors around forward/backward passes; this crate provides
//! exactly the pieces that workflow needs:
//!
//! * layers with deterministic parameter order and **accumulating**
//!   gradients ([`Conv2d`], [`Linear`], [`GroupNorm`], [`BatchNorm2d`],
//!   [`Relu`], [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`], [`Sequential`],
//!   [`Residual`]);
//! * [`CrossEntropyLoss`] with the paper's label-smoothing variant;
//! * [`Sgd`] with momentum/weight decay and the paper's [`MultiStepLr`]
//!   schedule;
//! * a [`Model`] wrapper with parameter snapshot/restore, clipping,
//!   serialization, and a gradient buffer API
//!   ([`Model::grad_tensors`] / [`Model::accumulate_grads`] plus the
//!   fixed-shape [`tree_reduce_grads`] reduction) for deterministic
//!   data-parallel training;
//! * a finite-difference [`gradcheck`] harness validating every layer.
//!
//! Normalization layers implement the paper's App. E reparameterization
//! (`scale = 1 + alpha'`) so aggressive weight clipping cannot pin scales
//! below one, and [`BatchNorm2d`] supports evaluation with batch statistics
//! to reproduce the BN-fragility ablation (Tab. 10).
//!
//! # Examples
//!
//! ```
//! use bitrobust_nn::{CrossEntropyLoss, Linear, Mode, Model, Relu, Sequential, Sgd};
//! use bitrobust_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Linear::new(4, 16, &mut rng));
//! net.push(Relu::new());
//! net.push(Linear::new(16, 2, &mut rng));
//! let mut model = Model::new("demo", net);
//!
//! let x = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, &mut rng);
//! let labels = [0usize, 1, 0, 1, 0, 1, 0, 1];
//! let mut sgd = Sgd::new(0.1, 0.9, 5e-4);
//! for _ in 0..3 {
//!     model.zero_grads();
//!     let logits = model.forward(&x, Mode::Train);
//!     let out = CrossEntropyLoss::new().compute(&logits, &labels);
//!     model.backward(&out.grad);
//!     sgd.step(&mut model);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod container;
mod conv;
mod grad;
pub mod gradcheck;
pub mod init;
mod layer;
mod linear;
mod loss;
mod model;
mod norm;
mod optim;
mod param;
mod pooling;
pub mod quantized;

pub use activation::Relu;
pub use container::{Flatten, Residual, Sequential};
pub use conv::{Conv2d, CONV_COL_PANEL};
pub use grad::tree_reduce_grads;
pub use layer::{Layer, Mode};
pub use linear::Linear;
pub use loss::{CrossEntropyLoss, LossOutput};
pub use model::Model;
pub use norm::{BatchNorm2d, GroupNorm};
pub use optim::{MultiStepLr, Sgd};
pub use param::{Param, ParamKind};
pub use pooling::{GlobalAvgPool, MaxPool2d};
pub use quantized::{lower_layers, QActivation, QConv2d, QLinear, QNet, QOp};
