//! Offline, API-compatible subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot), vendored so the
//! workspace builds without network access.
//!
//! [`Mutex`] and [`Condvar`] wrap their `std::sync` counterparts and expose
//! the `parking_lot` calling convention: `lock()` returns the guard directly
//! (no `Result`), and `Condvar::wait` takes `&mut MutexGuard`. Lock
//! poisoning is transparently ignored, matching `parking_lot` semantics.
//! The real crate's smaller lock words and fairness policies are not
//! replicated; only the API contract is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership (std's `wait` consumes the guard).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant: present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant: present outside Condvar::wait")
    }
}

/// A condition variable with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the lock and waits for a notification, then
    /// re-acquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant: present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }
}
