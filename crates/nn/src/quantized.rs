//! Integer-domain inference: layers that compute on `i8` quantization
//! levels with exact `i32` accumulation, requantizing at layer boundaries.
//!
//! This is the forward path an accelerator actually executes: weights stay
//! as decoded quantization levels (`w ≈ w_scale · q_w + w_offset`, built by
//! `bitrobust_quant`'s `decode_i8` and lowered by
//! `bitrobust_core::QuantizedModel::compile`), activations are dynamically
//! quantized per tensor to a symmetric zero-point-0 `i8` scale, and every
//! matrix product runs through the packed integer GEMM
//! ([`mod@bitrobust_tensor::gemm_i8`]) with `i32` accumulators:
//!
//! ```text
//!   words ── decode ──▶ i8 weight panels ─┐
//!                                         ├─▶ i32 accumulate (gemm_i8)
//!   f32 x ─ quantize ─▶ i8 activations ───┘        │
//!                                                  ▼
//!                         requantize: y = s_x·s_w·dot + s_x·c_w·Σqx + b
//! ```
//!
//! The affine weight decode is applied *after* the integer product via the
//! identity `Σ x·w = s_x·s_w·Σ q_x·q_w + s_x·c_w·Σ q_x` (with `c_w` the
//! constant term of the weight decode), so asymmetric/unsigned schemes cost
//! only one extra activation row-sum — the integer inner loop never sees a
//! zero point.
//!
//! ReLU and max pooling operate **directly on the levels** (zero is exactly
//! representable at zero-point 0 and the decode is monotone), so they are
//! exact; Linear/Conv2d/GlobalAvgPool requantize their output to a fresh
//! dynamic scale. Everything here is intentionally single-threaded: the
//! campaign engine parallelizes over (pattern, batch) work items, and a
//! serial kernel is byte-deterministic across thread counts by construction.

use bitrobust_tensor::cast::{exact_count_to_f32, exact_i32_to_f32, quantize_round_i8};
use bitrobust_tensor::{gemm_i8, GemmOperandI8, Tensor};

use crate::Layer;

/// A dynamically quantized activation tensor: `x[i] ≈ scale * q[i]` with a
/// symmetric range and zero point 0 (so `q = 0` is exactly `x = 0`, which
/// is what makes integer ReLU and zero padding exact).
#[derive(Debug, Clone)]
pub struct QActivation {
    /// Quantized values in `[-127, 127]`.
    pub q: Vec<i8>,
    /// Dequantization multiplier.
    pub scale: f32,
    /// Logical tensor shape.
    pub shape: Vec<usize>,
}

impl QActivation {
    /// Quantizes an `f32` tensor to the dynamic symmetric `i8` scale
    /// `max|x| / 127` (1.0 for an all-zero tensor).
    pub fn quantize(x: &Tensor) -> Self {
        let amax = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if amax == 0.0 { 1.0 } else { amax / 127.0 };
        let inv = 1.0 / scale;
        let q = x.data().iter().map(|&v| quantize_round_i8(v, inv)).collect();
        Self { q, scale, shape: x.shape().to_vec() }
    }

    /// Decodes back to an `f32` tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self.q.iter().map(|&q| self.scale * f32::from(q)).collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    /// Size of dimension `d`.
    fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }
}

/// An integer-domain fully connected layer: the quantized twin of
/// [`crate::Linear`], holding the weight as decoded `i8` levels plus the
/// affine map back to weight space (`w ≈ w_scale · q + w_offset`).
#[derive(Debug, Clone)]
pub struct QLinear {
    qw: Vec<i8>, // [out, in] row-major
    w_scale: f32,
    w_offset: f32,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl QLinear {
    /// Builds the layer from a decoded weight image `[out, in]` and an f32
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    pub fn new(
        qw: Vec<i8>,
        w_scale: f32,
        w_offset: f32,
        bias: Vec<f32>,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        assert_eq!(qw.len(), in_features * out_features, "weight image size mismatch");
        assert_eq!(bias.len(), out_features, "bias size mismatch");
        Self { qw, w_scale, w_offset, bias, in_features, out_features }
    }

    /// Integer forward: `i8 × i8 → i32` GEMM, then requantize.
    pub fn infer(&self, x: &QActivation) -> QActivation {
        assert_eq!(x.shape.len(), 2, "QLinear expects [batch, features]");
        assert_eq!(x.dim(1), self.in_features, "QLinear input feature mismatch");
        let (batch, out_f, in_f) = (x.dim(0), self.out_features, self.in_features);

        // dot[b, o] = Σ_i qx[b, i] · qw[o, i]  (B = qwᵀ, absorbed at pack).
        let mut dot = vec![0i32; batch * out_f];
        gemm_i8(
            &mut dot,
            out_f,
            GemmOperandI8::row_major(&x.q, in_f),
            GemmOperandI8::transposed(&self.qw, in_f),
            batch,
            in_f,
            out_f,
        );

        // Σ x·w = s_x·s_w·dot + s_x·c_w·rowsum (c_w folds the weight
        // decode's constant term; exact because qx sums are integers).
        let mut out = Tensor::zeros(&[batch, out_f]);
        let data = out.data_mut();
        for b in 0..batch {
            let rowsum: i32 = x.q[b * in_f..(b + 1) * in_f].iter().map(|&v| i32::from(v)).sum();
            let corr = x.scale * self.w_offset * exact_i32_to_f32(rowsum);
            for o in 0..out_f {
                data[b * out_f + o] = x.scale * self.w_scale * exact_i32_to_f32(dot[b * out_f + o])
                    + corr
                    + self.bias[o];
            }
        }
        QActivation::quantize(&out)
    }
}

/// An integer-domain 2-D convolution: the quantized twin of
/// [`crate::Conv2d`], lowering each sample to an `i8` im2col matrix and
/// multiplying with the packed integer GEMM.
#[derive(Debug, Clone)]
pub struct QConv2d {
    qw: Vec<i8>, // [oc, ic*k*k] row-major
    w_scale: f32,
    w_offset: f32,
    bias: Vec<f32>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl QConv2d {
    /// Builds the layer from a decoded weight image `[oc, ic*k*k]` and an
    /// f32 bias.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent or `kernel`/`stride` is
    /// zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        qw: Vec<i8>,
        w_scale: f32,
        w_offset: f32,
        bias: Vec<f32>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        assert_eq!(
            qw.len(),
            out_channels * in_channels * kernel * kernel,
            "weight image size mismatch"
        );
        assert_eq!(bias.len(), out_channels, "bias size mismatch");
        Self { qw, w_scale, w_offset, bias, in_channels, out_channels, kernel, stride, padding }
    }

    /// Integer forward over `[batch, ic, h, w]`, one sample at a time.
    pub fn infer(&self, x: &QActivation) -> QActivation {
        assert_eq!(x.shape.len(), 4, "QConv2d expects [batch, ch, h, w]");
        let (batch, ic, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        assert_eq!(ic, self.in_channels, "QConv2d channel mismatch");
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        let (oc, k, ohw) = (self.out_channels, ic * self.kernel * self.kernel, oh * ow);
        let sample_in = ic * h * w;

        let mut out = Tensor::zeros(&[batch, oc, oh, ow]);
        let data = out.data_mut();
        let mut cols = vec![0i8; k * ohw];
        let mut dot = vec![0i32; oc * ohw];
        for s in 0..batch {
            let x_s = &x.q[s * sample_in..(s + 1) * sample_in];
            self.im2col(x_s, h, w, oh, ow, &mut cols);
            dot.fill(0);
            gemm_i8(
                &mut dot,
                ohw,
                GemmOperandI8::row_major(&self.qw, k),
                GemmOperandI8::row_major(&cols, ohw),
                oc,
                k,
                ohw,
            );
            // Padded positions hold qx = 0, which contributes exactly zero
            // to both the dot product and the column sums below.
            let out_s = &mut data[s * oc * ohw..(s + 1) * oc * ohw];
            for xi in 0..ohw {
                let mut colsum = 0i32;
                for r in 0..k {
                    colsum += i32::from(cols[r * ohw + xi]);
                }
                let corr = x.scale * self.w_offset * exact_i32_to_f32(colsum);
                for c in 0..oc {
                    out_s[c * ohw + xi] =
                        x.scale * self.w_scale * exact_i32_to_f32(dot[c * ohw + xi])
                            + corr
                            + self.bias[c];
                }
            }
        }
        QActivation::quantize(&out)
    }

    /// Lowers one `[ic, h, w]` sample of levels into the full `[k, oh*ow]`
    /// column matrix (an `i8` matrix is a quarter the size of its f32
    /// counterpart, so materializing it whole is still cheap).
    fn im2col(&self, x_s: &[i8], h: usize, w: usize, oh: usize, ow: usize, cols: &mut [i8]) {
        let ohw = oh * ow;
        for c in 0..self.in_channels {
            let x_c = &x_s[c * h * w..(c + 1) * h * w];
            for ky in 0..self.kernel {
                for kx in 0..self.kernel {
                    let r = (c * self.kernel + ky) * self.kernel + kx;
                    let row = &mut cols[r * ohw..(r + 1) * ohw];
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        let seg = &mut row[oy * ow..(oy + 1) * ow];
                        if iy < 0 || iy >= h as isize {
                            seg.fill(0);
                            continue;
                        }
                        let x_row = &x_c[iy as usize * w..(iy as usize + 1) * w];
                        for (ox, slot) in seg.iter_mut().enumerate() {
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            *slot = if ix < 0 || ix >= w as isize { 0 } else { x_row[ix as usize] };
                        }
                    }
                }
            }
        }
    }
}

/// One step of an integer-domain inference program.
#[derive(Debug, Clone)]
pub enum QOp {
    /// Fully connected layer (requantizes its output).
    Linear(QLinear),
    /// 2-D convolution (requantizes its output).
    Conv2d(QConv2d),
    /// `max(q, 0)` directly on the levels — exact at zero point 0.
    Relu,
    /// Reshape to `[batch, features]` — levels untouched.
    Flatten,
    /// Integer window max (the decode is monotone, so the level max is the
    /// value max; first maximum wins, like the float kernel).
    MaxPool2d {
        /// Pooling window size (square).
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Channel mean via an exact `i32` plane sum, then requantize.
    GlobalAvgPool,
}

impl QOp {
    /// Applies this op to an activation.
    pub fn apply(&self, x: QActivation) -> QActivation {
        match self {
            QOp::Linear(l) => l.infer(&x),
            QOp::Conv2d(c) => c.infer(&x),
            QOp::Relu => {
                let QActivation { mut q, scale, shape } = x;
                for v in &mut q {
                    *v = (*v).max(0);
                }
                QActivation { q, scale, shape }
            }
            QOp::Flatten => {
                assert!(x.shape.len() >= 2, "Flatten expects at least [batch, features]");
                let batch = x.dim(0);
                let features = x.q.len() / batch;
                QActivation { shape: vec![batch, features], ..x }
            }
            QOp::MaxPool2d { kernel, stride } => {
                assert_eq!(x.shape.len(), 4, "MaxPool2d expects [batch, ch, h, w]");
                let (batch, ch, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
                assert!(h >= *kernel && w >= *kernel, "input smaller than pooling kernel");
                let oh = (h - kernel) / stride + 1;
                let ow = (w - kernel) / stride + 1;
                let mut q = vec![0i8; batch * ch * oh * ow];
                for bc in 0..batch * ch {
                    let plane = &x.q[bc * h * w..(bc + 1) * h * w];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = i8::MIN;
                            for ky in 0..*kernel {
                                for kx in 0..*kernel {
                                    let v = plane[(oy * stride + ky) * w + ox * stride + kx];
                                    if v > best {
                                        best = v;
                                    }
                                }
                            }
                            q[(bc * oh + oy) * ow + ox] = best;
                        }
                    }
                }
                QActivation { q, scale: x.scale, shape: vec![batch, ch, oh, ow] }
            }
            QOp::GlobalAvgPool => {
                assert_eq!(x.shape.len(), 4, "GlobalAvgPool expects [batch, ch, h, w]");
                let (batch, ch, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
                let hw = h * w;
                let mut out = Tensor::zeros(&[batch, ch]);
                let data = out.data_mut();
                for (bc, d) in data.iter_mut().enumerate() {
                    let sum: i32 = x.q[bc * hw..(bc + 1) * hw].iter().map(|&v| i32::from(v)).sum();
                    *d = x.scale * exact_i32_to_f32(sum) / exact_count_to_f32(hw);
                }
                QActivation::quantize(&out)
            }
        }
    }
}

/// A compiled integer-domain inference program: the sequence of [`QOp`]s a
/// supported model lowers to (see `bitrobust_core::QuantizedModel::compile`).
#[derive(Debug, Clone, Default)]
pub struct QNet {
    ops: Vec<QOp>,
}

impl QNet {
    /// Builds a program from its ops.
    pub fn new(ops: Vec<QOp>) -> Self {
        Self { ops }
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs the integer-domain forward pass: quantize the input once, chain
    /// every op in the integer domain, dequantize the final activation.
    ///
    /// Single-threaded by design — callers (the campaign engine) fan out
    /// over (pattern, batch) work items, and a serial kernel is
    /// byte-deterministic across thread counts by construction.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut act = QActivation::quantize(x);
        for op in &self.ops {
            act = op.apply(act);
        }
        act.dequantize()
    }
}

/// Lowers a float layer tree rooted at `root` into a [`QNet`] program
/// *shape*, with the parameterized ops produced by `make_linear` /
/// `make_conv` (the caller owns the quantized weight images; this function
/// owns the supported-architecture walk).
///
/// `skip` lets the caller drop parameterless identity passthroughs it knows
/// about but this crate does not (e.g. detached activation probes); a
/// skipped layer contributes no op, so it must be the identity at inference
/// time.
///
/// Returns `Err` for any other layer without an integer-domain kernel
/// (normalization, residual blocks) and for layers hidden from `as_any`.
pub fn lower_layers(
    root: &dyn Layer,
    skip: &dyn Fn(&dyn Layer) -> bool,
    make_linear: &mut dyn FnMut(&crate::Linear) -> Result<QLinear, String>,
    make_conv: &mut dyn FnMut(&crate::Conv2d) -> Result<QConv2d, String>,
    ops: &mut Vec<QOp>,
) -> Result<(), String> {
    if skip(root) {
        return Ok(());
    }
    let any = match root.as_any() {
        Some(any) => any,
        None => {
            return Err(format!("layer {} has no integer-domain kernel", root.layer_type()));
        }
    };
    if let Some(seq) = any.downcast_ref::<crate::Sequential>() {
        for layer in seq.layers() {
            lower_layers(layer, skip, make_linear, make_conv, ops)?;
        }
    } else if let Some(fc) = any.downcast_ref::<crate::Linear>() {
        ops.push(QOp::Linear(make_linear(fc)?));
    } else if let Some(conv) = any.downcast_ref::<crate::Conv2d>() {
        ops.push(QOp::Conv2d(make_conv(conv)?));
    } else if any.downcast_ref::<crate::Relu>().is_some() {
        ops.push(QOp::Relu);
    } else if any.downcast_ref::<crate::Flatten>().is_some() {
        ops.push(QOp::Flatten);
    } else if let Some(pool) = any.downcast_ref::<crate::MaxPool2d>() {
        ops.push(QOp::MaxPool2d { kernel: pool.kernel(), stride: pool.stride() });
    } else if any.downcast_ref::<crate::GlobalAvgPool>().is_some() {
        ops.push(QOp::GlobalAvgPool);
    } else {
        return Err(format!("layer {} has no integer-domain kernel", root.layer_type()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Linear, Mode};
    use rand::SeedableRng;

    #[test]
    fn activation_round_trip_error_is_bounded_by_half_a_step() {
        let x = Tensor::from_vec(vec![2, 3], vec![0.5, -1.25, 0.0, 2.0, -0.01, 1.99]);
        let qa = QActivation::quantize(&x);
        let back = qa.dequantize();
        assert_eq!(back.shape(), x.shape());
        for (a, b) in x.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= qa.scale * 0.5 + 1e-7, "{a} vs {b}");
        }
        // Zero must be exact (zero point 0).
        assert_eq!(back.data()[2], 0.0);
    }

    #[test]
    fn all_zero_tensor_quantizes_exactly() {
        let x = Tensor::zeros(&[3, 3]);
        let qa = QActivation::quantize(&x);
        assert!(qa.q.iter().all(|&v| v == 0));
        assert_eq!(qa.dequantize().data(), x.data());
    }

    #[test]
    fn qlinear_matches_float_linear_within_activation_quantization() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let fc = Linear::new(16, 8, &mut rng);
        let x = Tensor::rand_uniform(&[4, 16], -1.0, 1.0, &mut rng);
        let y_ref = fc.infer(&x, Mode::Eval);

        // Quantize the float weight exactly representably (scale 2^-6),
        // then write the decoded values back into a float twin so the only
        // approximation in play is activation quantization.
        let mut w = Vec::new();
        fc.visit_params_ref(&mut |p| {
            if p.name() == "weight" {
                w = p.value().data().to_vec();
            }
        });
        let w_scale = 1.0 / 64.0;
        let qw: Vec<i8> =
            w.iter().map(|&v| (v / w_scale).round().clamp(-127.0, 127.0) as i8).collect();
        let w_exact: Vec<f32> = qw.iter().map(|&q| q as f32 * w_scale).collect();
        let mut fc_exact = fc;
        fc_exact.visit_params(&mut |p| {
            if p.name() == "weight" {
                p.value_mut().data_mut().copy_from_slice(&w_exact);
            } else {
                p.value_mut().data_mut().fill(0.0);
            }
        });
        let y_exact = fc_exact.infer(&x, Mode::Eval);

        let ql = QLinear::new(qw, w_scale, 0.0, vec![0.0; 8], 16, 8);
        let y_int = ql.infer(&QActivation::quantize(&x)).dequantize();

        let amax = y_exact.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (a, b) in y_int.data().iter().zip(y_exact.data()) {
            assert!((a - b).abs() <= 0.03 * amax.max(1.0), "{a} vs {b}");
        }
        // Sanity: quantizing the weight moved the reference only slightly.
        for (a, b) in y_exact.data().iter().zip(y_ref.data()) {
            assert!((a - b).abs() <= 0.1 * amax.max(1.0) + 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn relu_and_maxpool_are_exact_on_levels() {
        let x =
            Tensor::from_vec(vec![1, 1, 2, 4], vec![-1.0, 0.5, 0.25, -0.125, 1.0, -0.5, 0.75, 0.0]);
        let qa = QActivation::quantize(&x);
        let r = QOp::Relu.apply(qa.clone());
        for (&before, &after) in qa.q.iter().zip(&r.q) {
            assert_eq!(after, before.max(0));
        }
        let p = QOp::MaxPool2d { kernel: 2, stride: 2 }.apply(qa.clone());
        assert_eq!(p.shape, vec![1, 1, 1, 2]);
        assert_eq!(p.q[0], qa.q[0].max(qa.q[1]).max(qa.q[4]).max(qa.q[5]));
        assert_eq!(p.scale, qa.scale);
    }

    #[test]
    fn flatten_reshapes_without_touching_levels() {
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32 * 0.1);
        let qa = QActivation::quantize(&x);
        let f = QOp::Flatten.apply(qa.clone());
        assert_eq!(f.shape, vec![2, 12]);
        assert_eq!(f.q, qa.q);
    }

    #[test]
    fn global_avg_pool_uses_exact_integer_sums() {
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 0.5, -1.0, 0.0]);
        let qa = QActivation::quantize(&x);
        let g = QOp::GlobalAvgPool.apply(qa.clone());
        assert_eq!(g.shape, vec![1, 2]);
        let back = g.dequantize();
        // Channel means of the *quantized* input, then requantized once.
        let m0 = qa.scale * (qa.q[0] as i32 + qa.q[1] as i32) as f32 / 2.0;
        assert!((back.data()[0] - m0).abs() <= g.scale * 0.5 + 1e-7);
    }
}
