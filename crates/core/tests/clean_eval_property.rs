//! Property test: the batch-parallel clean-eval path is the campaign
//! engine with a single **no-op** pattern.
//!
//! Setup: quantize the model and write the dequantized weights back, so
//! the quantized image reproduces the model's weights exactly (a true
//! no-op pattern). Then, for arbitrary batch sizes — including sizes that
//! don't divide the dataset and sizes larger than it — `evaluate` must
//! equal `eval_images(model, [no-op pattern])` and the serial reference,
//! byte-for-byte.

use std::sync::OnceLock;

use bitrobust_core::{
    build, evaluate, evaluate_serial, ArchKind, Campaign, NormKind, QuantizedModel,
};
use bitrobust_data::{Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use proptest::prelude::*;
use rand::SeedableRng;

/// A model already on the quantization lattice, the matching no-op image,
/// and a 97-example dataset (prime-sized, so most batch sizes don't divide
/// it). Built once: every proptest case reuses the shared state.
fn setup() -> &'static (Model, QuantizedModel, Dataset) {
    static SETUP: OnceLock<(Model, QuantizedModel, Dataset)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let (_, test) = SynthDataset::Mnist.generate(0);
        let idx: Vec<usize> = (0..97).collect();
        let (x, y) = test.batch(&idx);
        let dataset = Dataset::new("test-subset", x, y, 10);

        // Put the model itself on the lattice so the quantized image is an
        // exact no-op: a campaign replica built from it carries weights
        // bit-identical to the model's.
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        q.write_to(&mut model);
        let noop = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        (model, noop, dataset)
    })
}

proptest! {
    #[test]
    fn clean_eval_equals_single_noop_pattern_campaign(batch_size in 1usize..120) {
        let (model, noop, dataset) = setup();

        let clean = evaluate(model, dataset, batch_size, Mode::Eval);
        let serial = evaluate_serial(model, dataset, batch_size, Mode::Eval);
        prop_assert_eq!(clean, serial, "parallel clean eval must match serial");

        let campaign = Campaign::new(model, dataset)
            .batch_size(batch_size)
            .mode(Mode::Eval)
            .run(std::slice::from_ref(noop));
        prop_assert_eq!(campaign.len(), 1);
        prop_assert_eq!(
            clean,
            campaign[0],
            "clean eval must equal a single no-op-pattern campaign (batch_size {})",
            batch_size
        );
    }
}
