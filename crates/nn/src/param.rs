//! Trainable parameters.

use bitrobust_tensor::Tensor;

/// What role a parameter plays in its layer.
///
/// The distinction matters downstream: the paper quantizes *weights and
/// biases of each layer separately* (per-layer quantization), clips all
/// parameters to `[-wmax, wmax]`, and reparameterizes normalization scales
/// (see `GroupNorm`) so clipping does not pin them below one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Convolution / linear weight matrices.
    Weight,
    /// Additive biases.
    Bias,
    /// Normalization scale offsets (stored as `alpha' = alpha - 1`).
    NormScale,
    /// Normalization shifts.
    NormBias,
}

/// A named, trainable tensor with its accumulated gradient.
///
/// Gradients accumulate across backward passes (`+=`), which is what lets
/// random bit error training average a clean and a perturbed gradient in a
/// single optimizer step; call [`Param::zero_grad`] between steps.
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    kind: ParamKind,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a parameter with zeroed gradient.
    pub fn new(name: impl Into<String>, kind: ParamKind, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { name: name.into(), kind, value, grad }
    }

    /// The parameter's name within its layer (e.g. `"weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's role.
    pub fn kind(&self) -> ParamKind {
        self.kind
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value (used by optimizers and by quantize/perturb swaps).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient (layers accumulate into this during backward).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Simultaneous access to value and gradient, for optimizer updates.
    pub fn value_and_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        (&mut self.value, &self.grad)
    }

    /// Number of scalar entries.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_matching_shape() {
        let p = Param::new("weight", ParamKind::Weight, Tensor::full(&[2, 3], 1.0));
        assert_eq!(p.grad().shape(), &[2, 3]);
        assert_eq!(p.grad().sum(), 0.0);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.name(), "weight");
        assert_eq!(p.kind(), ParamKind::Weight);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new("b", ParamKind::Bias, Tensor::zeros(&[4]));
        p.grad_mut().axpy(1.0, &Tensor::full(&[4], 2.0));
        assert_eq!(p.grad().sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad().sum(), 0.0);
    }
}
