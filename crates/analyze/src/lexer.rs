//! A small hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules in [`crate::rules`] only need a faithful *token stream*: they
//! must never mistake `"unsafe"` inside a string literal for the keyword,
//! or a `HashMap` mentioned in a comment for a use of the type. So the
//! lexer's one job is to classify every byte of the source as exactly one
//! of ident / literal / punctuation / comment, handling all the places
//! where Rust's surface syntax makes that non-trivial:
//!
//! * nested block comments (`/* a /* b */ c */` is one comment),
//! * raw strings with arbitrary hash fences (`r##"…"##`), including the
//!   byte/C variants (`br"…"`, `cr#"…"#`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#unsafe` is an ident, not a raw string),
//! * doc comments (`///`, `//!`, `/**`, `/*!`) distinguished from plain
//!   ones, because the `safety-doc` rule reads them.
//!
//! In the same hand-rolled spirit as the JSONL sweep store: no syn, no
//! proc-macro2, no dependencies — this binary must run in the offline CI
//! container as `cargo run -p bitrobust-analyze`.

/// How a comment token participates in rustdoc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Doc {
    /// A plain comment (`//`, `/* */`, and the `////`/`/***` forms rustdoc
    /// ignores).
    No,
    /// An outer doc comment (`///` or `/** */`), documenting the next item.
    Outer,
    /// An inner doc comment (`//!` or `/*! */`), documenting the enclosing
    /// item.
    Inner,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#unsafe`).
    Ident,
    /// String, char, byte, or numeric literal.
    Literal,
    /// A comment; `doc` distinguishes rustdoc comments.
    Comment {
        /// `true` for `/* */` comments, `false` for `//` comments.
        block: bool,
        /// Rustdoc classification.
        doc: Doc,
    },
    /// A single punctuation byte (`{`, `;`, `#`, …).
    Punct,
}

/// One lexed token. The text is not copied: slice the source with
/// [`Token::text`].
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based line of the last byte (differs for multi-line tokens).
    pub end_line: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, src: &str, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == text
    }

    /// Whether this is a punctuation token with exactly this byte.
    pub fn is_punct(&self, src: &str, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(ch)
    }

    /// Whether this is any comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::Comment { .. })
    }
}

/// Lexes `src` into tokens (comments included, whitespace dropped).
///
/// The lexer never fails: unterminated constructs simply extend to the end
/// of the file, which is the useful behavior for linting sources that are
/// assumed to already compile.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run(src)
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self, text: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let start_line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.string();
                    TokenKind::Literal
                }
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => {
                    self.number();
                    TokenKind::Literal
                }
                b'r' | b'b' | b'c' if self.raw_or_byte_literal() => TokenKind::Literal,
                _ if is_ident_start(b) => {
                    self.ident();
                    TokenKind::Ident
                }
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line: start_line,
                end_line: self.line,
            });
        }
        debug_assert!(self.tokens.iter().all(|t| text.get(t.start..t.end).is_some()));
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` is outer doc, `//!` inner doc, but `////…` is plain again.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'/'), Some(b'/')) => Doc::No,
            (Some(b'/'), _) => Doc::Outer,
            (Some(b'!'), _) => Doc::Inner,
            _ => Doc::No,
        };
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        TokenKind::Comment { block: false, doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` outer doc, `/*!` inner doc; `/***` and the empty `/**/` are
        // plain.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'*'), Some(b'*')) | (Some(b'*'), Some(b'/')) => Doc::No,
            (Some(b'*'), _) => Doc::Outer,
            (Some(b'!'), _) => Doc::Inner,
            _ => Doc::No,
        };
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break, // unterminated: comment runs to EOF
                Some(b'/') if self.peek(0) == Some(b'*') => {
                    self.pos += 1;
                    depth += 1;
                }
                Some(b'*') if self.peek(0) == Some(b'/') => {
                    self.pos += 1;
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
        TokenKind::Comment { block: true, doc }
    }

    /// Consumes a `"…"` string body (the opening quote is at `self.pos`).
    fn string(&mut self) {
        self.pos += 1; // opening quote
        loop {
            match self.bump() {
                None | Some(b'"') => break,
                Some(b'\\') => {
                    self.bump(); // escaped byte, even if it's `"`
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a raw string body `#*"…"#*` with `hashes` fences (the
    /// cursor is on the first `#` or the quote).
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.bump() {
                None => break,
                Some(b'"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek(0) == Some(b'#') {
                        n += 1;
                        self.pos += 1;
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Handles the `r` / `b` / `c` prefixes. Returns `true` (with the
    /// cursor advanced past a literal) when the prefix really introduces
    /// one; returns `false` (cursor untouched) for plain identifiers and
    /// raw identifiers like `r#unsafe`.
    fn raw_or_byte_literal(&mut self) -> bool {
        let b0 = self.src[self.pos];
        // Longest-match the prefix: r" r#" b" b' br" br#" c" cr#" …
        let (prefix_len, raw) = match (b0, self.peek(1), self.peek(2)) {
            (b'r', Some(b'"'), _) => (1, true),
            (b'r', Some(b'#'), _) => {
                // `r#…`: raw string iff the hashes end in a quote; otherwise
                // it's a raw identifier (`r#fn`).
                let mut i = 1;
                while self.peek(i) == Some(b'#') {
                    i += 1;
                }
                if self.peek(i) == Some(b'"') {
                    (1, true)
                } else {
                    return false;
                }
            }
            (b'b' | b'c', Some(b'"'), _) => (1, false),
            (b'b', Some(b'\''), _) => {
                // Byte char literal b'x' / b'\n'.
                self.pos += 2;
                if self.bump() == Some(b'\\') {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                return true;
            }
            (b'b' | b'c', Some(b'r'), Some(b'"' | b'#')) => {
                // br"…" / cr#"…"# — but `br#ident` is not valid Rust, so a
                // `#` here always opens a raw string fence.
                (2, true)
            }
            _ => return false,
        };
        self.pos += prefix_len;
        if raw {
            self.raw_string();
        } else {
            self.string();
        }
        true
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // `'` then: escape → char; X followed by `'` → char; otherwise a
        // lifetime (consume the label as part of this token).
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                self.bump(); // backslash
                self.bump(); // escaped byte (enough for \n \' \\ \0 \x.. \u{..} starts)
                             // Consume the rest up to the closing quote (handles \x41, \u{1F600}).
                while let Some(b) = self.peek(0) {
                    if b == b'\'' {
                        self.pos += 1;
                        break;
                    }
                    if b == b'\n' {
                        break; // malformed; don't eat the file
                    }
                    self.pos += 1;
                }
                TokenKind::Literal
            }
            Some(b) if is_ident_start(b) => {
                // Could be 'a' (char) or 'a (lifetime) or 'abc' (char, multi
                // only via idents? no — chars are single; but 'static).
                // Decide by looking for a closing quote right after one
                // ident-ish char.
                if self.peek(1) == Some(b'\'') {
                    self.pos += 2;
                    TokenKind::Literal
                } else {
                    while let Some(b) = self.peek(0) {
                        if !is_ident_continue(b) {
                            break;
                        }
                        self.pos += 1;
                    }
                    TokenKind::Literal // lifetimes are literal-ish for our rules
                }
            }
            Some(_) => {
                // Non-ident char like '@' — a char literal.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokenKind::Literal
            }
            None => TokenKind::Punct,
        }
    }

    fn number(&mut self) {
        // Digits, underscores, type suffixes, hex/bin/oct, floats with
        // exponents. Over-approximating (consuming trailing ident chars and
        // `.`-digits) is fine: rules never inspect numeric internals.
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b)
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
            {
                self.pos += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.src[self.pos - 1], b'e' | b'E')
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            {
                self.pos += 1; // exponent sign in 1.0e-3
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) {
        // Raw identifier: swallow the `r#` prefix so `r#unsafe` lexes as one
        // Ident token (raw_or_byte_literal already ruled out a raw string).
        if self.src[self.pos] == b'r'
            && self.peek(1) == Some(b'#')
            && self.peek(2).is_some_and(is_ident_start)
        {
            self.pos += 2;
        }
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            self.pos += 1;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn keyword_in_string_literal_is_not_an_ident() {
        let src = r#"let s = "unsafe { HashMap }"; let t = 'u';"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn keyword_in_raw_string_with_hashes_is_not_an_ident() {
        let src = "let s = r##\"unsafe \"# still inside\" thread_rng\"##; unsafe {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "unsafe"]);
    }

    #[test]
    fn byte_and_c_string_prefixes_lex_as_one_literal() {
        for src in [r#"b"unsafe""#, r#"c"unsafe""#, r##"br#"unsafe"#"##, r##"cr#"unsafe"#"##] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src} lexed as {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Literal);
        }
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_raw_string() {
        let src = "fn r#unsafe() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "r#unsafe"]);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* outer /* inner unsafe */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert!(matches!(toks[1].0, TokenKind::Comment { block: true, .. }));
        assert!(toks[1].1.contains("inner unsafe"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let src = "x /* never closed unsafe";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert!(toks[1].1.ends_with("unsafe"));
        assert!(matches!(toks[1].0, TokenKind::Comment { block: true, .. }));
    }

    #[test]
    fn doc_comment_classification() {
        let src = "/// outer\n//! inner\n// plain\n//// plain too\n/** outer b */\n/*! inner b */\n/*** plain b */";
        let docs: Vec<Doc> = lex(src)
            .into_iter()
            .map(|t| match t.kind {
                TokenKind::Comment { doc, .. } => doc,
                other => panic!("unexpected token {other:?}"),
            })
            .collect();
        assert_eq!(
            docs,
            vec![Doc::Outer, Doc::Inner, Doc::No, Doc::No, Doc::Outer, Doc::Inner, Doc::No]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let s = '\\n'; }";
        let toks = lex(src);
        // No token should have swallowed the rest of the file: the final
        // `}` must still be present.
        assert!(toks.iter().any(|t| t.is_punct(src, '}')));
        let lits: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(lits, vec!["'a", "'a", "'x'", "'\\n'"]);
    }

    #[test]
    fn escaped_quote_in_string_does_not_terminate_it() {
        let src = r#"let s = "he said \"unsafe\""; x"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "x"]);
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\nr\"raw\nstring\"\nc";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident(src, "b")).unwrap();
        assert_eq!(b.line, 4);
        let c = toks.iter().find(|t| t.is_ident(src, "c")).unwrap();
        assert_eq!(c.line, 7);
        let comment = &toks[1];
        assert_eq!((comment.line, comment.end_line), (2, 3));
    }

    #[test]
    fn numeric_literals_with_exponents_and_suffixes() {
        let src = "let x = 1.0e-3 + 0xFFu8 + 1_000i64 + 2.5f32;";
        let lits: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(lits, vec!["1.0e-3", "0xFFu8", "1_000i64", "2.5f32"]);
    }

    #[test]
    fn hash_punct_and_attribute_tokens_survive() {
        let src = "#[deprecated(note = \"x\")] fn f() {}";
        let toks = lex(src);
        assert!(toks[0].is_punct(src, '#'));
        assert!(toks[1].is_punct(src, '['));
        assert!(toks[2].is_ident(src, "deprecated"));
    }
}
