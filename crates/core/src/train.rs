//! Training methods: quantization-aware `NORMAL`/`RQUANT`, `CLIPPING`,
//! `RANDBET` (Alg. 1 of the paper), and the `PATTBET` baseline.

use bitrobust_biterror::{ChipKind, ProfiledChip, UniformChip};
use bitrobust_data::{augment_batch, AugmentConfig, Dataset};
use bitrobust_nn::{CrossEntropyLoss, LossOutput, Mode, Model, MultiStepLr, Sgd};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;

use crate::data_parallel::{sharded_forward_backward, DataParallel};
use crate::eval::{
    evaluate, quantized_error, robust_eval_uniform, robust_eval_uniform_serial, RobustEval,
    EVAL_BATCH,
};
use crate::scheduler::ShardReplicas;
use crate::QuantizedModel;

/// RandBET variants evaluated in Tab. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RandBetVariant {
    /// Alg. 1: average clean and perturbed gradients in one update.
    Standard,
    /// "Curricular": the training bit error rate ramps from `p/20` to `p`
    /// over the first half of training (as in Koppula et al., 2019).
    Curricular,
    /// "Alternating": separate clean and perturbed updates, with perturbed
    /// updates projected back into the pre-update quantization ranges.
    Alternating,
    /// Ablation: train on the perturbed loss only (no clean gradient).
    /// The paper notes this destabilizes training and hurts clean Err —
    /// the clean term in Eq. (2) is load-bearing.
    PerturbedOnly,
}

/// The fixed error pattern `PATTBET` trains on (Kim et al., 2018 /
/// Koppula et al., 2019 style co-design baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PattPattern {
    /// A fixed uniform-random pattern: one [`UniformChip`] at rate `p`.
    Uniform {
        /// Chip identity.
        seed: u64,
        /// Training bit error rate.
        p: f64,
    },
    /// A profiled chip at the voltage whose measured rate is `rate`.
    Profiled {
        /// Which chip structure to synthesize.
        kind: ChipKind,
        /// Chip instance seed.
        seed: u64,
        /// Target bit error rate (converted to a voltage at train start).
        rate: f64,
        /// Restrict to persistent errors (Tab. 16).
        persistent_only: bool,
    },
}

/// The training method (the paper's model names).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainMethod {
    /// Plain quantization-aware training (`NORMAL` / `RQUANT`, depending on
    /// the scheme in [`TrainConfig::scheme`]).
    Normal,
    /// Weight clipping to `[-wmax, wmax]` during training (`CLIPPING`).
    Clipping {
        /// The clipping bound.
        wmax: f32,
    },
    /// Random bit error training (`RANDBET`, Alg. 1), optionally combined
    /// with weight clipping.
    RandBet {
        /// Optional clipping bound (the paper's `RANDBET_wmax`).
        wmax: Option<f32>,
        /// Training bit error rate.
        p: f64,
        /// Algorithm variant.
        variant: RandBetVariant,
    },
    /// Fixed-pattern bit error training (`PATTBET`), the non-generalizing
    /// baseline of Tab. 3 / Tab. 16.
    PattBet {
        /// Optional clipping bound.
        wmax: Option<f32>,
        /// The fixed pattern.
        pattern: PattPattern,
    },
}

impl TrainMethod {
    /// The clipping bound, if any.
    pub fn wmax(&self) -> Option<f32> {
        match *self {
            TrainMethod::Normal => None,
            TrainMethod::Clipping { wmax } => Some(wmax),
            TrainMethod::RandBet { wmax, .. } => wmax,
            TrainMethod::PattBet { wmax, .. } => wmax,
        }
    }
}

/// Configuration of the optional per-epoch robust-error probe.
///
/// When set on [`TrainConfig::rerr_probe`], training measures `RErr` on
/// the test set after every epoch: the model is [`Model::clone`]d (so
/// training state — caches, gradients, probes — is untouched), clipped
/// like the final evaluation would be, and evaluated over `n_chips`
/// uniform chips through the parallel campaign engine. The per-epoch
/// results land in [`TrainReport::epoch_rerr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RErrProbe {
    /// Bit error rate to probe at.
    pub p: f64,
    /// Number of uniform chips per probe.
    pub n_chips: usize,
    /// Seed of chip 0 (chip `c` uses `chip_seed_base + c`).
    pub chip_seed_base: u64,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Route the probe through the serial reference engine instead of the
    /// parallel campaign. Results are bit-identical either way — this
    /// exists so the determinism suite can prove exactly that.
    pub serial: bool,
}

impl RErrProbe {
    /// A probe at rate `p` over `n_chips` chips with the protocol defaults
    /// (chip seed base 1000, [`EVAL_BATCH`], parallel engine).
    pub fn new(p: f64, n_chips: usize) -> Self {
        Self { p, n_chips, chip_seed_base: 1000, batch_size: EVAL_BATCH, serial: false }
    }
}

/// Full training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Quantization-aware training scheme; `None` trains in float (used for
    /// the post-training-quantization ablation, Tab. 9 top).
    pub scheme: Option<QuantScheme>,
    /// The training method.
    pub method: TrainMethod,
    /// Label smoothing target (`Some(0.9)` reproduces the Tab. 2 ablation).
    pub label_smoothing: Option<f32>,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (decays ×0.1 after 2/5, 3/5, 4/5 of training).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Data augmentation recipe.
    pub augment: AugmentConfig,
    /// Bit error injection starts once the clean loss first drops below
    /// this threshold (1.75 on MNIST/CIFAR10, 3.5 on CIFAR100).
    pub warmup_loss: f32,
    /// RNG seed for shuffling, augmentation, and per-step chips.
    pub seed: u64,
    /// Optional per-epoch `RErr` probe on the test set (requires a
    /// quantization scheme). See [`RErrProbe`].
    pub rerr_probe: Option<RErrProbe>,
    /// Optional data-parallel execution of every training forward/backward:
    /// each mini-batch is split into [`DataParallel::shards`] contiguous
    /// shards, run on cloned replicas over the thread pool, and the
    /// per-shard gradients are combined with a fixed-shape serial tree
    /// reduction — byte-identical results at any thread count. `None`
    /// (default) runs the historical single-model path. The shard count is
    /// part of the numerical contract: `Some(DataParallel::new(n))` and
    /// `None` produce different (equally valid) float trajectories.
    ///
    /// Requires a BatchNorm-free model: training-mode BatchNorm couples
    /// batch rows through shared statistics, which sharding would change.
    pub data_parallel: Option<DataParallel>,
}

impl TrainConfig {
    /// The paper's setup scaled to the synthetic datasets: SGD(0.05, 0.9,
    /// 5e-4), multi-step decay, CIFAR-style augmentation.
    pub fn new(scheme: Option<QuantScheme>, method: TrainMethod) -> Self {
        Self {
            scheme,
            method,
            label_smoothing: None,
            epochs: 30,
            batch_size: 64,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            augment: AugmentConfig::cifar(),
            warmup_loss: 1.75,
            seed: 0,
            rerr_probe: None,
            data_parallel: None,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean clean training loss over the final epoch.
    pub final_loss: f32,
    /// Clean test error (quantized if a scheme was configured).
    pub clean_error: f32,
    /// Mean clean test confidence.
    pub clean_confidence: f32,
    /// Epoch at which bit error injection became active (`None` if never).
    pub bit_errors_started_at: Option<usize>,
    /// Mean clean training loss per epoch (the training trajectory).
    pub epoch_losses: Vec<f32>,
    /// Per-epoch robust-error probe results; empty unless
    /// [`TrainConfig::rerr_probe`] is set.
    pub epoch_rerr: Vec<RobustEval>,
}

enum PattChipState {
    None,
    Uniform(UniformChip, f64),
    Profiled(Box<ProfiledChip>, f64, bool),
}

/// One forward/backward pass, held until the warm-up latch decides whether
/// its gradient participates in the update.
///
/// The single-model path defers `Model::backward` (the activation caches
/// from the forward are untouched in between); the data-parallel path has
/// already reduced its shard gradients and defers only the merge.
enum GradPass {
    /// Direct path: the loss output whose `grad` drives `Model::backward`.
    Direct(LossOutput),
    /// Data-parallel path: tree-reduced gradient buffers to accumulate.
    Sharded(Vec<Tensor>),
}

impl GradPass {
    /// Adds this pass's gradient to the model's accumulated gradients.
    fn accumulate(self, model: &mut Model) {
        match self {
            GradPass::Direct(out) => {
                model.backward(&out.grad);
            }
            GradPass::Sharded(grads) => model.accumulate_grads(&grads),
        }
    }
}

/// Runs one training forward/backward over `(x, labels)` through the
/// configured execution path, returning the batch-mean loss and the
/// deferred gradient (see [`GradPass`]). With `need_grads: false` the
/// gradient work is skipped where that saves anything (the sharded
/// backward/reduction; the direct path defers its backward anyway) and
/// `None` is returned — callers use this when the pass only feeds the
/// warm-up latch.
///
/// `replicas` is the training run's persistent shard-replica pool
/// ([`ShardReplicas`]), used only on the data-parallel path: replicas are
/// cloned once per run and re-synced per pass, byte-identical to fresh
/// clones.
fn forward_backward(
    model: &mut Model,
    x: &Tensor,
    labels: &[usize],
    loss_fn: &CrossEntropyLoss,
    dp: Option<&DataParallel>,
    need_grads: bool,
    replicas: &mut ShardReplicas,
) -> (f32, Option<GradPass>) {
    match dp {
        None => {
            let logits = model.forward(x, Mode::Train);
            let out = loss_fn.compute(&logits, labels);
            (out.loss, need_grads.then_some(GradPass::Direct(out)))
        }
        Some(dp) => {
            let pass =
                sharded_forward_backward(model, x, labels, loss_fn, dp, need_grads, replicas);
            (pass.loss, pass.grads.map(GradPass::Sharded))
        }
    }
}

/// Trains `model` on `train_ds` according to `cfg`, evaluating on `test_ds`.
///
/// Implements Alg. 1 of the paper: per step, clip weights, quantize,
/// run a clean forward/backward on the dequantized weights, optionally a
/// perturbed forward/backward on bit-error-injected weights, and apply the
/// summed gradient to the float weights. With
/// [`TrainConfig::data_parallel`] set, every forward/backward shards the
/// mini-batch over model replicas (see [`crate::data_parallel`]); the
/// resulting [`TrainReport`] is byte-identical across thread counts and to
/// the [`DataParallel::serial`] reference.
pub fn train(
    model: &mut Model,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(cfg.epochs > 0, "need at least one epoch");
    assert!(!train_ds.is_empty(), "cannot train on an empty training set");
    assert!(
        cfg.rerr_probe.is_none() || cfg.scheme.is_some(),
        "the per-epoch RErr probe requires a quantization scheme"
    );
    if cfg.data_parallel.is_some() {
        let mut has_batchnorm = false;
        model.visit_layers(&mut |l| has_batchnorm |= l.layer_type() == "BatchNorm2d");
        assert!(
            !has_batchnorm,
            "data-parallel training requires a batch-size-independent training forward; \
             BatchNorm2d computes whole-batch statistics and updates running state, which \
             per-shard replicas would change and then discard — train without data_parallel"
        );
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x0072_A117);
    let loss_fn = match cfg.label_smoothing {
        Some(tau) => CrossEntropyLoss::with_label_smoothing(tau),
        None => CrossEntropyLoss::new(),
    };
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let schedule = MultiStepLr::paper_schedule(cfg.lr, cfg.epochs);

    let patt_chip = match cfg.method {
        TrainMethod::PattBet { pattern: PattPattern::Uniform { seed, p }, .. } => {
            PattChipState::Uniform(UniformChip::new(seed), p)
        }
        TrainMethod::PattBet {
            pattern: PattPattern::Profiled { kind, seed, rate, persistent_only },
            ..
        } => {
            let chip = ProfiledChip::synthesize(kind, seed);
            let v = chip.voltage_for_rate(rate);
            PattChipState::Profiled(Box::new(chip), v, persistent_only)
        }
        _ => PattChipState::None,
    };

    let total_steps = cfg.epochs * train_ds.len().div_ceil(cfg.batch_size);
    // One persistent shard-replica pool per training run: the data-parallel
    // passes clone replicas on first use and only re-sync parameters after.
    let mut shard_replicas = ShardReplicas::new();
    let mut step = 0usize;
    let mut bit_errors_active = false;
    let mut bit_errors_started_at = None;
    let mut final_loss = f32::INFINITY;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_rerr = Vec::new();

    for epoch in 0..cfg.epochs {
        sgd.set_lr(schedule.lr_at(epoch));
        let mut epoch_loss = 0f64;
        let mut batches = 0usize;
        for (mut x, labels) in train_ds.shuffled_batches(cfg.batch_size, &mut rng) {
            augment_batch(&mut x, &cfg.augment, &mut rng);

            // Alg. 1 line 6: elementwise clipping.
            if let Some(wmax) = cfg.method.wmax() {
                model.clip_params(wmax);
            }
            let float_params = model.param_tensors();

            // Alg. 1 lines 8-9: quantize and dequantize.
            let quantized = cfg.scheme.map(|scheme| {
                let q = QuantizedModel::quantize(model, scheme);
                q.write_to(model);
                q
            });

            // Clean forward (Alg. 1 line 10); the loss also drives the
            // warm-up latch. The backward (line 11) is deferred until the
            // latch decides whether this step trains on the perturbed loss
            // alone (the PerturbedOnly ablation); once that ablation is
            // past warm-up its clean gradient is known-discarded, so the
            // pass is asked for the loss only. (If the latch flips on this
            // very batch, one computed gradient is dropped — unavoidable,
            // since the decision needs this batch's loss.)
            let is_perturbed_only_variant = matches!(
                cfg.method,
                TrainMethod::RandBet { variant: RandBetVariant::PerturbedOnly, .. }
            );
            let clean_grads_needed = !(bit_errors_active && is_perturbed_only_variant);
            model.zero_grads();
            let (clean_loss, clean_pass) = forward_backward(
                model,
                &x,
                &labels,
                &loss_fn,
                cfg.data_parallel.as_ref(),
                clean_grads_needed,
                &mut shard_replicas,
            );
            epoch_loss += clean_loss as f64;
            batches += 1;

            if !bit_errors_active && clean_loss < cfg.warmup_loss {
                bit_errors_active = true;
                bit_errors_started_at = Some(epoch);
            }

            let inject_now = bit_errors_active
                && matches!(cfg.method, TrainMethod::RandBet { .. } | TrainMethod::PattBet { .. });

            let perturbed_only = inject_now && is_perturbed_only_variant;
            if !perturbed_only {
                clean_pass
                    .expect("the clean gradient is computed whenever it participates")
                    .accumulate(model);
            }

            let alternating = matches!(
                cfg.method,
                TrainMethod::RandBet { variant: RandBetVariant::Alternating, .. }
            );

            if inject_now && alternating {
                let q =
                    quantized.as_ref().expect("bit error training requires a quantization scheme");
                // Variant: apply the clean update first.
                model.set_param_tensors(&float_params);
                sgd.step(model);
                model.zero_grads();
                // Record ranges to project the perturbed update into.
                let ranges: Vec<_> = q.tensors().iter().map(|t| t.range()).collect();
                let after_clean = model.param_tensors();
                let q2 = perturb(q, &cfg.method, &patt_chip, step, total_steps, &mut rng);
                q2.write_to(model);
                let (_, perturbed_pass) = forward_backward(
                    model,
                    &x,
                    &labels,
                    &loss_fn,
                    cfg.data_parallel.as_ref(),
                    true,
                    &mut shard_replicas,
                );
                perturbed_pass.expect("perturbed gradients were requested").accumulate(model);
                model.set_param_tensors(&after_clean);
                sgd.step(model);
                // Projection: perturbed updates may not grow the ranges.
                let mut idx = 0;
                model.visit_params(&mut |p| {
                    let r = ranges[idx];
                    p.value_mut().map_inplace(|v| v.clamp(r.lo(), r.hi()));
                    idx += 1;
                });
            } else {
                if inject_now {
                    let q = quantized
                        .as_ref()
                        .expect("bit error training requires a quantization scheme");
                    // Alg. 1 lines 12-14: perturbed forward/backward.
                    let q2 = perturb(q, &cfg.method, &patt_chip, step, total_steps, &mut rng);
                    q2.write_to(model);
                    let (_, perturbed_pass) = forward_backward(
                        model,
                        &x,
                        &labels,
                        &loss_fn,
                        cfg.data_parallel.as_ref(),
                        true,
                        &mut shard_replicas,
                    );
                    perturbed_pass.expect("perturbed gradients were requested").accumulate(model);
                }
                // Alg. 1 line 16: update the float weights with the summed
                // gradients.
                model.set_param_tensors(&float_params);
                sgd.step(model);
            }
            // The single shared step counter: every method and variant must
            // advance it exactly once per mini-batch, because it feeds the
            // per-step perturbation seeds and the Curricular ramp.
            step += 1;
        }
        final_loss = (epoch_loss / batches as f64) as f32;
        epoch_losses.push(final_loss);

        // Per-epoch RErr probe: evaluate a clipped *clone* through the
        // campaign engine, so training state (caches, gradients, probes)
        // and the float weights are untouched. The clone's detached
        // probes and immutable `infer` make the fan-out safe.
        if let Some(probe) = cfg.rerr_probe {
            let scheme =
                cfg.scheme.expect("the per-epoch RErr probe requires a quantization scheme");
            let mut snapshot = model.clone();
            if let Some(wmax) = cfg.method.wmax() {
                snapshot.clip_params(wmax);
            }
            let r = if probe.serial {
                robust_eval_uniform_serial(
                    &snapshot,
                    scheme,
                    test_ds,
                    probe.p,
                    probe.n_chips,
                    probe.chip_seed_base,
                    probe.batch_size,
                    Mode::Eval,
                )
            } else {
                robust_eval_uniform(
                    &snapshot,
                    scheme,
                    test_ds,
                    probe.p,
                    probe.n_chips,
                    probe.chip_seed_base,
                    probe.batch_size,
                    Mode::Eval,
                )
            };
            epoch_rerr.push(r);
        }
    }

    // Warm-up step accounting: `step` seeds the per-step perturbations and
    // the Curricular ramp divides by `total_steps`, so drift here silently
    // changes injected error patterns. `shuffled_batches` yields the final
    // partial batch, hence exactly ceil(len / batch) increments per epoch.
    assert_eq!(
        step, total_steps,
        "step accounting drifted: a training path advanced `step` other than once per mini-batch"
    );

    // Final projection + evaluation.
    if let Some(wmax) = cfg.method.wmax() {
        model.clip_params(wmax);
    }
    let result = match cfg.scheme {
        Some(scheme) => quantized_error(model, scheme, test_ds, EVAL_BATCH, Mode::Eval),
        None => evaluate(model, test_ds, EVAL_BATCH, Mode::Eval),
    };
    model.clear_caches();
    TrainReport {
        final_loss,
        clean_error: result.error,
        clean_confidence: result.confidence,
        bit_errors_started_at,
        epoch_losses,
        epoch_rerr,
    }
}

/// Produces the perturbed quantized image for the current step.
fn perturb(
    q: &QuantizedModel,
    method: &TrainMethod,
    patt: &PattChipState,
    step: usize,
    total_steps: usize,
    rng: &mut impl Rng,
) -> QuantizedModel {
    let mut q2 = q.clone();
    match (method, patt) {
        (TrainMethod::RandBet { p, variant, .. }, _) => {
            let p_eff = match variant {
                RandBetVariant::Curricular => {
                    let ramp = (step as f64 / (total_steps as f64 / 2.0)).min(1.0);
                    p * (0.05 + 0.95 * ramp)
                }
                _ => *p,
            };
            // A fresh random chip every step: this is what makes RandBET
            // generalize across chips and voltages.
            let chip = UniformChip::new(rng.gen());
            q2.inject(&chip.at_rate(p_eff));
        }
        (TrainMethod::PattBet { .. }, PattChipState::Uniform(chip, p)) => {
            q2.inject(&chip.at_rate(*p));
        }
        (TrainMethod::PattBet { .. }, PattChipState::Profiled(chip, v, persistent_only)) => {
            q2.inject(&chip.at_voltage(*v, 0, *persistent_only));
        }
        _ => unreachable!("perturb called for a method without bit errors"),
    }
    q2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;

    fn quick_cfg(method: TrainMethod) -> TrainConfig {
        let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), method);
        cfg.epochs = 3;
        cfg.batch_size = 128;
        cfg.augment = AugmentConfig::none();
        cfg
    }

    fn mnist_subset() -> (Dataset, Dataset) {
        let (train, test) = SynthDataset::Mnist.generate(1);
        // Use a subset to keep unit tests fast.
        let train_idx: Vec<usize> = (0..600).collect();
        let test_idx: Vec<usize> = (0..300).collect();
        let (xt, yt) = train.batch(&train_idx);
        let (xe, ye) = test.batch(&test_idx);
        (Dataset::new("train", xt, yt, 10), Dataset::new("test", xe, ye, 10))
    }

    #[test]
    fn normal_training_learns_mnist_subset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let report = train(&mut model, &train_ds, &test_ds, &quick_cfg(TrainMethod::Normal));
        assert!(report.clean_error < 0.5, "error {} should beat chance", report.clean_error);
        assert!(report.final_loss < 1.5, "loss {}", report.final_loss);
    }

    #[test]
    fn clipping_constrains_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let _ =
            train(&mut model, &train_ds, &test_ds, &quick_cfg(TrainMethod::Clipping { wmax: 0.1 }));
        model.visit_params(&mut |p| {
            assert!(p.value().abs_max() <= 0.1 + 1e-6);
        });
    }

    #[test]
    fn randbet_runs_and_reports_injection_start() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::RandBet {
            wmax: Some(0.1),
            p: 0.01,
            variant: RandBetVariant::Standard,
        });
        cfg.warmup_loss = 100.0; // inject from the start
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert_eq!(report.bit_errors_started_at, Some(0));
        assert!(report.clean_error < 0.6);
    }

    #[test]
    fn pattbet_uniform_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::PattBet {
            wmax: Some(0.1),
            pattern: PattPattern::Uniform { seed: 77, p: 0.01 },
        });
        cfg.warmup_loss = 100.0;
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert!(report.clean_error < 0.6);
    }

    #[test]
    fn variants_run() {
        for variant in [RandBetVariant::Curricular, RandBetVariant::Alternating] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(TrainMethod::RandBet { wmax: Some(0.1), p: 0.005, variant });
            cfg.warmup_loss = 100.0;
            cfg.epochs = 2;
            let report = train(&mut model, &train_ds, &test_ds, &cfg);
            assert!(report.clean_error.is_finite());
        }
    }

    #[test]
    fn rerr_probe_records_one_result_per_epoch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::RandBet {
            wmax: Some(0.1),
            p: 0.01,
            variant: RandBetVariant::Standard,
        });
        cfg.warmup_loss = 100.0;
        cfg.epochs = 2;
        cfg.rerr_probe = Some(RErrProbe::new(0.01, 3));
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert_eq!(report.epoch_losses.len(), 2);
        assert_eq!(report.epoch_rerr.len(), 2);
        assert!(report.epoch_rerr.iter().all(|r| r.errors.len() == 3));
        assert_eq!(report.final_loss, *report.epoch_losses.last().unwrap());
    }

    #[test]
    fn rerr_probe_serial_and_parallel_agree() {
        let mut reports = Vec::new();
        for serial in [false, true] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(TrainMethod::RandBet {
                wmax: Some(0.1),
                p: 0.01,
                variant: RandBetVariant::Standard,
            });
            cfg.warmup_loss = 100.0;
            cfg.epochs = 2;
            cfg.rerr_probe = Some(RErrProbe { serial, ..RErrProbe::new(0.01, 2) });
            reports.push(train(&mut model, &train_ds, &test_ds, &cfg));
        }
        assert_eq!(reports[0], reports[1], "probe engine must not affect any reported number");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (_, test_ds) = mnist_subset();
        let empty = Dataset::new("empty", Tensor::zeros(&[0, 1, 14, 14]), Vec::new(), 10);
        let _ = train(&mut model, &empty, &test_ds, &quick_cfg(TrainMethod::Normal));
    }

    /// Every method/variant must advance `step` exactly once per mini-batch
    /// (600 examples / 128 batch = 5 batches per epoch, final one partial);
    /// the assertion inside `train` fires on any drift. Alternating used to
    /// maintain its own increment on a separate control path.
    #[test]
    fn step_accounting_is_exact_for_every_method() {
        let methods = [
            TrainMethod::Normal,
            TrainMethod::Clipping { wmax: 0.1 },
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.005, variant: RandBetVariant::Standard },
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.005, variant: RandBetVariant::Curricular },
            TrainMethod::RandBet {
                wmax: Some(0.1),
                p: 0.005,
                variant: RandBetVariant::Alternating,
            },
            TrainMethod::RandBet {
                wmax: Some(0.1),
                p: 0.005,
                variant: RandBetVariant::PerturbedOnly,
            },
            TrainMethod::PattBet {
                wmax: Some(0.1),
                pattern: PattPattern::Uniform { seed: 7, p: 0.005 },
            },
        ];
        for method in methods {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(method);
            cfg.warmup_loss = 100.0; // inject from step 0 for the BET methods
            cfg.epochs = 2;
            let report = train(&mut model, &train_ds, &test_ds, &cfg);
            assert!(report.clean_error.is_finite(), "{method:?}");
        }
    }

    #[test]
    fn data_parallel_training_learns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::Normal);
        cfg.data_parallel = Some(DataParallel::new(4));
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert!(report.clean_error < 0.5, "error {} should beat chance", report.clean_error);
    }

    /// PerturbedOnly past warm-up asks the clean pass for the loss only;
    /// the method must still train (on the perturbed gradient) under both
    /// execution paths and report the same injection start.
    #[test]
    fn data_parallel_perturbed_only_trains() {
        let mut reports = Vec::new();
        for data_parallel in [None, Some(DataParallel::new(3))] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(13);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(TrainMethod::RandBet {
                wmax: Some(0.1),
                p: 0.005,
                variant: RandBetVariant::PerturbedOnly,
            });
            cfg.warmup_loss = 100.0;
            cfg.epochs = 2;
            cfg.data_parallel = data_parallel;
            reports.push(train(&mut model, &train_ds, &test_ds, &cfg));
        }
        for report in &reports {
            assert_eq!(report.bit_errors_started_at, Some(0));
            assert!(report.clean_error.is_finite());
        }
    }

    #[test]
    fn data_parallel_rerr_probe_still_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::RandBet {
            wmax: Some(0.1),
            p: 0.01,
            variant: RandBetVariant::Standard,
        });
        cfg.warmup_loss = 100.0;
        cfg.epochs = 2;
        cfg.rerr_probe = Some(RErrProbe::new(0.01, 2));
        cfg.data_parallel = Some(DataParallel::new(3));
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert_eq!(report.epoch_rerr.len(), 2);
        assert!(report.epoch_rerr.iter().all(|r| r.errors.len() == 2));
    }

    #[test]
    #[should_panic(expected = "BatchNorm2d")]
    fn data_parallel_rejects_batchnorm_models() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        // The MLP has no normalization layers; SimpleNet actually carries
        // BatchNorm2d when built with NormKind::Batch.
        let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Batch, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::Normal);
        cfg.data_parallel = Some(DataParallel::new(2));
        let _ = train(&mut model, &train_ds, &test_ds, &cfg);
    }

    #[test]
    fn float_training_without_scheme_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::Clipping { wmax: 0.1 });
        cfg.scheme = None;
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert!(report.clean_error < 0.6);
    }
}
