//! Whole-model quantization with a linear weight-to-memory mapping.

use std::cell::Cell;

use bitrobust_biterror::ErrorInjector;
use bitrobust_nn::{lower_layers, Layer, Model, QConv2d, QLinear, QNet};
use bitrobust_quant::{Granularity, QuantRange, QuantScheme, QuantizedTensor};
use bitrobust_tensor::Tensor;

use crate::probe::ActivationProbe;

/// The quantized image of a model's parameters: one [`QuantizedTensor`] per
/// parameter tensor plus each tensor's word offset in the network's global,
/// linearized weight vector.
///
/// The offsets realize the paper's linear weight-to-memory mapping (Sec. 3):
/// injecting errors tensor-by-tensor with the running offset is equivalent
/// to injecting into one contiguous memory image.
///
/// # Examples
///
/// ```
/// use bitrobust_biterror::UniformChip;
/// use bitrobust_core::QuantizedModel;
/// use bitrobust_nn::{Linear, Mode, Model, Sequential};
/// use bitrobust_quant::QuantScheme;
/// use bitrobust_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(8, 4, &mut rng));
/// let model = Model::new("demo", net);
///
/// // Quantizing needs only `&Model`, so snapshots can be taken from a
/// // template that is concurrently serving evaluation workers.
/// let mut q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
/// q.inject(&UniformChip::new(1).at_rate(0.01));
///
/// // Evaluate the perturbed image against a dedicated replica — the
/// // template itself is never mutated (this is how campaigns run).
/// let mut replica = model.clone();
/// q.write_to(&mut replica);
/// let x = Tensor::zeros(&[1, 8]);
/// let y = replica.infer(&x, Mode::Eval);
///
/// // Or skip the f32 replica entirely and stay in the integer domain:
/// let y_int = q.infer(&model, &x).unwrap();
/// assert_eq!(y.shape(), y_int.shape());
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    scheme: QuantScheme,
    tensors: Vec<QuantizedTensor>,
    offsets: Vec<usize>,
    shapes: Vec<Vec<usize>>,
    total_weights: usize,
}

impl QuantizedModel {
    /// Quantizes all parameters of `model` under `scheme`. Needs only
    /// shared access, so snapshots can be taken from models that are
    /// concurrently serving evaluation workers.
    ///
    /// For [`Granularity::Global`] schemes a single range spanning every
    /// parameter is computed first; per-tensor schemes adapt each tensor's
    /// range individually ("the quantization range always adapts to the
    /// weight range at hand", Sec. 4.2).
    pub fn quantize(model: &Model, scheme: QuantScheme) -> Self {
        let params = model.param_tensors();
        let global_range: Option<QuantRange> = match scheme.granularity {
            Granularity::Global => {
                let mut merged: Option<QuantRange> = None;
                for t in &params {
                    let r = scheme.range_for(t.data());
                    merged = Some(match merged {
                        Some(m) => m.merge(&r),
                        None => r,
                    });
                }
                merged
            }
            Granularity::PerTensor => None,
        };

        let mut tensors = Vec::with_capacity(params.len());
        let mut offsets = Vec::with_capacity(params.len());
        let mut shapes = Vec::with_capacity(params.len());
        let mut offset = 0usize;
        for t in &params {
            let q = match global_range {
                Some(r) => scheme.quantize_with_range(t.data(), r),
                None => scheme.quantize(t.data()),
            };
            offsets.push(offset);
            offset += q.len();
            shapes.push(t.shape().to_vec());
            tensors.push(q);
        }
        Self { scheme, tensors, offsets, shapes, total_weights: offset }
    }

    /// The scheme used.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Total number of quantized weights `W`.
    pub fn total_weights(&self) -> usize {
        self.total_weights
    }

    /// The per-tensor quantized buffers.
    pub fn tensors(&self) -> &[QuantizedTensor] {
        &self.tensors
    }

    /// Mutable access to the per-tensor buffers (for error correction and
    /// targeted manipulation).
    pub fn tensors_mut(&mut self) -> &mut [QuantizedTensor] {
        &mut self.tensors
    }

    /// Injects bit errors into a single parameter tensor only (used for the
    /// per-layer vulnerability analysis). The injector still sees the
    /// tensor's global offset, so patterns stay consistent with whole-model
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn inject_tensor(&mut self, index: usize, injector: &impl ErrorInjector) {
        let bits = self.scheme.bits();
        let offset = self.offsets[index];
        injector.inject(self.tensors[index].words_mut(), bits, offset);
    }

    /// Injects bit errors across the whole linearized weight image.
    pub fn inject(&mut self, injector: &impl ErrorInjector) {
        let bits = self.scheme.bits();
        for (q, &offset) in self.tensors.iter_mut().zip(&self.offsets) {
            injector.inject(q.words_mut(), bits, offset);
        }
    }

    /// Dequantizes into the model's parameters (the `w_q = Q⁻¹(v)` of
    /// Alg. 1).
    ///
    /// # Panics
    ///
    /// Panics if `model`'s parameter shapes differ from the quantization
    /// snapshot.
    pub fn write_to(&self, model: &mut Model) {
        let mut index = 0;
        model.visit_params(&mut |p| {
            assert!(index < self.tensors.len(), "model has more parameters than snapshot");
            assert_eq!(
                p.value().shape(),
                &self.shapes[index][..],
                "parameter {index} shape mismatch"
            );
            self.tensors[index].dequantize_into(p.value_mut().data_mut());
            index += 1;
        });
        assert_eq!(index, self.tensors.len(), "model has fewer parameters than snapshot");
    }

    /// Compiles this image into an integer-domain inference program for
    /// `template`'s architecture: weights are decoded to `i8` levels once
    /// ([`bitrobust_quant::QuantizedTensor::decode_i8`]) and every matrix
    /// product runs through the packed `i8×i8→i32` GEMM, requantizing at
    /// layer boundaries (see [`bitrobust_nn::quantized`]). Biases are
    /// dequantized to `f32` bit-exactly and folded into requantization.
    ///
    /// `template` supplies structure only — its float weights are ignored;
    /// the program's parameters come from this snapshot (including any
    /// injected bit errors). [`ActivationProbe`]s are skipped: they are
    /// identity layers at inference time.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the architecture contains a layer without an
    /// integer-domain kernel (normalization, residual blocks), or if
    /// `template`'s parameter shapes differ from the snapshot.
    pub fn compile(&self, template: &Model) -> Result<QNet, String> {
        let next = Cell::new(0usize);
        let take = |shape: &[usize], what: &str| -> Result<usize, String> {
            let i = next.get();
            if i >= self.tensors.len() {
                return Err(format!("model has more parameters than the snapshot ({what})"));
            }
            if self.shapes[i] != shape {
                return Err(format!(
                    "{what} shape mismatch at parameter {i}: snapshot {:?} vs model {:?}",
                    self.shapes[i], shape
                ));
            }
            next.set(i + 1);
            Ok(i)
        };
        let mut ops = Vec::new();
        lower_layers(
            template.root(),
            &|l: &dyn Layer| l.as_any().is_some_and(|a| a.is::<ActivationProbe>()),
            &mut |fc| {
                let (out_f, in_f) = (fc.out_features(), fc.in_features());
                let w = take(&[out_f, in_f], "Linear weight")?;
                let b = take(&[out_f], "Linear bias")?;
                let d = self.tensors[w].decode_i8();
                Ok(QLinear::new(d.q, d.scale, d.offset, self.tensors[b].dequantize(), in_f, out_f))
            },
            &mut |conv| {
                let (oc, ic, k) = (conv.out_channels(), conv.in_channels(), conv.kernel());
                let w = take(&[oc, ic, k, k], "Conv2d weight")?;
                let b = take(&[oc], "Conv2d bias")?;
                let d = self.tensors[w].decode_i8();
                Ok(QConv2d::new(
                    d.q,
                    d.scale,
                    d.offset,
                    self.tensors[b].dequantize(),
                    ic,
                    oc,
                    k,
                    conv.stride(),
                    conv.padding(),
                ))
            },
            &mut ops,
        )?;
        if next.get() != self.tensors.len() {
            return Err(format!(
                "snapshot has {} parameter tensors but the model consumed {}",
                self.tensors.len(),
                next.get()
            ));
        }
        Ok(QNet::new(ops))
    }

    /// Runs the end-to-end integer-domain forward pass: compile this image
    /// against `template`'s architecture, then infer without ever
    /// materializing dequantized `f32` weights. Matches the
    /// dequantize-then-float path within quantization tolerance (pinned by
    /// the `qinfer` proptest suite) and is byte-deterministic across thread
    /// counts (the program is single-threaded by construction).
    ///
    /// Compiling is `O(weights)`; callers running many inputs against one
    /// image should [`QuantizedModel::compile`] once and reuse the program.
    ///
    /// # Errors
    ///
    /// As [`QuantizedModel::compile`].
    pub fn infer(&self, template: &Model, x: &Tensor) -> Result<Tensor, String> {
        Ok(self.compile(template)?.infer(x))
    }

    /// Dequantizes all tensors into fresh buffers (for analysis).
    pub fn dequantize_tensors(&self) -> Vec<Tensor> {
        self.tensors
            .iter()
            .zip(&self.shapes)
            .map(|(q, shape)| Tensor::from_vec(shape.clone(), q.dequantize()))
            .collect()
    }

    /// Total number of differing live bits vs another snapshot (diagnostic).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different structure.
    pub fn hamming_distance(&self, other: &QuantizedModel) -> usize {
        assert_eq!(self.tensors.len(), other.tensors.len(), "snapshot structure mismatch");
        self.tensors.iter().zip(&other.tensors).map(|(a, b)| a.hamming_distance(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_biterror::UniformChip;
    use bitrobust_nn::{Linear, Mode, Relu, Sequential};
    use rand::SeedableRng;

    fn toy_model(seed: u64) -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Linear::new(6, 12, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(12, 4, &mut rng));
        Model::new("toy", net)
    }

    #[test]
    fn quantize_write_round_trip_is_close() {
        let mut model = toy_model(1);
        let before = model.param_tensors();
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        assert_eq!(q.total_weights(), 6 * 12 + 12 + 12 * 4 + 4);
        q.write_to(&mut model);
        let after = model.param_tensors();
        for (b, a) in before.iter().zip(&after) {
            let span = b.max() - b.min();
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((x - y).abs() <= span / 254.0 + 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn global_scheme_shares_one_range() {
        let model = toy_model(2);
        let q = QuantizedModel::quantize(&model, QuantScheme::eq1_global(8));
        let first = q.tensors()[0].range();
        for t in q.tensors() {
            assert_eq!(t.range(), first, "global granularity must share the range");
        }
    }

    #[test]
    fn per_tensor_scheme_adapts_ranges() {
        let mut model = toy_model(3);
        // Scale one parameter up so ranges must differ.
        model.visit_params(&mut |p| {
            if p.value().shape() == [4] {
                p.value_mut().map_inplace(|v| v + 3.0);
            }
        });
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let ranges: Vec<_> = q.tensors().iter().map(|t| t.range()).collect();
        assert!(ranges.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn inject_changes_outputs_consistently_with_offsets() {
        let model = toy_model(4);
        let q0 = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut q1 = q0.clone();
        let mut q2 = q0.clone();
        let chip = UniformChip::new(9);
        q1.inject(&chip.at_rate(0.05));
        q2.inject(&chip.at_rate(0.05));
        // Same chip, same rate -> identical pattern.
        assert_eq!(q1.hamming_distance(&q2), 0);
        // Subset property at the model level.
        let mut q3 = q0.clone();
        q3.inject(&chip.at_rate(0.01));
        let flips_small = q0.hamming_distance(&q3);
        let flips_large = q0.hamming_distance(&q1);
        assert!(flips_small < flips_large);
    }

    #[test]
    fn perturbed_model_changes_predictions_gracefully() {
        let mut model = toy_model(5);
        let x = bitrobust_tensor::Tensor::rand_uniform(
            &[4, 6],
            -1.0,
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(0),
        );
        let clean_out = model.forward(&x, Mode::Eval);
        let mut q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        q.inject(&UniformChip::new(1).at_rate(0.1));
        q.write_to(&mut model);
        let dirty_out = model.forward(&x, Mode::Eval);
        assert_eq!(clean_out.shape(), dirty_out.shape());
        assert!(dirty_out.data().iter().all(|v| v.is_finite()));
        assert_ne!(clean_out, dirty_out);
    }

    #[test]
    fn compile_matches_dequantized_float_forward_within_tolerance() {
        let model = toy_model(7);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let x = bitrobust_tensor::Tensor::rand_uniform(
            &[5, 6],
            -1.0,
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );

        // The float reference is the dequantized replica, not the original
        // model: both paths then share identical weight values and only the
        // integer path's activation quantization separates them.
        let mut replica = model.clone();
        q.write_to(&mut replica);
        let y_ref = replica.infer(&x, Mode::Eval);
        let y_int = q.infer(&model, &x).expect("toy model lowers");

        assert_eq!(y_ref.shape(), y_int.shape());
        let amax = y_ref.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (a, b) in y_int.data().iter().zip(y_ref.data()) {
            assert!((a - b).abs() <= 0.05 * amax.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn compile_skips_probes_and_reuses_program() {
        use crate::arch::{build, ArchKind, NormKind};

        // The MLP builder inserts an ActivationProbe (identity at inference)
        // plus a Flatten; both must lower cleanly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = build(ArchKind::Mlp, [1, 8, 8], 4, NormKind::Group, &mut rng).model;
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let net = q.compile(&model).expect("mlp must lower");
        assert!(!net.is_empty());

        let x = bitrobust_tensor::Tensor::rand_uniform(
            &[3, 1, 8, 8],
            -1.0,
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(2),
        );
        // A compiled program is reusable and deterministic.
        let a = net.infer(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
        assert_eq!(a, q.infer(&model, &x).unwrap());
    }

    #[test]
    fn compile_rejects_unsupported_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(bitrobust_nn::Conv2d::new(1, 2, 3, 1, 1, &mut rng));
        net.push(bitrobust_nn::GroupNorm::new(2, 1));
        let model = Model::new("normed", net);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let err = q.compile(&model).unwrap_err();
        assert!(err.contains("no integer-domain kernel"), "{err}");
    }

    #[test]
    fn compile_rejects_structure_mismatch() {
        let model = toy_model(8);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut other_net = Sequential::new();
        other_net.push(Linear::new(5, 12, &mut rng));
        let other = Model::new("other", other_net);
        let err = q.compile(&other).unwrap_err();
        assert!(err.contains("shape mismatch") || err.contains("parameter"), "{err}");
    }

    #[test]
    fn injected_errors_change_native_inference() {
        let model = toy_model(9);
        let clean = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut dirty = clean.clone();
        dirty.inject(&UniformChip::new(2).at_rate(0.05));
        let x = bitrobust_tensor::Tensor::rand_uniform(
            &[4, 6],
            -1.0,
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let y_clean = clean.infer(&model, &x).unwrap();
        let y_dirty = dirty.infer(&model, &x).unwrap();
        assert_eq!(y_clean.shape(), y_dirty.shape());
        assert!(y_dirty.data().iter().all(|v| v.is_finite()));
        assert_ne!(y_clean, y_dirty);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn write_to_rejects_mismatched_model() {
        let model = toy_model(6);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut other_net = Sequential::new();
        other_net.push(Linear::new(5, 12, &mut rng));
        other_net.push(Linear::new(12, 4, &mut rng));
        let mut other = Model::new("other", other_net);
        q.write_to(&mut other);
    }
}
