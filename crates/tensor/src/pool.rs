//! A small persistent thread pool with a data-parallel `parallel_for`.
//!
//! The NN substrate is compute-bound on convolution and matrix products.
//! Spawning OS threads per layer call would dominate runtime, so a single
//! process-wide pool is created lazily and reused. Work is distributed via an
//! atomic index counter (self-scheduling), which balances uneven per-item
//! costs such as im2col on boundary samples.
//!
//! The pool intentionally exposes only *fork-join* parallelism: `parallel_for`
//! does not return until every index has been processed, which is what makes
//! lending non-`'static` closures to the workers sound.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

thread_local! {
    /// Whether the current thread is executing a pool job. Nested
    /// `parallel_for` calls from inside a job run inline instead of
    /// re-submitting: the outer fan-out already saturates the pool, and a
    /// nested submission would deadlock on the single-job-in-flight lock.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker flagging the current thread as executing pool work.
struct JobScope;

impl JobScope {
    fn enter() -> Self {
        IN_POOL_JOB.with(|flag| flag.set(true));
        JobScope
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        IN_POOL_JOB.with(|flag| flag.set(false));
    }
}

/// Environment variable overriding the number of worker threads.
pub const THREADS_ENV: &str = "BITROBUST_THREADS";

/// Work items below this count run inline; the pool is not worth waking.
const SERIAL_CUTOFF: usize = 2;

type Task = dyn Fn(usize) + Sync;

/// A type-erased pointer to the submitted closure plus its iteration state.
///
/// The raw pointer borrows from the submitting stack frame. This is sound
/// because [`ThreadPool::parallel_for`] does not return until every worker
/// has finished executing the job (see `active` accounting below).
#[derive(Clone)]
struct Job {
    func: *const Task,
    next: Arc<AtomicUsize>,
    n: usize,
}

// SAFETY: the closure behind `func` is `Sync`, and the pointer is only
// dereferenced while the submitting frame is provably alive (the submitter
// blocks until `active == 0`).
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    epoch: u64,
    active: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

/// A fixed-size fork-join thread pool.
///
/// Most users never construct one: [`parallel_for`] uses a lazily created
/// process-wide pool sized from `std::thread::available_parallelism`, capped
/// by the `BITROBUST_THREADS` environment variable.
///
/// # Examples
///
/// ```
/// let sums: Vec<std::sync::atomic::AtomicU64> =
///     (0..128).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
/// bitrobust_tensor::parallel_for(128, |i| {
///     sums[i].store(i as u64 * 2, std::sync::atomic::Ordering::Relaxed);
/// });
/// assert_eq!(sums[64].load(std::sync::atomic::Ordering::Relaxed), 128);
/// ```
pub struct ThreadPool {
    inner: Arc<Inner>,
    submit_lock: Mutex<()>,
    workers: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("workers", &self.workers).finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `workers` background threads.
    ///
    /// The submitting thread also participates in each job, so total
    /// parallelism is `workers + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`; use [`ThreadPool::serial`] for a pool that
    /// runs everything inline.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "ThreadPool::new requires at least one worker");
        let inner = Arc::new(Inner {
            state: Mutex::new(State { job: None, epoch: 0, active: 0, shutdown: false }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        for _ in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("bitrobust-pool".into())
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn pool worker");
        }
        Self { inner, submit_lock: Mutex::new(()), workers }
    }

    /// Creates a degenerate pool that executes jobs on the calling thread.
    pub fn serial() -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State { job: None, epoch: 0, active: 0, shutdown: false }),
                work_ready: Condvar::new(),
                work_done: Condvar::new(),
            }),
            submit_lock: Mutex::new(()),
            workers: 0,
        }
    }

    /// Number of background worker threads (0 for a serial pool).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Invokes `f(i)` for every `i in 0..n`, distributing indices over the
    /// pool. Blocks until all invocations complete.
    ///
    /// Indices are claimed dynamically, so per-index workloads may be uneven.
    /// `f` must be safe to call concurrently from multiple threads.
    ///
    /// Nesting is supported: a `parallel_for` issued from inside a running
    /// job executes its iterations inline on the calling worker (the outer
    /// fan-out already owns the pool), so parallel layers can be driven from
    /// parallel outer loops such as the fault-injection campaign engine.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.workers == 0 || n < SERIAL_CUTOFF || IN_POOL_JOB.with(Cell::get) {
            bitrobust_obs::counter_add("pool.inline", 1);
            for i in 0..n {
                f(i);
            }
            return;
        }
        bitrobust_obs::counter_add("pool.jobs", 1);

        // One job in flight at a time; concurrent submitters queue here.
        let _guard = self.submit_lock.lock();

        let next = Arc::new(AtomicUsize::new(0));
        let f_ref: &(dyn Fn(usize) + Sync + '_) = &f;
        // SAFETY: lifetime erasure only; the pointer is dropped before this
        // function returns (workers finish before `active` reaches zero).
        let f_static: &'static Task = unsafe { std::mem::transmute(f_ref) };
        let job = Job { func: f_static as *const Task, next: Arc::clone(&next), n };

        let epoch;
        {
            let mut state = self.inner.state.lock();
            state.job = Some(job);
            state.epoch += 1;
            state.active = self.workers;
            epoch = state.epoch;
        }
        self.inner.work_ready.notify_all();

        // The submitter chips in instead of idling.
        {
            let _scope = JobScope::enter();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            }
        }

        let mut state = self.inner.state.lock();
        while !(state.active == 0 && state.epoch == epoch) {
            self.inner.work_done.wait(&mut state);
        }
        state.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.work_ready.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = inner.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    last_epoch = state.epoch;
                    break state.job.clone().expect("epoch advanced without a job");
                }
                inner.work_ready.wait(&mut state);
            }
        };

        // SAFETY: the submitter keeps the closure alive until `active == 0`,
        // which we only signal after the last dereference below.
        let func = unsafe { &*job.func };
        {
            let _scope = JobScope::enter();
            loop {
                let i = job.next.fetch_add(1, Ordering::Relaxed);
                if i >= job.n {
                    break;
                }
                func(i);
            }
        }

        let mut state = inner.state.lock();
        state.active -= 1;
        if state.active == 0 {
            inner.work_done.notify_all();
        }
    }
}

fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(available)
            .clamp(1, 64);
        if threads <= 1 {
            ThreadPool::serial()
        } else {
            // The submitter participates, so spawn one fewer worker.
            ThreadPool::new(threads - 1)
        }
    })
}

/// Runs `f(i)` for `i in 0..n` on the process-wide pool.
///
/// See [`ThreadPool::parallel_for`] for the contract on `f`.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    global_pool().parallel_for(n, f);
}

/// Total parallelism of the process-wide pool (background workers plus the
/// submitting thread; `1` for a serial pool). This is the authoritative
/// thread count for benchmark reports — it reflects the `BITROBUST_THREADS`
/// override and clamping exactly as the pool applied them.
pub fn pool_parallelism() -> usize {
    global_pool().workers() + 1
}

/// Splits `out` into `n = out.len().div_ceil(chunk)` consecutive chunks and
/// runs `f(i, chunk_i)` in parallel, handing each invocation exclusive access
/// to its chunk.
///
/// This is the workhorse for per-sample parallelism: a batched tensor's data
/// is a contiguous buffer, and each sample occupies a disjoint `chunk`-sized
/// region.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_for_disjoint_chunks<F>(out: &mut [f32], chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let len = out.len();
    if len == 0 {
        return;
    }
    let n = len.div_ceil(chunk);
    let base = SendPtr(out.as_mut_ptr());
    // Capture the Send+Sync wrapper by reference, not its raw-pointer field
    // (edition-2021 closures would otherwise capture the non-Send field).
    let base = &base;
    parallel_for(n, |i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: chunks [start, end) are pairwise disjoint and within bounds;
        // `out` is exclusively borrowed for the duration of this call.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
        f(i, slice);
    });
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: used only to carve provably disjoint sub-slices across threads.
unsafe impl Send for SendPtr {}
// SAFETY: shared references to SendPtr only copy the address; all writes go
// through the disjoint sub-slices derived above, never through `&SendPtr`.
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_and_one() {
        parallel_for(0, |_| panic!("must not be called"));
        let hit = AtomicUsize::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        for round in 0..100 {
            let counter = AtomicUsize::new(0);
            pool.parallel_for(round % 7 + 1, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), round % 7 + 1);
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ThreadPool::serial();
        let counter = AtomicUsize::new(0);
        pool.parallel_for(10, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn disjoint_chunks_cover_buffer_exactly() {
        let mut buf = vec![0.0f32; 103]; // deliberately not a multiple of chunk
        parallel_for_disjoint_chunks(&mut buf, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32 + 1.0;
            }
        });
        assert!(buf.iter().all(|&v| v > 0.0));
        assert_eq!(buf[0], 1.0);
        assert_eq!(buf[100], 11.0);
        assert_eq!(buf[102], 11.0);
    }

    #[test]
    fn disjoint_chunks_empty_buffer_is_noop() {
        let mut buf: Vec<f32> = Vec::new();
        parallel_for_disjoint_chunks(&mut buf, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn nested_parallel_for_runs_inline_without_deadlock() {
        // Every (i, j) pair must be visited exactly once; the inner call
        // runs inline on whichever thread claimed `i`.
        let hits: Vec<Vec<AtomicUsize>> =
            (0..16).map(|_| (0..8).map(|_| AtomicUsize::new(0)).collect()).collect();
        parallel_for(16, |i| {
            parallel_for(8, |j| {
                hits[i][j].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().flatten().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_disjoint_chunks_cover_buffer() {
        let results: Vec<Mutex<Vec<f32>>> = (0..6).map(|_| Mutex::new(Vec::new())).collect();
        parallel_for(6, |i| {
            let mut buf = vec![0.0f32; 32];
            parallel_for_disjoint_chunks(&mut buf, 8, |j, chunk| {
                for v in chunk.iter_mut() {
                    *v = (i * 10 + j) as f32;
                }
            });
            *results[i].lock() = buf;
        });
        for (i, slot) in results.iter().enumerate() {
            let buf = slot.lock();
            assert_eq!(buf[0], (i * 10) as f32);
            assert_eq!(buf[31], (i * 10 + 3) as f32);
        }
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..25 {
                        pool.parallel_for(8, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 8);
    }
}
