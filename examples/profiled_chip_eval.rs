//! Deploy-time check on specific chips: evaluate a trained model against
//! synthesized *profiled* chips with realistic spatial error structure
//! (column-aligned faults, 0-to-1 bias), at several memory mappings.
//!
//! ```text
//! cargo run --release --example profiled_chip_eval
//! ```

use bitrobust_biterror::{ChipKind, ProfiledChip};
use bitrobust_core::{
    build, robust_eval, train, ArchKind, NormKind, RandBetVariant, TrainConfig, TrainMethod,
    EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, SynthDataset};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn main() {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;

    let scheme = QuantScheme::rquant(8);
    let mut cfg = TrainConfig::new(
        Some(scheme),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.05, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 10;
    cfg.augment = AugmentConfig::mnist();
    println!("training a RandBET model (trained ONLY on uniform random errors)...");
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    println!("clean error {:.2}%\n", 100.0 * report.clean_error);

    for kind in ChipKind::all() {
        let chip = ProfiledChip::synthesize(kind, 1);
        println!("{} ({} bit cells):", kind.name(), chip.n_cells());
        for target_rate in [0.005, 0.02] {
            let v = chip.voltage_for_rate(target_rate);
            let stats = chip.stats_at(v);
            // Average over four different weight-to-memory mappings.
            let injectors: Vec<_> = (0..4).map(|k| chip.at_voltage(v, k * 99_991, false)).collect();
            let r = robust_eval(&model, scheme, &test_ds, &injectors, EVAL_BATCH, Mode::Eval);
            println!(
                "  V/Vmin {v:.3}: p {:.2}% (0->1 {:.2}%, 1->0 {:.2}%) -> RErr {:.2}% ± {:.2}",
                100.0 * stats.rate,
                100.0 * stats.rate_0_to_1,
                100.0 * stats.rate_1_to_0,
                100.0 * r.mean_error,
                100.0 * r.std_error,
            );
        }
    }
    println!("\nRandBET generalizes across chips without per-chip profiling or retraining.");
}
