//! # bitrobust-serve
//!
//! An inference service for the bitrobust model stack, built on the same
//! fork-join [`scheduler`](bitrobust_core::scheduler) that runs the
//! fault-injection campaigns, sweeps, and data-parallel training — one
//! executor, every batch-parallel subsystem.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──submit──▶ [bounded queue] ──wave──▶ [micro-batcher]
//!                        │ shed when full          │ groups by (model, shape)
//!                        ▼                         ▼
//!                     Overloaded            [scheduler::execute]
//!                                            one work item per micro-batch
//!                                                  │
//!  [model registry] ◀──resolve at submit──         ▼
//!    hot-swap via Arc            responses delivered in wave order
//! ```
//!
//! - **[`ModelRegistry`]**: named, versioned models behind `Arc` swaps.
//!   [`ModelRegistry::publish`] under a live service is a zero-downtime
//!   hot-swap: requests already submitted keep the model they resolved,
//!   later submissions get the new version, and every response reports
//!   the version that served it.
//! - **Bounded queue + admission control**: the queue holds at most
//!   [`ServeConfig::queue_capacity`] pending requests; beyond that,
//!   [`InferenceService::submit`] sheds with [`SubmitError::Overloaded`]
//!   instead of buffering without bound. Shed requests are counted
//!   ([`ServeStats::shed`]) — nothing is silently dropped, and shutdown
//!   drains (serves, not discards) everything still queued.
//! - **Dynamic micro-batching**: single-image requests are coalesced into
//!   engine-sized batches — the engine waits up to
//!   [`ServeConfig::max_delay`] past the oldest pending request for more
//!   traffic, then fans the wave's micro-batches out through
//!   [`bitrobust_core::scheduler::execute`].
//!
//! ## Determinism
//!
//! Every inference kernel is row-independent (im2col matmul, GroupNorm,
//! pooling, and row softmax all operate per sample), so a request's
//! response is **byte-identical** to running its image alone through
//! [`reference_response`] — regardless of which requests it was batched
//! with, the batch size, or the thread count. The serve integration suite
//! pins this against concurrent synthetic clients.
//!
//! ## Caveats
//!
//! Requests are grouped by (model, image shape), so a request can only
//! ever be batched with shape-compatible peers; an image whose shape does
//! not match its model's input will panic the engine thread, as the same
//! tensor would panic [`bitrobust_nn::Model::infer`] directly. Submitting
//! well-formed single-sample images (`[1, C, H, W]`) is the caller's
//! contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod queue;
pub mod registry;
pub mod service;

pub use batcher::coalesce;
pub use queue::{BoundedQueue, PushError};
pub use registry::{ModelRegistry, ServedModel};
pub use service::{
    reference_response, InferenceService, ServeConfig, ServeResponse, ServeStats, SubmitError,
    Ticket,
};
