//! The inference service: submit → queue → micro-batch → scheduler →
//! respond.
//!
//! [`InferenceService::start`] spawns one engine thread. Clients
//! [`submit`](InferenceService::submit) single-image requests and get a
//! [`Ticket`] to [`wait`](Ticket::wait) on; the engine collects request
//! waves from the bounded queue, coalesces them into per-(model, shape)
//! micro-batches, fans the batches out through the shared campaign
//! [`scheduler`], and delivers responses in wave order. Each response is
//! byte-identical to [`reference_response`]
//! on the same image and model — batching and scheduling never change
//! bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bitrobust_core::scheduler::{self, ItemSizing};
use bitrobust_nn::{Mode, Model};
use bitrobust_tensor::{softmax_rows, Tensor};

use crate::batcher::coalesce;
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{ModelRegistry, ServedModel};

/// Tunables for one [`InferenceService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission limit: pending requests beyond this are shed with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Micro-batch size cap, and the pending count that releases a wave
    /// before its delay window closes.
    pub max_batch: usize,
    /// How long the engine holds a wave open past its oldest pending
    /// request, waiting for traffic to coalesce. The latency floor under
    /// light load; irrelevant under saturation.
    pub max_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { queue_capacity: 1024, max_batch: 32, max_delay: Duration::from_millis(2) }
    }
}

/// One served prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Argmax class index.
    pub prediction: usize,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Registry key of the model that served the request.
    pub model_key: String,
    /// Version of that model at submit time — under a hot-swap, the
    /// version the response's bytes are accountable to.
    pub model_version: u64,
}

/// Why a submission was rejected. Rejected requests never enter the
/// queue; [`Overloaded`](SubmitError::Overloaded) and
/// [`ShuttingDown`](SubmitError::ShuttingDown) count as shed in
/// [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No model is published under the requested key.
    UnknownModel(String),
    /// The queue is at capacity (backpressure).
    Overloaded,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(key) => write!(f, "no model published under key {key:?}"),
            Self::Overloaded => write!(f, "request queue is full"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Cumulative counters plus live gauges. `completed + shed == submitted`
/// once the service has shut down: every admitted request is served,
/// every rejected one is counted — none vanish. The gauges
/// (`queue_depth`, `in_flight`, `versions`) are instantaneous reads — by
/// the time the caller looks, the live service may have moved on; after
/// shutdown they are final (`queue_depth == 0`, `in_flight == 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that passed model resolution (admitted + shed).
    pub submitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Requests rejected by admission control or shutdown.
    pub shed: u64,
    /// Requests currently queued, awaiting a wave.
    pub queue_depth: u64,
    /// Requests drained into the engine's current wave and not yet
    /// responded to.
    pub in_flight: u64,
    /// `(key, version)` per published model, sorted by key.
    pub versions: Vec<(String, u64)>,
}

/// A pending response; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<ServeResponse>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the engine thread died without responding (it panicked —
    /// e.g. on an image whose shape doesn't fit the model); the service
    /// otherwise always responds, even to requests drained at shutdown.
    pub fn wait(self) -> ServeResponse {
        self.rx.recv().expect("serve engine dropped a request without responding")
    }
}

/// One queued request: the model resolved at submit time (hot-swap
/// boundary), the single-sample image, the response channel, and the
/// admission timestamp (obs latency breakdown only — never read into the
/// response bytes).
struct PendingRequest {
    model: Arc<ServedModel>,
    image: Tensor,
    tx: mpsc::Sender<ServeResponse>,
    submitted: Instant,
}

/// The running service. Dropping it (or calling
/// [`shutdown`](InferenceService::shutdown)) closes the queue, drains and
/// serves the backlog, and joins the engine thread.
pub struct InferenceService {
    registry: Arc<ModelRegistry>,
    queue: Arc<BoundedQueue<PendingRequest>>,
    submitted: AtomicU64,
    completed: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
    engine: Option<std::thread::JoinHandle<()>>,
}

impl InferenceService {
    /// Starts the engine thread over `registry` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config's capacity or batch size is 0, or the engine
    /// thread cannot be spawned.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let completed = Arc::new(AtomicU64::new(0));
        let in_flight = Arc::new(AtomicU64::new(0));
        let engine = {
            let queue = Arc::clone(&queue);
            let completed = Arc::clone(&completed);
            let in_flight = Arc::clone(&in_flight);
            std::thread::Builder::new()
                .name("bitrobust-serve-engine".into())
                .spawn(move || {
                    while let Some(wave) = queue.wait_wave(config.max_batch, config.max_delay) {
                        bitrobust_obs::gauge_set("serve.queue_depth", queue.len() as u64);
                        serve_wave(wave, config.max_batch, &completed, &in_flight);
                    }
                })
                .expect("spawn serve engine thread")
        };
        Self {
            registry,
            queue,
            submitted: AtomicU64::new(0),
            completed,
            in_flight,
            engine: Some(engine),
        }
    }

    /// The registry this service resolves models from. Publishing to it
    /// while the service runs is the hot-swap path.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Submits one single-sample image (`[1, ...]`) for classification by
    /// the current version of `key`'s model. Returns a [`Ticket`] for the
    /// response, or the rejection ([`SubmitError`]).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a single-sample batch (leading dim 1).
    pub fn submit(&self, key: &str, image: Tensor) -> Result<Ticket, SubmitError> {
        let model =
            self.registry.get(key).ok_or_else(|| SubmitError::UnknownModel(key.to_string()))?;
        assert!(
            image.ndim() >= 2 && image.dim(0) == 1,
            "image must be a single-sample batch [1, ...], got {:?}",
            image.shape()
        );
        self.submitted.fetch_add(1, Ordering::Relaxed);
        bitrobust_obs::counter_add("serve.submitted", 1);
        let (tx, rx) = mpsc::channel();
        let request = PendingRequest { model, image, tx, submitted: Instant::now() };
        match self.queue.push(request) {
            Ok(()) => Ok(Ticket { rx }),
            Err(PushError::Full) => {
                bitrobust_obs::counter_add("serve.shed", 1);
                Err(SubmitError::Overloaded)
            }
            Err(PushError::Closed) => {
                bitrobust_obs::counter_add("serve.shed", 1);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// [`submit`](InferenceService::submit) and wait for the response.
    pub fn infer_blocking(&self, key: &str, image: Tensor) -> Result<ServeResponse, SubmitError> {
        self.submit(key, image).map(Ticket::wait)
    }

    /// Current counters and live gauges; see [`ServeStats`].
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.queue.shed_count(),
            queue_depth: self.queue.len() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed),
            versions: self.registry.versions(),
        }
    }

    /// Stops admission, serves every still-queued request, joins the
    /// engine, and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.queue.close();
        if let Some(engine) = self.engine.take() {
            engine.join().expect("serve engine thread panicked");
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one drained wave: coalesce, execute every micro-batch through
/// the shared scheduler, then deliver responses serially in wave order —
/// the same per-slot-write / serial-delivery discipline as the campaign
/// engine.
fn serve_wave(
    wave: Vec<PendingRequest>,
    max_batch: usize,
    completed: &AtomicU64,
    in_flight: &AtomicU64,
) {
    bitrobust_obs::span!("serve.wave");
    bitrobust_obs::record("serve.wave_size", wave.len() as u64);
    in_flight.fetch_add(wave.len() as u64, Ordering::Relaxed);
    // Enqueue→dispatch latency: how long each request sat in the queue
    // before its wave was drained.
    if bitrobust_obs::enabled() {
        let dispatched = Instant::now();
        for request in &wave {
            let wait = dispatched.saturating_duration_since(request.submitted);
            bitrobust_obs::record("serve.queue_wait_ns", wait.as_nanos() as u64);
        }
    }
    let batches = coalesce(
        wave.len(),
        |i| {
            let request = &wave[i];
            (
                request.model.key().to_string(),
                request.model.version(),
                request.image.shape().to_vec(),
            )
        },
        max_batch,
    );
    for batch in &batches {
        bitrobust_obs::record("serve.batch_size", batch.len() as u64);
    }
    // Execution inputs only — `Sync` model/tensor data. The response
    // channels stay outside the scheduler closure and are drained serially
    // below, in wave order.
    let inputs: Vec<(&Model, Tensor)> = batches
        .iter()
        .map(|batch| {
            let first = &wave[batch[0]].image;
            let mut shape = first.shape().to_vec();
            shape[0] = batch.len();
            let mut data = Vec::with_capacity(first.numel() * batch.len());
            for &i in batch {
                data.extend_from_slice(wave[i].image.data());
            }
            (wave[batch[0]].model.model(), Tensor::from_vec(shape, data))
        })
        .collect();
    let outputs = scheduler::execute(inputs.len(), 1, ItemSizing::PerBatch, |b, _| {
        let (model, x) = &inputs[b];
        classify(model, x)
    });

    let mut responses: Vec<Option<(usize, f32)>> = vec![None; wave.len()];
    for (batch, rows) in batches.iter().zip(&outputs) {
        for (&i, &row) in batch.iter().zip(rows) {
            responses[i] = Some(row);
        }
    }
    for (request, response) in wave.iter().zip(responses) {
        let (prediction, confidence) = response.expect("every wave slot served exactly once");
        // A send error means the client dropped its ticket; the request
        // was still served, so it counts as completed.
        let _ = request.tx.send(ServeResponse {
            prediction,
            confidence,
            model_key: request.model.key().to_string(),
            model_version: request.model.version(),
        });
        completed.fetch_add(1, Ordering::Relaxed);
        in_flight.fetch_sub(1, Ordering::Relaxed);
        bitrobust_obs::counter_add("serve.completed", 1);
        if bitrobust_obs::enabled() {
            bitrobust_obs::record("serve.total_ns", request.submitted.elapsed().as_nanos() as u64);
        }
    }
}

/// Classifies a batch: per-row argmax class and its softmax probability.
fn classify(model: &Model, x: &Tensor) -> Vec<(usize, f32)> {
    let probs = softmax_rows(&model.infer(x, Mode::Eval));
    let preds = probs.argmax_rows();
    preds.iter().enumerate().map(|(row, &pred)| (pred, probs.row(row)[pred])).collect()
}

/// The single-request reference the service is pinned against: classify
/// `image` alone, no queueing, no batching. Every [`ServeResponse`] must
/// be byte-identical to this for the (model, version) it reports.
pub fn reference_response(model: &ServedModel, image: &Tensor) -> ServeResponse {
    assert!(
        image.ndim() >= 2 && image.dim(0) == 1,
        "image must be a single-sample batch [1, ...], got {:?}",
        image.shape()
    );
    let rows = classify(model.model(), image);
    let (prediction, confidence) = rows[0];
    ServeResponse {
        prediction,
        confidence,
        model_key: model.key().to_string(),
        model_version: model.version(),
    }
}
