//! Packed GEMM vs the naive reference kernels on the actual layer shapes of
//! the paper's scaled-down models.
//!
//! Shapes (all single-threaded — batch parallelism lives above the kernel):
//!
//! * `fc_head` — the MLP hidden layer as executed by `Linear::forward`
//!   (`x·Wᵀ`, `matmul_nt`): batch 256 × 196 features → 128.
//! * `conv_early/mid/late` — `W·cols` im2col products of the SimpleNet
//!   stack on 16×16 inputs (`matmul`): early layers are wide-and-shallow
//!   (large `oh*ow`, small K), late layers deep-and-narrow.
//!
//! Besides the criterion benchmarks, running this bench writes
//! `BENCH_gemm.json` at the workspace root with naive vs packed GFLOP/s per
//! shape. CI uploads it and fails the build if the packed kernel loses its
//! edge (graded floors, relaxed on 1-thread runners like the other gates).

use std::time::Instant;

use bitrobust_tensor::{
    gemm_i8, matmul, matmul_nt, matmul_nt_reference, matmul_reference, transpose, GemmOperandI8,
    Tensor,
};
use criterion::{criterion_group, Criterion};
use rand::{Rng, SeedableRng};

/// Which kernel pair a shape exercises.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// `C = A·B` (the im2col conv product).
    Nn,
    /// `C = A·Bᵀ` (the `Linear` forward product).
    Nt,
}

struct Shape {
    name: &'static str,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
}

/// The gated shapes. `fc_head` carries the 2.0× floor; the conv shapes 1.5×.
const SHAPES: &[Shape] = &[
    Shape { name: "fc_head", variant: Variant::Nt, m: 256, k: 196, n: 128 },
    Shape { name: "conv_early", variant: Variant::Nn, m: 16, k: 144, n: 256 },
    Shape { name: "conv_mid", variant: Variant::Nn, m: 32, k: 288, n: 64 },
    Shape { name: "conv_late", variant: Variant::Nn, m: 96, k: 576, n: 16 },
];

/// Builds the operands for a shape: `A: [m, k]` and `B` in the layout the
/// variant's kernel expects (`[k, n]` for NN, `[n, k]` for NT).
fn operands(s: &Shape) -> (Tensor, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let a = Tensor::rand_uniform(&[s.m, s.k], -1.0, 1.0, &mut rng);
    let b = match s.variant {
        Variant::Nn => Tensor::rand_uniform(&[s.k, s.n], -1.0, 1.0, &mut rng),
        Variant::Nt => Tensor::rand_uniform(&[s.n, s.k], -1.0, 1.0, &mut rng),
    };
    (a, b)
}

fn run_packed(s: &Shape, a: &Tensor, b: &Tensor) -> Tensor {
    match s.variant {
        Variant::Nn => matmul(a, b),
        Variant::Nt => matmul_nt(a, b),
    }
}

fn run_naive(s: &Shape, a: &Tensor, b: &Tensor) -> Tensor {
    match s.variant {
        Variant::Nn => matmul_reference(a, b),
        Variant::Nt => matmul_nt_reference(a, b),
    }
}

/// Builds i8 operands for a shape: `A: m x k` row-major and `B` in the
/// layout the variant implies (`[k, n]` row-major for NN, `[n, k]` stored
/// and walked transposed for NT — the `QLinear` weight layout).
fn operands_i8(s: &Shape) -> (Vec<i8>, Vec<i8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let a: Vec<i8> = (0..s.m * s.k).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    let b: Vec<i8> = (0..s.k * s.n).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    (a, b)
}

/// The packed integer kernel on the variant's operand views. `c` is
/// accumulated into, so callers zero it between timing iterations.
fn run_packed_i8(s: &Shape, a: &[i8], b: &[i8], c: &mut [i32]) {
    let a_view = GemmOperandI8::row_major(a, s.k);
    let b_view = match s.variant {
        Variant::Nn => GemmOperandI8::row_major(b, s.n),
        Variant::Nt => GemmOperandI8::transposed(b, s.k),
    };
    gemm_i8(c, s.n, a_view, b_view, s.m, s.k, s.n);
}

/// The naive i32-accumulating triple loop the packed kernel is gated
/// against. Integer adds are exact, so packed vs naive must be *equal*.
fn run_naive_i8(s: &Shape, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..s.m {
        for l in 0..s.k {
            let av = a[i * s.k + l] as i32;
            for j in 0..s.n {
                let bv = match s.variant {
                    Variant::Nn => b[l * s.n + j],
                    Variant::Nt => b[j * s.k + l],
                } as i32;
                c[i * s.n + j] += av * bv;
            }
        }
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for s in SHAPES {
        let (a, b) = operands(s);
        group.bench_function(format!("packed_{}", s.name), |bch| {
            bch.iter(|| run_packed(s, std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_function(format!("naive_{}", s.name), |bch| {
            bch.iter(|| run_naive(s, std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        let (ai, bi) = operands_i8(s);
        let mut c = vec![0i32; s.m * s.n];
        group.bench_function(format!("i8_packed_{}", s.name), |bch| {
            bch.iter(|| {
                c.fill(0);
                run_packed_i8(s, std::hint::black_box(&ai), std::hint::black_box(&bi), &mut c);
                std::hint::black_box(c[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);

/// Best-of-`reps` wall-clock seconds for `f`, with enough inner iterations
/// to dodge timer granularity on these sub-millisecond kernels.
fn best_of<F: FnMut()>(mut f: F, iters: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// What the *disabled* obs instrumentation costs relative to the packed
/// kernel: times a burst of off-level `span!` + `counter_add` calls
/// (each a relaxed atomic load and a branch) and scales by the number of
/// obs call sites one `gemm` call executes — the outer kernel span plus
/// one `pack_b` span per `(jc, pc)` cache block. CI gates this below 1%.
fn obs_off_overhead_pct(packed_secs: f64, s: &Shape) -> f64 {
    bitrobust_obs::init(&bitrobust_obs::ObsConfig::off());
    const OPS: usize = 1_000_000;
    let start = Instant::now();
    for _ in 0..OPS {
        let g = bitrobust_obs::span("bench.obs_off_probe");
        std::hint::black_box(&g);
        bitrobust_obs::counter_add("bench.obs_off_probe", std::hint::black_box(1));
    }
    let per_call_site = start.elapsed().as_secs_f64() / OPS as f64;
    let pack_spans =
        s.k.div_ceil(bitrobust_tensor::gemm::KC) * s.n.div_ceil(bitrobust_tensor::gemm::NC);
    per_call_site * (1 + pack_spans) as f64 / packed_secs * 100.0
}

fn emit_json_comparison() {
    let threads = bitrobust_tensor::pool_parallelism();
    let mut rows = Vec::new();
    let mut fc_speedup = f64::NAN;
    let mut fc_packed_secs = f64::NAN;
    let mut conv_min_speedup = f64::INFINITY;

    for s in SHAPES {
        let (a, b) = operands(s);

        // Correctness first: the packed path must agree with the naive
        // reference (approximately — the reduction shapes differ) and with
        // itself bit-for-bit across repeated calls.
        let packed = run_packed(s, &a, &b);
        let naive = run_naive(s, &a, &b);
        for (x, y) in packed.data().iter().zip(naive.data()) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "packed vs naive: {x} vs {y}");
        }
        assert_eq!(
            packed.data(),
            run_packed(s, &a, &b).data(),
            "packed kernel must be bit-stable across calls"
        );
        // And the explicit-transpose identity for the NT variant.
        if s.variant == Variant::Nt {
            let explicit = matmul(&a, &transpose(&b));
            for (x, y) in packed.data().iter().zip(explicit.data()) {
                assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "nt vs explicit: {x} vs {y}");
            }
        }

        let flops = 2.0 * s.m as f64 * s.k as f64 * s.n as f64;
        let iters = (2e7 / flops).clamp(1.0, 500.0) as usize;
        let naive_secs = best_of(|| drop(run_naive(s, &a, &b)), iters, 5);
        let packed_secs = best_of(|| drop(run_packed(s, &a, &b)), iters, 5);
        let (naive_gflops, packed_gflops) = (flops / naive_secs / 1e9, flops / packed_secs / 1e9);
        let speedup = naive_secs / packed_secs;
        if s.name == "fc_head" {
            fc_speedup = speedup;
            fc_packed_secs = packed_secs;
        } else {
            conv_min_speedup = conv_min_speedup.min(speedup);
        }
        println!(
            "{:>11} [{:>3}x{:>3}x{:>3}] naive {:6.2} GFLOP/s  packed {:6.2} GFLOP/s  ({:.2}x)",
            s.name, s.m, s.k, s.n, naive_gflops, packed_gflops, speedup
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"variant\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_secs\": {:.9}, \"packed_secs\": {:.9}, \"naive_gflops\": {:.3}, \
             \"packed_gflops\": {:.3}, \"speedup\": {:.3}}}",
            s.name,
            match s.variant {
                Variant::Nn => "nn",
                Variant::Nt => "nt",
            },
            s.m,
            s.k,
            s.n,
            naive_secs,
            packed_secs,
            naive_gflops,
            packed_gflops,
            speedup
        ));
    }

    // The integer kernel behind `QuantizedModel::infer`: same shapes, i8
    // operands, i32 accumulation. Integer adds are exact, so packed must
    // *equal* the naive triple loop — no tolerance.
    let mut i8_rows = Vec::new();
    let mut i8_min_speedup = f64::INFINITY;
    for s in SHAPES {
        let (a, b) = operands_i8(s);
        let mut packed = vec![0i32; s.m * s.n];
        let mut naive = vec![0i32; s.m * s.n];
        run_packed_i8(s, &a, &b, &mut packed);
        run_naive_i8(s, &a, &b, &mut naive);
        assert_eq!(packed, naive, "i8 packed vs naive must be exactly equal ({})", s.name);
        let mut again = vec![0i32; s.m * s.n];
        run_packed_i8(s, &a, &b, &mut again);
        assert_eq!(packed, again, "i8 kernel must be bit-stable across calls ({})", s.name);

        let ops = 2.0 * s.m as f64 * s.k as f64 * s.n as f64;
        let iters = (2e7 / ops).clamp(1.0, 500.0) as usize;
        let naive_secs = best_of(
            || {
                naive.fill(0);
                run_naive_i8(s, &a, &b, &mut naive);
            },
            iters,
            5,
        );
        let packed_secs = best_of(
            || {
                packed.fill(0);
                run_packed_i8(s, &a, &b, &mut packed);
            },
            iters,
            5,
        );
        let (naive_giops, packed_giops) = (ops / naive_secs / 1e9, ops / packed_secs / 1e9);
        let speedup = naive_secs / packed_secs;
        i8_min_speedup = i8_min_speedup.min(speedup);
        println!(
            "{:>14} [{:>3}x{:>3}x{:>3}] naive {:6.2} GIOP/s  packed {:6.2} GIOP/s  ({:.2}x)",
            format!("i8_{}", s.name),
            s.m,
            s.k,
            s.n,
            naive_giops,
            packed_giops,
            speedup
        );
        i8_rows.push(format!(
            "    {{\"name\": \"i8_{}\", \"variant\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_secs\": {:.9}, \"packed_secs\": {:.9}, \"naive_giops\": {:.3}, \
             \"packed_giops\": {:.3}, \"speedup\": {:.3}}}",
            s.name,
            match s.variant {
                Variant::Nn => "nn",
                Variant::Nt => "nt",
            },
            s.m,
            s.k,
            s.n,
            naive_secs,
            packed_secs,
            naive_giops,
            packed_giops,
            speedup
        ));
    }

    let fc_shape = SHAPES.iter().find(|s| s.name == "fc_head").expect("fc_head shape");
    let obs_overhead = obs_off_overhead_pct(fc_packed_secs, fc_shape);
    println!("obs-off overhead on fc_head packed kernel: {obs_overhead:.4}%");

    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"threads\": {},\n  \"tile\": {{\"mr\": {}, \"nr\": {}, \
         \"mc\": {}, \"kc\": {}, \"nc\": {}}},\n  \"shapes\": [\n{}\n  ],\n  \
         \"i8_shapes\": [\n{}\n  ],\n  \
         \"fc_speedup\": {:.3},\n  \"conv_min_speedup\": {:.3},\n  \
         \"i8_min_speedup\": {:.3},\n  \"obs_off_overhead_pct\": {:.4},\n  \
         \"packed_matches_reference\": true,\n  \"i8_matches_reference\": true\n}}\n",
        threads,
        bitrobust_tensor::gemm::MR,
        bitrobust_tensor::gemm::NR,
        bitrobust_tensor::gemm::MC,
        bitrobust_tensor::gemm::KC,
        bitrobust_tensor::gemm::NC,
        rows.join(",\n"),
        i8_rows.join(",\n"),
        fc_speedup,
        conv_min_speedup,
        i8_min_speedup,
        obs_overhead,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(path, &json).expect("write BENCH_gemm.json");
    println!("naive vs packed comparison written to {path}:\n{json}");
}

fn main() {
    benches();
    emit_json_comparison();
}
