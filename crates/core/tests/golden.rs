//! Golden pinning tests: committed bit-exact values for a short RandBET
//! training trajectory (loss + RErr per epoch) and one campaign grid cell.
//!
//! Purpose: parallelization refactors keep claiming "byte-identical
//! results" — these tests pin the actual bytes, so a refactor that
//! silently drifts numerics (different reduction order, a changed seed
//! path, a lost clip) fails here even if parallel and serial paths still
//! agree with *each other*.
//!
//! If a change intentionally alters numerics, regenerate the constants
//! with:
//!
//! ```text
//! cargo test -p bitrobust-core --test golden print_golden_values \
//!     -- --exact --ignored --nocapture
//! ```
//!
//! and update this file, explaining in the commit why the numbers moved.

use bitrobust_core::{
    build, run_grid, train, ArchKind, CampaignGrid, NormKind, RErrProbe, RandBetVariant,
    TrainConfig, TrainMethod, TrainReport, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Pinned values (f32 bit patterns; see the module docs to regenerate).
// ---------------------------------------------------------------------------

/// Per-epoch mean clean training loss of the pinned RandBET run.
const GOLDEN_EPOCH_LOSSES: [u32; 3] = [0x3fe6_6185, 0x3f4a_965e, 0x3f49_38fd];

/// Per-epoch probe `mean_error` of the pinned RandBET run.
const GOLDEN_EPOCH_RERR_MEANS: [u32; 3] = [0x3e08_8888, 0x3e03_69d0, 0x3e01_b4e8];

/// Per-chip probe errors of the final epoch.
const GOLDEN_FINAL_EPOCH_CHIP_ERRORS: [u32; 2] = [0x3dfc_9630, 0x3e05_1eb8];

/// Clean quantized test error after training.
const GOLDEN_CLEAN_ERROR: u32 = 0x3dd3_a06d;

/// Per-chip errors of the pinned campaign grid cell (rate 1%, 3 chips).
const GOLDEN_CELL_ERRORS: [u32; 3] = [0x3f55_c28f, 0x3f57_4bc7, 0x3f63_53f8];

/// Mean and sample-std of the pinned cell.
const GOLDEN_CELL_MEAN: u32 = 0x3f5a_cb6f;
const GOLDEN_CELL_STD: u32 = 0x3ced_c19e;

// ---------------------------------------------------------------------------

fn golden_training_report() -> TrainReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (train_src, test_src) = SynthDataset::Mnist.generate(1);
    let train_idx: Vec<usize> = (0..600).collect();
    let test_idx: Vec<usize> = (0..300).collect();
    let (xt, yt) = train_src.batch(&train_idx);
    let (xe, ye) = test_src.batch(&test_idx);
    let train_ds = Dataset::new("train", xt, yt, 10);
    let test_ds = Dataset::new("test", xe, ye, 10);

    let mut cfg = TrainConfig::new(
        Some(QuantScheme::rquant(8)),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 3;
    cfg.batch_size = 128;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 100.0;
    cfg.rerr_probe = Some(RErrProbe::new(0.01, 2));
    train(&mut model, &train_ds, &test_ds, &cfg)
}

fn golden_grid_cell() -> (Model, Vec<f32>, f32, f32) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let (_, test) = SynthDataset::Mnist.generate(0);
    let grid = CampaignGrid::uniform(QuantScheme::rquant(8), vec![0.01], 3, 1000);
    let cell = run_grid(&model, &grid, &test, EVAL_BATCH, Mode::Eval).remove(0).remove(0);
    (model, cell.errors.clone(), cell.mean_error, cell.std_error)
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn hex(values: &[u32]) -> String {
    let items: Vec<String> = values.iter().map(|b| format!("0x{b:08x}")).collect();
    format!("[{}]", items.join(", "))
}

#[test]
fn golden_randbet_trajectory_is_pinned() {
    let report = golden_training_report();
    assert_eq!(
        bits(&report.epoch_losses),
        GOLDEN_EPOCH_LOSSES,
        "epoch losses drifted; actual {} (see module docs to regenerate)",
        hex(&bits(&report.epoch_losses))
    );
    let rerr_means: Vec<f32> = report.epoch_rerr.iter().map(|r| r.mean_error).collect();
    assert_eq!(
        bits(&rerr_means),
        GOLDEN_EPOCH_RERR_MEANS,
        "per-epoch RErr drifted; actual {}",
        hex(&bits(&rerr_means))
    );
    let final_chips = &report.epoch_rerr.last().expect("probe ran").errors;
    assert_eq!(
        bits(final_chips),
        GOLDEN_FINAL_EPOCH_CHIP_ERRORS,
        "final-epoch per-chip RErr drifted; actual {}",
        hex(&bits(final_chips))
    );
    assert_eq!(
        report.clean_error.to_bits(),
        GOLDEN_CLEAN_ERROR,
        "clean error drifted; actual 0x{:08x}",
        report.clean_error.to_bits()
    );
}

#[test]
fn golden_campaign_cell_is_pinned() {
    let (_, errors, mean, std) = golden_grid_cell();
    assert_eq!(
        bits(&errors),
        GOLDEN_CELL_ERRORS,
        "per-chip cell errors drifted; actual {}",
        hex(&bits(&errors))
    );
    assert_eq!(
        mean.to_bits(),
        GOLDEN_CELL_MEAN,
        "cell mean drifted; actual 0x{:08x}",
        mean.to_bits()
    );
    assert_eq!(std.to_bits(), GOLDEN_CELL_STD, "cell std drifted; actual 0x{:08x}", std.to_bits());
}

/// Generator for the pinned constants above (see module docs).
#[test]
#[ignore = "generator: prints current golden values"]
fn print_golden_values() {
    let report = golden_training_report();
    println!("GOLDEN_EPOCH_LOSSES: {}", hex(&bits(&report.epoch_losses)));
    let rerr_means: Vec<f32> = report.epoch_rerr.iter().map(|r| r.mean_error).collect();
    println!("GOLDEN_EPOCH_RERR_MEANS: {}", hex(&bits(&rerr_means)));
    let final_chips = &report.epoch_rerr.last().expect("probe ran").errors;
    println!("GOLDEN_FINAL_EPOCH_CHIP_ERRORS: {}", hex(&bits(final_chips)));
    println!("GOLDEN_CLEAN_ERROR: 0x{:08x}", report.clean_error.to_bits());

    let (_, errors, mean, std) = golden_grid_cell();
    println!("GOLDEN_CELL_ERRORS: {}", hex(&bits(&errors)));
    println!("GOLDEN_CELL_MEAN: 0x{:08x}", mean.to_bits());
    println!("GOLDEN_CELL_STD: 0x{:08x}", std.to_bits());
}
