//! **Extension (design-choice ablations)** — Which parts of Alg. 1 matter?
//!
//! 1. *Clean + perturbed vs perturbed-only loss*: the paper keeps the clean
//!    term in Eq. (2) "to avoid an increase in (clean) test error and
//!    stabilize training". The `PerturbedOnly` ablation drops it.
//! 2. *Warm-up*: bit error injection normally starts once the clean loss
//!    falls below 1.75 ("introducing bit errors right from the start may
//!    prevent the DNN from converging"); the no-warm-up ablation injects
//!    from step one.

use bitrobust_core::{RandBetVariant, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, rerr_sweep, zoo_model, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [1e-3, 1e-2];
    let p_train = 0.01;

    let mut header = vec!["model".to_string(), "Err %".to_string(), "inject from".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let configs: Vec<(&str, RandBetVariant, bool)> = vec![
        ("RANDBET (Alg. 1)", RandBetVariant::Standard, false),
        ("perturbed-only loss", RandBetVariant::PerturbedOnly, false),
        ("no warm-up", RandBetVariant::Standard, true),
    ];

    for (name, variant, no_warmup) in configs {
        let mut spec = ZooSpec::new(
            DatasetKind::Cifar10,
            Some(scheme),
            TrainMethod::RandBet { wmax: Some(0.1), p: p_train, variant },
        );
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        // The zoo key does not encode the warm-up override, so bypass the
        // cache for the ablated run.
        let (model, report) = if no_warmup {
            let mut cfg = bitrobust_core::TrainConfig::new(spec.scheme, spec.method);
            cfg.epochs = spec.epochs;
            cfg.warmup_loss = f32::INFINITY;
            cfg.augment = spec.dataset.augment();
            cfg.seed = spec.seed;
            let mut rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(spec.seed ^ 0xA2C4);
            let built = bitrobust_core::build(
                spec.arch,
                spec.dataset.image_shape(),
                spec.dataset.n_classes(),
                spec.norm,
                &mut rng,
            );
            let mut model = built.model;
            let report = bitrobust_core::train(&mut model, &train_ds, &test_ds, &cfg);
            (model, report)
        } else {
            zoo_model(&spec, &train_ds, &test_ds, opts.no_cache)
        };
        let sweep = rerr_sweep(&model, scheme, &test_ds, &ps, opts.chips);
        let started =
            report.bit_errors_started_at.map_or("never".to_string(), |e| format!("epoch {e}"));
        let mut row = vec![name.to_string(), pct(report.clean_error as f64), started];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!(
        "RandBET design-choice ablations (CIFAR10 stand-in, wmax=0.1, p=1%):\n{}",
        table.render()
    );
    println!("Expected shape: dropping the clean loss term costs clean Err; skipping the");
    println!("warm-up slows or destabilizes convergence.");
}
