//! Integration tests of profiled-chip evaluation: structure, persistence,
//! and the full model → memory → errors → accuracy path.

use bitrobust_biterror::{ChipKind, ErrorInjector, ProfiledChip};
use bitrobust_core::{
    build, robust_eval, train, ArchKind, NormKind, TrainConfig, TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn trained_model() -> (Model, Dataset) {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(31);
    let subset: Vec<usize> = (0..800).collect();
    let (x, y) = train_ds.batch(&subset);
    let small = Dataset::new("train", x, y, 10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), TrainMethod::Normal);
    cfg.epochs = 6;
    cfg.augment = AugmentConfig::none();
    let report = train(&mut model, &small, &test_ds, &cfg);
    assert!(report.clean_error < 0.15);
    (model, test_ds)
}

#[test]
fn all_chip_kinds_hit_their_target_rates() {
    for kind in ChipKind::all() {
        let chip = ProfiledChip::synthesize(kind, 5);
        for target in [0.002, 0.01, 0.03] {
            let v = chip.voltage_for_rate(target);
            let measured = chip.bit_error_rate_at(v);
            assert!(
                (measured - target).abs() < target * 0.5 + 2e-4,
                "{}: {measured} vs {target}",
                kind.name()
            );
        }
    }
}

#[test]
fn chip2_is_column_biased_and_0to1_dominant() {
    let chip = ProfiledChip::synthesize(ChipKind::Chip2, 6);
    let v = chip.voltage_for_rate(0.03);
    let stats = chip.stats_at(v);
    assert!(stats.rate_0_to_1 > 1.5 * stats.rate_1_to_0, "0-to-1 flips must dominate on chip 2");
}

#[test]
fn profiled_rerr_is_worse_at_lower_voltage() {
    let (model, test_ds) = trained_model();
    let chip = ProfiledChip::synthesize(ChipKind::Chip1, 7);
    let scheme = QuantScheme::rquant(8);
    let v_hi = chip.voltage_for_rate(0.005);
    let v_lo = chip.voltage_for_rate(0.06);
    let at_hi = robust_eval(
        &model,
        scheme,
        &test_ds,
        &[chip.at_voltage(v_hi, 0, false)],
        EVAL_BATCH,
        Mode::Eval,
    );
    let at_lo = robust_eval(
        &model,
        scheme,
        &test_ds,
        &[chip.at_voltage(v_lo, 0, false)],
        EVAL_BATCH,
        Mode::Eval,
    );
    assert!(
        at_lo.mean_error >= at_hi.mean_error,
        "lower voltage (more errors) must not improve accuracy: {} vs {}",
        at_lo.mean_error,
        at_hi.mean_error
    );
}

#[test]
fn offsets_simulate_different_mappings() {
    let (model, test_ds) = trained_model();
    let chip = ProfiledChip::synthesize(ChipKind::Chip2, 8);
    let scheme = QuantScheme::rquant(8);
    let v = chip.voltage_for_rate(0.02);
    let injectors: Vec<_> = (0..4).map(|k| chip.at_voltage(v, k * 100_003, false)).collect();
    let r = robust_eval(&model, scheme, &test_ds, &injectors, EVAL_BATCH, Mode::Eval);
    assert_eq!(r.errors.len(), 4);
    let distinct: std::collections::HashSet<u32> = r.errors.iter().map(|e| e.to_bits()).collect();
    assert!(distinct.len() > 1, "different mappings must hit different weights");
}

#[test]
fn persistent_only_injection_is_weaker() {
    let chip = ProfiledChip::synthesize(ChipKind::Chip3, 9);
    let v = chip.voltage_for_rate(0.05);
    let mut all = vec![0u8; 30_000];
    let mut pers = vec![0u8; 30_000];
    chip.at_voltage(v, 0, false).inject(&mut all, 8, 0);
    chip.at_voltage(v, 0, true).inject(&mut pers, 8, 0);
    let flips_all: u32 = all.iter().map(|w| w.count_ones()).sum();
    let flips_pers: u32 = pers.iter().map(|w| w.count_ones()).sum();
    assert!(flips_pers > 0 && flips_pers < flips_all);
}

#[test]
fn stored_data_interacts_with_stuck_values() {
    // A profiled chip flips a bit only when the stored value differs from
    // the stuck value, so complementary data yields complementary flips.
    let chip = ProfiledChip::synthesize(ChipKind::Chip1, 10);
    let v = chip.voltage_for_rate(0.03);
    let zeros_in = vec![0x00u8; 10_000];
    let ones_in = vec![0xFFu8; 10_000];
    let mut zeros = zeros_in.clone();
    let mut ones = ones_in.clone();
    chip.at_voltage(v, 0, false).inject(&mut zeros, 8, 0);
    chip.at_voltage(v, 0, false).inject(&mut ones, 8, 0);
    for (i, (&z, &o)) in zeros.iter().zip(&ones).enumerate() {
        let flips_z = z; // 0 -> 1 flips
        let flips_o = !o; // 1 -> 0 flips
        assert_eq!(flips_z & flips_o, 0, "cell {i} cannot flip both directions at once");
    }
}
