//! The generalization guarantee of Prop. 1 (App. C.2).
//!
//! With `n` test examples and `l` sampled bit error patterns, the
//! empirically measured robust error deviates from the expected robust
//! error by at most `ε` except with probability
//! `(n+1)·exp(−n ε² l / (√l + √n)²)`; equivalently, with confidence
//! `1 − δ` the deviation is below
//! `sqrt(ln((n+1)/δ)/n) · (√l + √n)/√l`.

/// Probability that the empirical robust error deviates from its
/// expectation by at least `epsilon` (Prop. 1, first form).
///
/// # Panics
///
/// Panics if `n == 0`, `l == 0`, or `epsilon <= 0`.
pub fn deviation_probability(n: usize, l: usize, epsilon: f64) -> f64 {
    assert!(n > 0 && l > 0, "need positive sample counts");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let (n, l) = (n as f64, l as f64);
    let exponent = -n * epsilon * epsilon * l / (l.sqrt() + n.sqrt()).powi(2);
    ((n + 1.0) * exponent.exp()).min(1.0)
}

/// The deviation bound `ε` holding with confidence `1 − δ`
/// (Prop. 1, second form).
///
/// The paper's examples: `n = 10⁴`, `l = 10⁶`, 99% confidence gives
/// ≈ 4.1%; `n = 10⁵` gives ≈ 1.7%.
///
/// # Panics
///
/// Panics if `n == 0`, `l == 0`, or `delta` is not in `(0, 1)`.
pub fn deviation_bound(n: usize, l: usize, delta: f64) -> f64 {
    assert!(n > 0 && l > 0, "need positive sample counts");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let (nf, lf) = (n as f64, l as f64);
    (((nf + 1.0) / delta).ln() / nf).sqrt() * (lf.sqrt() + nf.sqrt()) / lf.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_examples() {
        // "With δ = 0.99" in the paper's notation means 99% confidence,
        // i.e. failure probability 0.01.
        let b1 = deviation_bound(10_000, 1_000_000, 0.01);
        assert!((b1 - 0.041).abs() < 0.002, "bound {b1}");
        let b2 = deviation_bound(100_000, 1_000_000, 0.01);
        assert!((b2 - 0.017).abs() < 0.002, "bound {b2}");
    }

    #[test]
    fn bound_shrinks_with_more_samples() {
        let base = deviation_bound(1000, 1000, 0.01);
        assert!(deviation_bound(10_000, 1000, 0.01) < base);
        assert!(deviation_bound(1000, 100_000, 0.01) < base);
    }

    #[test]
    fn forms_are_consistent() {
        // Plugging the ε from the second form into the first yields ≈ δ.
        let (n, l, delta) = (5_000usize, 20_000usize, 0.05);
        let eps = deviation_bound(n, l, delta);
        let p = deviation_probability(n, l, eps);
        assert!((p - delta).abs() < 1e-9, "{p} vs {delta}");
    }

    #[test]
    fn probability_decreases_in_epsilon() {
        // Use a regime where the bound is non-vacuous (it clamps to 1 for
        // small n or epsilon).
        let p1 = deviation_probability(10_000, 10_000, 0.07);
        let p2 = deviation_probability(10_000, 10_000, 0.10);
        assert!(p1 < 1.0, "bound must be informative here, got {p1}");
        assert!(p2 < p1);
    }

    #[test]
    fn empirical_deviation_respects_bound() {
        // Simulate Bernoulli "robust errors": expected error 0.1; check the
        // empirical mean over (n, l) grid deviates less than the bound at
        // 99% confidence (single draw, so this is a smoke test of scale).
        use bitrobust_biterror::hash_unit;
        let (n, l) = (2_000usize, 100usize);
        let true_err = 0.1;
        let mut total = 0usize;
        for j in 0..n {
            for i in 0..l {
                if hash_unit(99, j as u64, i as u64) < true_err {
                    total += 1;
                }
            }
        }
        let empirical = total as f64 / (n * l) as f64;
        let bound = deviation_bound(n, l, 0.01);
        assert!((empirical - true_err).abs() < bound, "{empirical} vs {true_err} ± {bound}");
    }
}
