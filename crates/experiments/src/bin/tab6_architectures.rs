//! **Tab. 6** — Architectures, weight counts, and expected bit errors.
//!
//! Prints the per-dataset model summaries (layers, parameter counts) and
//! the expected number of random bit errors `p·m·W` at the paper's rates.

use bitrobust_biterror::expected_bit_errors;
use bitrobust_core::{build, ArchKind, NormKind};
use bitrobust_experiments::{DatasetKind, ExpOptions, Table};
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::from_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);

    println!("Tab. 6 (left/middle): architectures\n");
    for kind in [DatasetKind::Mnist, DatasetKind::Cifar10, DatasetKind::Cifar100] {
        let built = build(
            kind.default_arch(),
            kind.image_shape(),
            kind.n_classes(),
            NormKind::Group,
            &mut rng,
        );
        println!("{}: {}", kind.name(), built.model.summary());
    }
    let resnet = build(ArchKind::ResNetMini, [3, 16, 16], 10, NormKind::Group, &mut rng);
    println!("resnet-mini: {}\n", resnet.model.summary());

    println!("Tab. 6 (right): expected number of bit errors p*m*W (m = 8 bits)\n");
    for (kind, rates) in [
        (DatasetKind::Mnist, vec![0.10, 0.05, 0.015, 0.01, 0.005]),
        (DatasetKind::Cifar10, vec![0.01, 0.005, 1e-4]),
    ] {
        let built = build(
            kind.default_arch(),
            kind.image_shape(),
            kind.n_classes(),
            NormKind::Group,
            &mut rng,
        );
        let w = built.model.num_params();
        let mut table = Table::new(&["p %", "expected bit errors"]);
        for p in rates {
            table.row_owned(vec![
                format!("{:.2}", 100.0 * p),
                format!("{:.0}", expected_bit_errors(p, w, 8)),
            ]);
        }
        println!("{} (W = {w}):\n{}", kind.name(), table.render());
    }
}
