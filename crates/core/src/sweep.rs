//! The durable sweep orchestrator: multi-model × multi-axis campaigns
//! with checkpointed, resumable on-disk results.
//!
//! The paper's headline experiments (Tab. 4/5, Fig. 7) are *sweeps*: many
//! trained models crossed with many injection axes — uniform bit error
//! rates **and** profiled-chip voltage/offset grids. The [`campaign`
//! engine](crate::campaign) already runs one model's axis as a single
//! parallel fan-out; this module is the layer above it, turning a whole
//! sweep into **one** fan-out and making it durable.
//!
//! # Plan → store → resume
//!
//! ```text
//!   SweepPlan                          run_sweep
//!   models: [SweepModel]  ─┐   ┌──────────────────────────────┐
//!     key  ("zoo key")     │   │ flatten: (model, axis, point) │
//!     scheme               ├──▶│ skip cells already in store   │──▶ SweepResults
//!     &Model               │   │ fan out the rest as ONE       │     per (model, axis):
//!   axes: [SweepAxis]      │   │ (model, pattern, batch)       │     RobustEval per rate
//!     name                 │   │ campaign over the pool        │
//!     ChipAxis            ─┘   └──────────┬───────────────────┘
//!                                         │ each completed cell
//!                                         ▼ (appended + flushed)
//!                              SweepStore (JSONL on disk)
//!                              key = content hash of
//!                              model key × scheme × axis × point
//!                              × dataset × batch size
//! ```
//!
//! Interrupt the process at any point — `SIGKILL` included — and rerun:
//! [`run_sweep`] reloads the store, replays the stored cells (exact `f32`
//! bits), evaluates only the missing ones, and the final results *and* the
//! final store fingerprint are **byte-identical** to an uninterrupted
//! single-shot run, at any thread count.
//!
//! # Determinism
//!
//! Every cell is an independent campaign unit: its replica, batch
//! partials, and serial reduction depend only on the cell's own identity,
//! never on which other cells share the fan-out (see
//! [`crate::Campaign::run_cells`]). That is the invariant that makes
//! skip-and-resume sound, and it is pinned by the determinism suite's
//! thread matrix and the kill-and-resume integration tests.
//!
//! # Examples
//!
//! ```no_run
//! use bitrobust_core::{
//!     build, run_sweep, ArchKind, ChipAxis, NormKind, SweepAxis, SweepModel, SweepOptions,
//! };
//! use bitrobust_data::SynthDataset;
//! use bitrobust_quant::QuantScheme;
//! use rand::SeedableRng;
//!
//! let (_, test_ds) = SynthDataset::Mnist.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let a = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
//! let b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
//!
//! let models = vec![
//!     SweepModel::new("mlp-a", QuantScheme::rquant(8), &a),
//!     SweepModel::new("mlp-b", QuantScheme::rquant(8), &b),
//! ];
//! let axes =
//!     vec![SweepAxis::new("uniform", ChipAxis::uniform(vec![1e-3, 1e-2], 50, 1000))];
//! let mut store = bitrobust_core::SweepStore::open("target/sweeps/demo.jsonl").unwrap();
//! let results = run_sweep(
//!     &models,
//!     &axes,
//!     &test_ds,
//!     &SweepOptions::default(),
//!     Some(&mut store),
//!     |_, _| {},
//! );
//! println!("model a, p=1%: RErr {:.2}%", 100.0 * results.robust(0, 0)[1].mean_error);
//! ```

use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;

use crate::campaign::{Campaign, ChipAxis};
use crate::eval::{EvalResult, RobustEval, EVAL_BATCH};
use crate::store::{fnv1a64, CellRecord, SweepStore};
use crate::QuantizedModel;

/// One model entering a sweep: a stable identity key (by convention a zoo
/// cache key — anything that uniquely names the trained weights), the
/// quantization scheme it is evaluated under, and the model itself.
#[derive(Debug, Clone)]
pub struct SweepModel<'a> {
    /// Identity of the trained weights (part of every cell's content
    /// hash, so two different models must never share a key).
    pub key: String,
    /// Evaluation quantization scheme.
    pub scheme: QuantScheme,
    /// The model (read-only; evaluation uses per-pattern replicas).
    pub model: &'a Model,
}

impl<'a> SweepModel<'a> {
    /// Convenience constructor.
    pub fn new(key: impl Into<String>, scheme: QuantScheme, model: &'a Model) -> Self {
        Self { key: key.into(), scheme, model }
    }
}

/// One injection axis of a sweep: a display name plus the [`ChipAxis`]
/// description. The *name* is presentation only; the axis [`ChipAxis::key`]
/// is what enters cell hashes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Human-readable label (table/progress output).
    pub name: String,
    /// The axis description.
    pub axis: ChipAxis,
}

impl SweepAxis {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, axis: ChipAxis) -> Self {
        Self { name: name.into(), axis }
    }
}

/// Evaluation-protocol knobs shared by every cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Test batch size (part of the cell identity: confidence partial sums
    /// regroup at batch boundaries).
    pub batch_size: usize,
    /// Inference mode ([`Mode::Train`] is rejected).
    pub mode: Mode,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self { batch_size: EVAL_BATCH, mode: Mode::Eval }
    }
}

/// Identifies one sweep cell as it completes (or is replayed from the
/// store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Model index into the sweep's model list.
    pub model: usize,
    /// Axis index into the sweep's axis list.
    pub axis: usize,
    /// Group (= rate) index within the axis.
    pub group: usize,
    /// Point index within the group (chip / mapping offset).
    pub point: usize,
    /// The cell's content-hash key (the sweep-store key).
    pub id: u64,
    /// Whether the result was replayed from the store instead of
    /// evaluated.
    pub resumed: bool,
}

/// The assembled results of a sweep, indexable by `(model, axis)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// `(n_groups, group_size)` per axis.
    axis_dims: Vec<(usize, usize)>,
    /// Start of each axis's block within one model's cell span.
    axis_offsets: Vec<usize>,
    /// Cells per model (= sum of axis spans).
    model_stride: usize,
    /// All cells, model-major, then axis, then point.
    cells: Vec<EvalResult>,
    /// Number of cells actually evaluated by this run.
    pub evaluated: usize,
    /// Number of cells replayed from the store.
    pub resumed: usize,
}

impl SweepResults {
    /// Number of models.
    pub fn n_models(&self) -> usize {
        self.cells.len().checked_div(self.model_stride).unwrap_or(0)
    }

    /// Number of axes.
    pub fn n_axes(&self) -> usize {
        self.axis_dims.len()
    }

    /// All cells, model-major, then axis, then group, then point.
    pub fn cells(&self) -> &[EvalResult] {
        &self.cells
    }

    /// One cell by `(model, axis, point-within-axis)` indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn cell(&self, model: usize, axis: usize, point: usize) -> EvalResult {
        let (groups, group_size) = self.axis_dims[axis];
        assert!(point < groups * group_size, "axis point {point} out of range");
        self.cells[model * self.model_stride + self.axis_offsets[axis] + point]
    }

    /// The `(model, axis)` block aggregated per group: one [`RobustEval`]
    /// per rate, exactly as [`crate::run_axis`] would return for that
    /// model and axis alone.
    ///
    /// # Panics
    ///
    /// Panics if `model` or `axis` is out of range.
    pub fn robust(&self, model: usize, axis: usize) -> Vec<RobustEval> {
        let (groups, group_size) = self.axis_dims[axis];
        let start = model * self.model_stride + self.axis_offsets[axis];
        let block = &self.cells[start..start + groups * group_size];
        block.chunks(group_size).map(RobustEval::from_results).collect()
    }
}

/// The evaluation dataset's identity string: name, size, and a content
/// fingerprint over every image byte and label. The fingerprint is what
/// keeps two *generations* of a same-named synthetic dataset (different
/// data seeds) from aliasing in the store — computed once per sweep, not
/// per cell.
fn dataset_identity(dataset: &Dataset) -> String {
    let mut bytes = Vec::with_capacity(dataset.images().data().len() * 4);
    for v in dataset.images().data() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &label in dataset.labels() {
        bytes.extend_from_slice(&(label as u64).to_le_bytes());
    }
    format!("{}:{}:{:016x}", dataset.name(), dataset.len(), fnv1a64(&bytes))
}

/// The content-hash key of one sweep cell: every input that shapes the
/// cell's bytes enters the hash — the model identity, evaluation scheme,
/// axis identity (which covers its seeds and exact rates), the point
/// index, and the evaluation dataset (content-fingerprinted) / batch
/// protocol. Cells from unrelated sweeps can therefore share one store
/// file without ever aliasing.
fn cell_id(
    model_key: &str,
    scheme_key: &str,
    axis_key: &str,
    point: usize,
    data_identity: &str,
    opts: &SweepOptions,
) -> u64 {
    let identity = format!(
        "model={model_key}|scheme={scheme_key}|axis={axis_key}|point={point}|data={data_identity}|batch={}|mode={:?}",
        opts.batch_size, opts.mode,
    );
    fnv1a64(identity.as_bytes())
}

/// Runs `models × axes` as **one** durable campaign.
///
/// The whole plan flattens into a single `(model, pattern, batch)` fan-out
/// over the thread pool — all models' missing cells keep every core busy
/// together, instead of one bursty campaign per model. Per-cell results
/// are byte-identical to running each model's axis alone (serial reference
/// included); see the [module docs](self) for the resume contract.
///
/// If `store` is given, every already-stored cell is *skipped* (its stored
/// bits are replayed into the results) and every newly evaluated cell is
/// appended and flushed as soon as its wave completes. `on_cell` fires for
/// every cell — replayed ones first, in canonical (model, axis, point)
/// order, then evaluated ones as they land.
///
/// # Panics
///
/// Panics if `models` or `axes` is empty, an axis is empty in any
/// dimension, two models share a key, or the store rejects an append
/// (collision or I/O error — a sweep must never silently lose cells); plus
/// the usual campaign conditions (empty dataset, zero batch size,
/// training mode).
pub fn run_sweep(
    models: &[SweepModel<'_>],
    axes: &[SweepAxis],
    dataset: &Dataset,
    opts: &SweepOptions,
    mut store: Option<&mut SweepStore>,
    mut on_cell: impl FnMut(&SweepCell, &EvalResult),
) -> SweepResults {
    bitrobust_obs::span!("sweep.run");
    assert!(!models.is_empty(), "sweep needs at least one model");
    assert!(!axes.is_empty(), "sweep needs at least one axis");
    for axis in axes {
        assert!(axis.axis.n_groups() > 0, "axis {:?} needs at least one rate", axis.name);
        assert!(axis.axis.group_size() > 0, "axis {:?} needs at least one point", axis.name);
    }
    for (i, a) in models.iter().enumerate() {
        for b in &models[i + 1..] {
            assert!(a.key != b.key, "sweep models must have distinct keys ({:?})", a.key);
        }
    }

    // Resolve the axes (profiled-chip synthesis, rate→voltage) and each
    // model's clean quantized image once; cells reuse both.
    let prepared: Vec<_> = axes.iter().map(|a| a.axis.prepare()).collect();
    let axis_keys: Vec<String> = axes.iter().map(|a| a.axis.key()).collect();
    let q0s: Vec<QuantizedModel> =
        models.iter().map(|m| QuantizedModel::quantize(m.model, m.scheme)).collect();
    let scheme_keys: Vec<String> = models.iter().map(|m| m.scheme.key()).collect();

    let axis_dims: Vec<(usize, usize)> =
        axes.iter().map(|a| (a.axis.n_groups(), a.axis.group_size())).collect();
    let mut axis_offsets = Vec::with_capacity(axes.len());
    let mut model_stride = 0usize;
    for &(groups, group_size) in &axis_dims {
        axis_offsets.push(model_stride);
        model_stride += groups * group_size;
    }

    // Canonical cell enumeration: model-major, then axis, then point.
    let data_identity = dataset_identity(dataset);
    struct Cell {
        model: usize,
        axis: usize,
        point: usize,
        id: u64,
    }
    let mut cells = Vec::with_capacity(models.len() * model_stride);
    for (mi, model) in models.iter().enumerate() {
        for (ai, axis) in axes.iter().enumerate() {
            for point in 0..axis.axis.n_points() {
                let id = cell_id(
                    &model.key,
                    &scheme_keys[mi],
                    &axis_keys[ai],
                    point,
                    &data_identity,
                    opts,
                );
                cells.push(Cell { model: mi, axis: ai, point, id });
            }
        }
    }

    let sweep_cell = |cell: &Cell, resumed: bool| {
        let (_, group_size) = axis_dims[cell.axis];
        SweepCell {
            model: cell.model,
            axis: cell.axis,
            group: cell.point / group_size,
            point: cell.point % group_size,
            id: cell.id,
            resumed,
        }
    };

    // Replay stored cells, then fan out only the missing ones.
    let mut results: Vec<Option<EvalResult>> = vec![None; cells.len()];
    let mut missing = Vec::new();
    for (index, cell) in cells.iter().enumerate() {
        match store.as_ref().and_then(|s| s.get(cell.id)) {
            Some(result) => {
                on_cell(&sweep_cell(cell, true), &result);
                results[index] = Some(result);
            }
            None => missing.push(index),
        }
    }
    let resumed = cells.len() - missing.len();

    // Resume accounting: planned == skipped + run reconciles in
    // OBS_report.json (write-only, never read back).
    bitrobust_obs::counter_add("sweep.cells_planned", cells.len() as u64);
    bitrobust_obs::counter_add("sweep.cells_skipped", resumed as u64);

    let templates: Vec<&Model> = models.iter().map(|m| m.model).collect();
    if !missing.is_empty() {
        // Split the captures: the cell builder borrows the plan immutably,
        // the completion callback owns the mutable store/results halves.
        let build = |k: usize| {
            bitrobust_obs::span!("sweep.build_image");
            let cell = &cells[missing[k]];
            (cell.model, prepared[cell.axis].make_image(&q0s[cell.model], cell.point))
        };
        Campaign::multi(&templates, dataset)
            .batch_size(opts.batch_size)
            .mode(opts.mode)
            .on_cell(|k, result| {
                bitrobust_obs::counter_add("sweep.cells_run", 1);
                let index = missing[k];
                let cell = &cells[index];
                if let Some(store) = store.as_deref_mut() {
                    store
                        .append(&CellRecord {
                            key: cell.id,
                            model: &models[cell.model].key,
                            scheme: &scheme_keys[cell.model],
                            axis: &axis_keys[cell.axis],
                            point: cell.point,
                            result: *result,
                        })
                        .expect("sweep store append failed");
                }
                results[index] = Some(*result);
                on_cell(&sweep_cell(cell, false), result);
            })
            .run_cells(missing.len(), build);
    }

    let cells: Vec<EvalResult> =
        results.into_iter().map(|r| r.expect("sweep cell left unevaluated")).collect();
    SweepResults { axis_dims, axis_offsets, model_stride, cells, evaluated: missing.len(), resumed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use crate::{run_axis, EVAL_BATCH};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn two_models() -> (Model, Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let (_, test) = SynthDataset::Mnist.generate(0);
        (a, b, test)
    }

    #[test]
    fn sweep_matches_per_model_axis_runs() {
        let (a, b, test) = two_models();
        let scheme = QuantScheme::rquant(8);
        let axis = SweepAxis::new("uniform", ChipAxis::uniform(vec![0.001, 0.01], 3, 1000));
        let models = vec![SweepModel::new("a", scheme, &a), SweepModel::new("b", scheme, &b)];
        let results = run_sweep(
            &models,
            std::slice::from_ref(&axis),
            &test,
            &SweepOptions::default(),
            None,
            |_, _| {},
        );
        assert_eq!(results.evaluated, 12);
        assert_eq!(results.resumed, 0);

        for (mi, model) in [&a, &b].into_iter().enumerate() {
            let alone =
                run_axis(model, &[scheme], &axis.axis, &test, EVAL_BATCH, Mode::Eval).remove(0);
            assert_eq!(results.robust(mi, 0), alone, "model {mi}");
        }
    }

    #[test]
    fn cell_callbacks_cover_every_cell_once() {
        let (a, _, test) = two_models();
        let models = vec![SweepModel::new("a", QuantScheme::rquant(8), &a)];
        let axes = vec![
            SweepAxis::new("u1", ChipAxis::uniform(vec![0.01], 2, 1000)),
            SweepAxis::new("u2", ChipAxis::uniform(vec![0.001, 0.01], 1, 2000)),
        ];
        let mut seen = Vec::new();
        let _ = run_sweep(&models, &axes, &test, &SweepOptions::default(), None, |cell, _| {
            seen.push((cell.axis, cell.group, cell.point, cell.resumed))
        });
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, 0, 0, false), (0, 0, 1, false), (1, 0, 0, false), (1, 1, 0, false),]
        );
    }

    #[test]
    fn cell_ids_separate_every_identity_component() {
        let (_, _, test) = two_models();
        let data = dataset_identity(&test);
        let opts = SweepOptions::default();
        let base = cell_id("m", "q8laun", "axis", 0, &data, &opts);
        assert_ne!(base, cell_id("m2", "q8laun", "axis", 0, &data, &opts));
        assert_ne!(base, cell_id("m", "q4laun", "axis", 0, &data, &opts));
        assert_ne!(base, cell_id("m", "q8laun", "axis2", 0, &data, &opts));
        assert_ne!(base, cell_id("m", "q8laun", "axis", 1, &data, &opts));
        let mut opts2 = opts;
        opts2.batch_size = 64;
        assert_ne!(base, cell_id("m", "q8laun", "axis", 0, &data, &opts2));
    }

    /// Two generations of a same-named dataset (different data seeds) have
    /// the same name and length but different content — they must never
    /// alias in the store, or a resumed sweep could replay stale cells.
    #[test]
    fn dataset_identity_fingerprints_content_not_just_shape() {
        let (_, seed0) = SynthDataset::Mnist.generate(0);
        let (_, seed1) = SynthDataset::Mnist.generate(1);
        assert_eq!(seed0.name(), seed1.name());
        assert_eq!(seed0.len(), seed1.len());
        assert_ne!(dataset_identity(&seed0), dataset_identity(&seed1));
        assert_eq!(dataset_identity(&seed0), dataset_identity(&seed0));
    }

    #[test]
    #[should_panic(expected = "distinct keys")]
    fn rejects_duplicate_model_keys() {
        let (a, b, test) = two_models();
        let scheme = QuantScheme::rquant(8);
        let models = vec![SweepModel::new("same", scheme, &a), SweepModel::new("same", scheme, &b)];
        let axes = vec![SweepAxis::new("u", ChipAxis::uniform(vec![0.01], 1, 1000))];
        let _ = run_sweep(&models, &axes, &test, &SweepOptions::default(), None, |_, _| {});
    }
}
