//! The micro-batcher: a pure, order-preserving coalescing pass.
//!
//! A drained wave of single-image requests is grouped into micro-batches
//! of compatible requests — same model, same image shape — each capped at
//! the engine's batch size. Grouping is FIFO: batches appear in the order
//! their first request arrived, and requests keep their arrival order
//! within a batch. Because inference is row-independent, the grouping is
//! purely a throughput decision; it never changes a single response byte.

use std::collections::HashMap;
use std::hash::Hash;

/// Coalesces `n` wave items into micro-batches of at most `max_batch`
/// compatible items. `key_of(i)` is item `i`'s compatibility key (for
/// serving: model key, model version, image shape); items with equal keys
/// share batches. Returns the batches as index lists into the wave, in
/// FIFO order (see the [module docs](self)).
///
/// # Panics
///
/// Panics if `max_batch` is 0.
pub fn coalesce<K: Eq + Hash>(
    n: usize,
    key_of: impl Fn(usize) -> K,
    max_batch: usize,
) -> Vec<Vec<usize>> {
    assert!(max_batch > 0, "micro-batch size must be positive");
    let mut batches: Vec<Vec<usize>> = Vec::new();
    // The currently fillable batch per key; a full batch is sealed by
    // replacing its entry, so a key's items stay FIFO across its batches.
    let mut open: HashMap<K, usize> = HashMap::new();
    for i in 0..n {
        let key = key_of(i);
        match open.get(&key) {
            Some(&b) if batches[b].len() < max_batch => batches[b].push(i),
            _ => {
                open.insert(key, batches.len());
                batches.push(vec![i]);
            }
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_key_in_fifo_order() {
        // Keys per wave slot: a a b a b b
        let keys = ['a', 'a', 'b', 'a', 'b', 'b'];
        let batches = coalesce(keys.len(), |i| keys[i], 8);
        assert_eq!(batches, vec![vec![0, 1, 3], vec![2, 4, 5]]);
    }

    #[test]
    fn caps_batches_and_keeps_overflow_fifo() {
        let batches = coalesce(5, |_| 0u8, 2);
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn empty_wave_yields_no_batches() {
        assert!(coalesce(0, |_| 0u8, 4).is_empty());
    }

    #[test]
    fn every_item_lands_exactly_once() {
        let keys = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let batches = coalesce(keys.len(), |i| keys[i], 2);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
        for batch in &batches {
            assert!(batch.len() <= 2);
            assert!(batch.windows(2).all(|w| w[0] < w[1]), "FIFO within a batch");
            assert!(batch.iter().all(|&i| keys[i] == keys[batch[0]]), "one key per batch");
        }
    }
}
