//! Weight initialization (He et al., 2015), as used by the paper's setup.

use bitrobust_tensor::Tensor;
use rand::Rng;

/// He-normal initialization for a convolution weight `[oc, ic, kh, kw]`.
///
/// Standard deviation is `sqrt(2 / fan_in)` with `fan_in = ic * kh * kw`.
pub fn he_conv(oc: usize, ic: usize, kh: usize, kw: usize, rng: &mut impl Rng) -> Tensor {
    let fan_in = (ic * kh * kw) as f32;
    Tensor::randn(&[oc, ic, kh, kw], (2.0 / fan_in).sqrt(), rng)
}

/// He-normal initialization for a linear weight `[out, in]`.
pub fn he_linear(out: usize, inp: usize, rng: &mut impl Rng) -> Tensor {
    Tensor::randn(&[out, inp], (2.0 / inp as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_conv_std_scales_with_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let w = he_conv(64, 32, 3, 3, &mut rng);
        let std = (w.data().iter().map(|v| v * v).sum::<f32>() / w.numel() as f32).sqrt();
        let expected = (2.0f32 / (32.0 * 9.0)).sqrt();
        assert!((std - expected).abs() / expected < 0.1, "std {std} vs {expected}");
    }

    #[test]
    fn he_linear_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(he_linear(10, 64, &mut rng).shape(), &[10, 64]);
    }
}
