//! Redundancy metrics (Fig. 6 / Fig. 10): why weight clipping helps.
//!
//! The paper argues clipping forces the network to spread information over
//! more weights: the cross-entropy loss demands large logits, clipping caps
//! individual weights, so *many* weights must contribute — redundancy that
//! absorbs individual bit errors. These metrics quantify that claim.

use bitrobust_biterror::UniformChip;
use bitrobust_nn::Model;
use bitrobust_quant::QuantScheme;

use crate::QuantizedModel;

/// Weight-distribution redundancy metrics for a trained model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundancyMetrics {
    /// Mean absolute bit-error-induced weight perturbation relative to the
    /// maximum absolute weight ("relative absolute error" in Fig. 10,
    /// computed at the given bit error rate).
    pub relative_abs_error: f64,
    /// `Σ|w| / (max|w| · W)`: how many weights are *relevant* relative to
    /// the largest ("weight relevance" in Fig. 10, normalized to `[0, 1]`).
    pub weight_relevance: f64,
    /// Fraction of exactly-zero quantized weights (log-scale spike of
    /// Fig. 6 right).
    pub fraction_zero: f64,
    /// Fraction of weights with `|w| > 0.5 · max|w|` (large-tail mass).
    pub fraction_large: f64,
}

/// Computes redundancy metrics for `model` under `scheme`, measuring the
/// bit-error perturbation at rate `p` averaged over `n_chips` chips.
pub fn redundancy_metrics(
    model: &Model,
    scheme: QuantScheme,
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
) -> RedundancyMetrics {
    let q0 = QuantizedModel::quantize(model, scheme);
    let clean: Vec<Vec<f32>> = q0.tensors().iter().map(|t| t.dequantize()).collect();

    // Weight-distribution statistics on the clean quantized weights.
    let mut sum_abs = 0f64;
    let mut max_abs = 0f64;
    let mut zeros = 0usize;
    let mut count = 0usize;
    for t in &clean {
        for &w in t {
            sum_abs += w.abs() as f64;
            max_abs = max_abs.max(w.abs() as f64);
            if w == 0.0 {
                zeros += 1;
            }
            count += 1;
        }
    }
    let mut large = 0usize;
    if max_abs > 0.0 {
        for t in &clean {
            for &w in t {
                if (w.abs() as f64) > 0.5 * max_abs {
                    large += 1;
                }
            }
        }
    }

    // Bit-error perturbation magnitude.
    let mut err_sum = 0f64;
    let mut err_count = 0usize;
    for c in 0..n_chips {
        let mut q = q0.clone();
        q.inject(&UniformChip::new(chip_seed_base + c as u64).at_rate(p));
        for (qt, ct) in q.tensors().iter().zip(&clean) {
            for (d, &cw) in qt.dequantize().iter().zip(ct) {
                err_sum += (d - cw).abs() as f64;
                err_count += 1;
            }
        }
    }

    RedundancyMetrics {
        relative_abs_error: if max_abs > 0.0 {
            err_sum / err_count.max(1) as f64 / max_abs
        } else {
            0.0
        },
        weight_relevance: if max_abs > 0.0 { sum_abs / (max_abs * count as f64) } else { 0.0 },
        fraction_zero: zeros as f64 / count.max(1) as f64,
        fraction_large: large as f64 / count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_nn::{Linear, Sequential};
    use rand::SeedableRng;

    fn model_with_weights(f: impl Fn(usize) -> f32) -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Linear::new(32, 32, &mut rng));
        let mut model = Model::new("m", net);
        let mut k = 0;
        model.visit_params(&mut |p| {
            p.value_mut().map_inplace(|_| {
                k += 1;
                f(k)
            });
        });
        model
    }

    #[test]
    fn uniform_weights_have_high_relevance() {
        // All weights equal -> relevance 1.
        let m = model_with_weights(|_| 0.05);
        let r = redundancy_metrics(&m, QuantScheme::rquant(8), 0.01, 2, 0);
        assert!(r.weight_relevance > 0.95, "relevance {}", r.weight_relevance);
    }

    #[test]
    fn spiky_weights_have_low_relevance() {
        // One dominant weight -> relevance near 0.
        let m = model_with_weights(|k| if k == 1 { 1.0 } else { 0.001 });
        let r = redundancy_metrics(&m, QuantScheme::rquant(8), 0.01, 2, 0);
        assert!(r.weight_relevance < 0.1, "relevance {}", r.weight_relevance);
    }

    #[test]
    fn higher_rate_increases_relative_error() {
        let m = model_with_weights(|k| ((k % 13) as f32 - 6.0) * 0.01);
        let lo = redundancy_metrics(&m, QuantScheme::rquant(8), 0.001, 3, 7);
        let hi = redundancy_metrics(&m, QuantScheme::rquant(8), 0.05, 3, 7);
        assert!(hi.relative_abs_error > lo.relative_abs_error);
    }

    #[test]
    fn fractions_are_probabilities() {
        let m = model_with_weights(|k| (k % 5) as f32 * 0.01);
        let r = redundancy_metrics(&m, QuantScheme::rquant(8), 0.01, 1, 0);
        assert!((0.0..=1.0).contains(&r.fraction_zero));
        assert!((0.0..=1.0).contains(&r.fraction_large));
    }
}
