//! Integration tests for the obs runtime: cross-thread merge
//! determinism, span-stack nesting and unwind safety, and end-to-end
//! report/trace export.
//!
//! Every test in this binary that needs recording enabled installs the
//! same `Trace`-level config (idempotent under the parallel test
//! harness) and uses test-unique metric names so concurrent tests never
//! observe each other's data.

use std::path::PathBuf;

use bitrobust_obs::{
    counter_add, gauge_set, init, snapshot, span, span_depth, Gauge, Hist, ObsConfig, ObsLevel,
    Snapshot,
};
use proptest::prelude::*;

fn enable_trace() {
    init(&ObsConfig { level: ObsLevel::Trace, trace_path: None, report_path: None });
}

#[test]
fn counters_sum_across_threads() {
    enable_trace();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..100 {
                    counter_add("test.obs.cross_thread", 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(snapshot().counter("test.obs.cross_thread"), 400);
}

#[test]
fn snapshot_is_cumulative_across_calls() {
    enable_trace();
    counter_add("test.obs.cumulative", 2);
    let first = snapshot().counter("test.obs.cumulative");
    assert!(first >= 2);
    counter_add("test.obs.cumulative", 3);
    assert_eq!(snapshot().counter("test.obs.cumulative"), first + 3);
}

#[test]
fn spans_nest_and_unwind_balanced() {
    enable_trace();
    let base = span_depth();
    {
        let _outer = span("test.obs.outer");
        assert_eq!(span_depth(), base + 1);
        {
            let _inner = span("test.obs.inner");
            assert_eq!(span_depth(), base + 2);
        }
        assert_eq!(span_depth(), base + 1);
    }
    assert_eq!(span_depth(), base);

    // A panic crossing open spans must still pop them (guards drop in
    // LIFO order during unwinding) and still record their durations.
    let result = std::panic::catch_unwind(|| {
        let _a = span("test.obs.unwind_a");
        let _b = span("test.obs.unwind_b");
        panic!("boom");
    });
    assert!(result.is_err());
    assert_eq!(span_depth(), base, "unwinding must rebalance the span stack");
    let snap = snapshot();
    assert!(snap.hist("test.obs.unwind_a").is_some_and(|h| h.count >= 1));
    assert!(snap.hist("test.obs.unwind_b").is_some_and(|h| h.count >= 1));
}

#[test]
fn span_durations_feed_histograms_and_trace() {
    enable_trace();
    {
        let _g = span("test.obs.timed");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let snap = snapshot();
    let h = snap.hist("test.obs.timed").expect("span recorded a histogram");
    assert!(h.count >= 1);
    assert!(h.min >= 2_000_000, "a 2ms span must record >= 2ms in ns, got {}", h.min);
}

#[test]
fn gauge_last_write_wins() {
    enable_trace();
    gauge_set("test.obs.gauge", 10);
    gauge_set("test.obs.gauge", 3);
    assert_eq!(snapshot().gauge("test.obs.gauge"), Some(3));
}

#[test]
fn report_file_round_trips() {
    enable_trace();
    counter_add("test.obs.report", 1);
    let path = PathBuf::from(concat!(env!("CARGO_TARGET_TMPDIR"), "/obs_report_test.json"));
    snapshot().write_report(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("{\n"), "{text}");
    assert!(text.contains("\"test.obs.report\""), "{text}");
    assert!(text.trim_end().ends_with('}'), "{text}");
}

/// Rebuild the per-thread states a run would produce and check that
/// *every* merge order yields the same snapshot — the property that
/// makes `OBS_report.json` independent of thread scheduling.
fn snapshot_from_ops(ops: &[(u8, u64)], base_seq: u64) -> Snapshot {
    const NAMES: [&str; 3] = ["m.alpha", "m.beta", "m.gamma"];
    let mut s = Snapshot::default();
    for (i, &(which, value)) in ops.iter().enumerate() {
        let name = NAMES[(which % 3) as usize];
        match which % 3 {
            0 => *s.counters.entry(name).or_insert(0) += value,
            1 => {
                s.gauges.insert(name, Gauge { seq: base_seq + i as u64, value });
            }
            _ => s.hists.entry(name).or_insert_with(Hist::default).record(value),
        }
    }
    s
}

proptest! {
    /// Merging per-thread snapshots in any order produces identical
    /// aggregates and byte-identical JSON.
    #[test]
    fn merge_order_never_changes_the_snapshot(
        a in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..16),
        b in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..16),
        c in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..16),
    ) {
        // Disjoint seq ranges emulate the global gauge sequence counter.
        let parts =
            [snapshot_from_ops(&a, 0), snapshot_from_ops(&b, 100), snapshot_from_ops(&c, 200)];
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut reference: Option<Snapshot> = None;
        for order in orders {
            let mut merged = Snapshot::default();
            for i in order {
                merged.merge(&parts[i]);
            }
            match &reference {
                None => reference = Some(merged),
                Some(r) => {
                    prop_assert_eq!(r, &merged);
                    prop_assert_eq!(r.render_json(), merged.render_json());
                }
            }
        }
    }
}
