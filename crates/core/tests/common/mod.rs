//! Helpers shared between the core integration-test suites.

use bitrobust_biterror::{ChipKind, ProfiledAxis};
use bitrobust_core::{
    build, run_sweep, ArchKind, ChipAxis, NormKind, SweepAxis, SweepModel, SweepOptions,
    SweepResults, SweepStore,
};
use bitrobust_data::{Dataset, SynthDataset};
use bitrobust_nn::Model;
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

/// FNV-1a over all parameter bits: a byte-exact weights fingerprint.
///
/// Used by both the determinism thread matrix and the golden pinning
/// tests — the committed `GOLDEN_DP_WEIGHTS_HASH` is a value of this
/// function, so any change here invalidates that constant.
#[allow(dead_code)] // not every test binary including `common` fingerprints weights
pub fn weights_fingerprint(model: &Model) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for t in model.param_tensors() {
        for v in t.data() {
            for byte in v.to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    hash
}

// The canonical sweep fixture — ONE plan shared by the determinism thread
// matrix and the kill-and-resume suite, so a protocol tweak can never
// desynchronize the two. Two seed-0 MLPs × (Chip1 profiled axis + uniform
// axis) = 16 cells. `#[allow(dead_code)]`: `common` is compiled into every
// test binary that declares it, and not all of them use these fixtures.

/// The fixture's models and evaluation dataset.
#[allow(dead_code)]
pub fn sweep_fixture_models() -> (Model, Model, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let a = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let (_, test) = SynthDataset::Mnist.generate(0);
    (a, b, test)
}

/// The fixture's axes: a profiled voltage/offset axis plus a uniform axis.
#[allow(dead_code)]
pub fn sweep_fixture_axes() -> Vec<SweepAxis> {
    vec![
        SweepAxis::new(
            "profiled",
            ChipAxis::Profiled(ProfiledAxis::tab5(ChipKind::Chip1, 0, vec![0.01, 0.02], 2)),
        ),
        SweepAxis::new("uniform", ChipAxis::uniform(vec![0.001, 0.01], 2, 1000)),
    ]
}

/// Total cells of the fixture plan.
#[allow(dead_code)]
pub const SWEEP_FIXTURE_CELLS: usize = 16;

/// Runs the fixture plan. `on_evaluated(n)` fires after the `n`-th freshly
/// evaluated (non-resumed) cell — the kill worker uses it to die mid-run.
#[allow(dead_code)]
pub fn run_sweep_fixture(
    models: (&Model, &Model),
    test: &Dataset,
    store: Option<&mut SweepStore>,
    mut on_evaluated: impl FnMut(usize),
) -> SweepResults {
    let scheme = QuantScheme::rquant(8);
    let entries = vec![
        SweepModel::new("mlp-a", scheme, models.0),
        SweepModel::new("mlp-b", scheme, models.1),
    ];
    let mut evaluated = 0usize;
    run_sweep(&entries, &sweep_fixture_axes(), test, &SweepOptions::default(), store, |cell, _| {
        if !cell.resumed {
            evaluated += 1;
            on_evaluated(evaluated);
        }
    })
}
