//! **Tab. 11** — Down-scaling weights is *not* what makes clipping robust.
//!
//! Takes the `RQUANT` model, rescales its convolution/linear weights and
//! biases so the maximum absolute weight matches the `CLIPPING 0.25`
//! model's range, and shows that robustness does **not** improve: the
//! benefit of clipping comes from training-time redundancy, not from the
//! reduced quantization range.
//!
//! Because every convolution is followed by a normalization layer, scaling
//! conv weights+biases leaves post-norm activations unchanged; scaling the
//! classifier scales the logits without changing predictions. Clean Err is
//! therefore preserved, exactly as in the paper's fixed-scale GroupNorm
//! setup.

use bitrobust_core::{robust_eval_uniform, TrainMethod, EVAL_BATCH};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::{Mode, ParamKind};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [1e-3, 1e-2];

    let mut rq_spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), TrainMethod::Normal);
    rq_spec.epochs = opts.epochs(rq_spec.epochs);
    rq_spec.seed = opts.seed;
    let (mut rquant, rq_report) = zoo_model(&rq_spec, &train_ds, &test_ds, opts.no_cache);

    let mut clip_spec =
        ZooSpec::new(DatasetKind::Cifar10, Some(scheme), TrainMethod::Clipping { wmax: 0.25 });
    clip_spec.epochs = opts.epochs(clip_spec.epochs);
    clip_spec.seed = opts.seed;
    let (mut clipped, clip_report) = zoo_model(&clip_spec, &train_ds, &test_ds, opts.no_cache);

    // Scale factor: bring RQuant's largest conv/linear weight down to the
    // clipped model's largest.
    let max_weight = |model: &mut bitrobust_nn::Model| {
        let mut m = 0f32;
        model.visit_params(&mut |p| {
            if matches!(p.kind(), ParamKind::Weight | ParamKind::Bias) {
                m = m.max(p.value().abs_max());
            }
        });
        m
    };
    let factor = max_weight(&mut clipped) / max_weight(&mut rquant);
    let mut scaled = {
        // Rebuild the RQuant model and scale its conv/linear params.
        let (mut model, _) = zoo_model(&rq_spec, &train_ds, &test_ds, false);
        model.visit_params(&mut |p| {
            if matches!(p.kind(), ParamKind::Weight | ParamKind::Bias) {
                p.value_mut().scale(factor);
            }
        });
        model
    };

    let mut table = Table::new(&["model", "Err %", "RErr p=0.1%", "RErr p=1%"]);
    for (name, model, clean) in [
        ("RQUANT", &mut rquant, rq_report.clean_error as f64),
        ("CLIPPING 0.25", &mut clipped, clip_report.clean_error as f64),
        ("RQUANT -> scaled to 0.25 range", &mut scaled, -1.0),
    ] {
        let clean = if clean >= 0.0 {
            clean
        } else {
            bitrobust_core::quantized_error(model, scheme, &test_ds, EVAL_BATCH, Mode::Eval).error
                as f64
        };
        let r: Vec<_> = ps
            .iter()
            .map(|&p| {
                robust_eval_uniform(
                    model,
                    scheme,
                    &test_ds,
                    p,
                    opts.chips,
                    CHIP_SEED,
                    EVAL_BATCH,
                    Mode::Eval,
                )
            })
            .collect();
        table.row_owned(vec![
            name.into(),
            pct(clean),
            pct_pm(r[0].mean_error as f64, r[0].std_error as f64),
            pct_pm(r[1].mean_error as f64, r[1].std_error as f64),
        ]);
    }
    println!("Tab. 11 (scale factor {factor:.3}):\n{}", table.render());
    println!("Expected shape (paper): the scaled model keeps clean Err but gains no robustness —");
    println!("clipping's benefit is redundancy from training, not a smaller quantization range.");
}
