// Fixture: deliberately violates the cast-boundary rule. Never compiled —
// only lexed by the integration test (scanned as `crates/quant/src/fixture.rs`).

pub fn leaky_requantize(v: f32, q: i8, acc: i32) -> (i8, f32) {
    let requantized = (v * 12.7) as i8;
    let decoded = q as f32 + acc as f32;
    // Index arithmetic stays exempt even here:
    let idx = v as usize;
    (requantized, decoded + idx as f32)
}
