//! Forward and forward+backward throughput of the SimpleNet substrate.

use bitrobust_core::{build, ArchKind, NormKind};
use bitrobust_nn::{CrossEntropyLoss, Mode};
use bitrobust_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;

fn bench_forward(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let x = Tensor::randn(&[32, 3, 16, 16], 1.0, &mut rng);

    let mut group = c.benchmark_group("simplenet_batch32");
    group.throughput(Throughput::Elements(32));
    group.sample_size(20);
    group.bench_function("forward_eval", |b| {
        b.iter(|| model.forward(std::hint::black_box(&x), Mode::Eval))
    });
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let loss = CrossEntropyLoss::new();
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            model.zero_grads();
            let logits = model.forward(std::hint::black_box(&x), Mode::Train);
            let out = loss.compute(&logits, &labels);
            model.backward(&out.grad)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
