//! Parallel fault-injection campaign engine.
//!
//! The paper's evaluation protocol measures `RErr` on ~50 simulated chips
//! per bit error rate, and the follow-up work multiplies that by rate
//! grids, voltages, and quantization schemes — so *robust evaluation*, not
//! training, dominates experiment wall-clock. This module turns those
//! nested serial loops into one data-parallel campaign.
//!
//! # Work-item granularity
//!
//! A campaign is a set of **quantized images** (one [`QuantizedModel`] per
//! error pattern — i.e. per grid cell) evaluated over a dataset. The unit
//! of parallel work is a `(pattern, batch)` pair: every test batch of
//! every pattern is an independent item, fanned out over the
//! `bitrobust-tensor` thread pool. Fine granularity keeps all cores busy
//! even when the pattern count is small (e.g. 3 profiled-chip offsets) or
//! the dataset is large, and the pool's self-scheduling balances uneven
//! batch costs. The layers' own `parallel_for` calls nest harmlessly: the
//! pool runs nested submissions inline on the claiming worker.
//!
//! When the item count far exceeds the pool parallelism (50 chips × 8
//! rates × many batches), per-batch items only add scheduling overhead;
//! [`ItemSizing::Adaptive`] (the default) merges runs of contiguous
//! batches of one pattern into larger items. Sizing never changes
//! results: items only decide *which worker computes which per-batch
//! partials* — the partials themselves and their reduction order are
//! fixed.
//!
//! The same engine also serves **clean evaluation**: a single-pattern
//! campaign whose one "replica" is the caller's model itself
//! (`N patterns = 1`, batches fan out), which is what
//! [`crate::evaluate`] runs on. And for long sweeps,
//! [`eval_images_streaming`] / [`run_grid_streaming`] process patterns in
//! small waves and hand each cell's result to a callback, in cell order,
//! as soon as its wave completes — progress reporting without giving up
//! byte-identical results.
//!
//! # Replica strategy
//!
//! Each pattern gets one model **replica**: a [`Model::clone`] of the
//! caller's template whose parameters are overwritten with the pattern's
//! dequantized (bit-error-perturbed) weights. Replicas are immutable once
//! built — workers evaluate batches through [`Model::infer`], which takes
//! `&self` and touches no activation caches — so any number of workers can
//! share one replica concurrently. At most [`MAX_REPLICAS`] replicas are
//! alive at a time; larger campaigns run in chunks, and the lazy entry
//! points ([`eval_images_with`], [`run_grid`], `robust_eval`) also build
//! the perturbed *quantized images* one chunk at a time, so peak memory
//! stays at one chunk of images + replicas for model-zoo-sized grids.
//!
//! # Determinism guarantee
//!
//! Campaign results are **bit-identical to the serial reference path**
//! ([`eval_images_serial`]) regardless of thread count or scheduling, and
//! the per-pattern `error` values are additionally bit-identical to the
//! historical quantize → inject → `write_to` → `forward` loop (they come
//! from integer miss counts; mean *confidence* may differ from the legacy
//! loop in the last ULP because f64 partial sums regroup at batch
//! boundaries). This holds because:
//!
//! * `infer` produces bit-identical outputs to an eval-mode `forward`;
//! * every batch's partial statistics are computed independently and
//!   written to that item's dedicated slot (no shared accumulators);
//! * partials are reduced serially in `(pattern, batch)` order.
//!
//! Same seeds ⇒ identical per-chip `errors`, so results stay comparable
//! across machines, thread counts, and the serial/parallel boundary.
//!
//! # Examples
//!
//! ```no_run
//! use bitrobust_core::{build, run_grid, ArchKind, CampaignGrid, NormKind, EVAL_BATCH};
//! use bitrobust_data::SynthDataset;
//! use bitrobust_nn::Mode;
//! use bitrobust_quant::QuantScheme;
//! use rand::SeedableRng;
//!
//! let (_, test_ds) = SynthDataset::Cifar10.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng).model;
//!
//! // One campaign: 2 rates x 50 chips = 100 grid cells, all parallel.
//! // Evaluation is read-only: a shared `&Model` is all the engine needs.
//! let grid = CampaignGrid::uniform(QuantScheme::rquant(8), vec![1e-3, 1e-2], 50, 1000);
//! let sweep = run_grid(&model, &grid, &test_ds, EVAL_BATCH, Mode::Eval).remove(0);
//! println!("RErr at p=1%: {:.2}%", 100.0 * sweep[1].mean_error);
//! ```

use std::sync::OnceLock;

use bitrobust_biterror::{ProfiledAxis, ProfiledChip, UniformChip};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::{parallel_for, pool_parallelism, softmax_rows};

use crate::eval::{EvalResult, RobustEval};
use crate::QuantizedModel;

/// Upper bound on dequantized model replicas alive at once. Campaigns with
/// more patterns run in chunks of this size, so peak memory is
/// `MAX_REPLICAS x model size` regardless of grid size.
pub const MAX_REPLICAS: usize = 64;

/// Work-item granularity of the campaign fan-out.
///
/// Both sizings produce **byte-identical results**: sizing only decides
/// which worker computes which per-`(pattern, batch)` partials; the
/// partials themselves and the serial reduction over them are identical
/// regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemSizing {
    /// One `(pattern, batch)` pair per work item — maximum load balance,
    /// and the historical granularity the engine shipped with.
    PerBatch,
    /// Merge runs of contiguous batches of one pattern into a single work
    /// item when the per-batch item count far exceeds the pool parallelism
    /// ([`bitrobust_tensor::pool_parallelism`]), trading a little balance
    /// for much less scheduling overhead on pattern-heavy campaigns
    /// (e.g. 50 chips × 8 rates). Falls back to per-batch items when work
    /// is scarce.
    Adaptive,
}

/// Adaptive sizing aims for this many work items per hardware thread, so
/// the pool's self-scheduling can still balance uneven batch costs.
const ADAPTIVE_OVERSUBSCRIPTION: usize = 4;

/// Number of consecutive batches each work item evaluates.
fn batches_per_item(sizing: ItemSizing, n_patterns: usize, n_batches: usize) -> usize {
    match sizing {
        ItemSizing::PerBatch => 1,
        ItemSizing::Adaptive => {
            let total = n_patterns * n_batches;
            let target = (pool_parallelism() * ADAPTIVE_OVERSUBSCRIPTION).max(1);
            (total / target).clamp(1, n_batches.max(1))
        }
    }
}

/// Per-`(pattern, batch)` partial statistics.
struct BatchPartial {
    wrong: usize,
    conf: f64,
}

/// Evaluates one test batch against one replica.
fn eval_batch(
    replica: &Model,
    dataset: &Dataset,
    start: usize,
    end: usize,
    mode: Mode,
) -> BatchPartial {
    let (x, labels) = dataset.batch_range(start, end);
    let logits = replica.infer(&x, mode);
    let probs = softmax_rows(&logits);
    let preds = probs.argmax_rows();
    let mut wrong = 0usize;
    let mut conf = 0f64;
    for (row, (&label, &pred)) in labels.iter().zip(&preds).enumerate() {
        if pred != label {
            wrong += 1;
        }
        conf += probs.row(row)[pred] as f64;
    }
    BatchPartial { wrong, conf }
}

/// Builds the per-pattern replica: template clone + dequantized weights.
fn build_replica(template: &Model, image: &QuantizedModel) -> Model {
    let mut replica = template.clone();
    image.write_to(&mut replica);
    replica
}

/// Evaluates every quantized image over `dataset`, in parallel (with
/// [`ItemSizing::Adaptive`] work items).
///
/// `template` supplies the architecture (and any non-parameter state such
/// as BatchNorm running statistics); its own weights are irrelevant and it
/// is never mutated. Returns one [`EvalResult`] per image, in order.
///
/// # Panics
///
/// Panics if `batch_size == 0`, `dataset` is empty, `mode` is
/// [`Mode::Train`], or an image's shapes do not match `template`.
pub fn eval_images(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    eval_images_sized(template, images, dataset, batch_size, mode, ItemSizing::Adaptive)
}

/// [`eval_images`] with explicit work-item [`ItemSizing`]. Results are
/// byte-identical across sizings; the knob only trades scheduling overhead
/// against load balance (and lets the determinism suite pin that claim).
///
/// # Panics
///
/// As [`eval_images`].
pub fn eval_images_sized(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
) -> Vec<EvalResult> {
    validate(dataset, batch_size, mode);
    let mut results = Vec::with_capacity(images.len());
    for chunk in images.chunks(MAX_REPLICAS) {
        eval_chunk(template, chunk, dataset, batch_size, mode, sizing, &mut results);
    }
    results
}

/// Like [`eval_images`], but builds the quantized images **lazily**, one
/// wave of patterns at a time: `make_image(i)` is called for
/// `i in 0..n_images` as each wave starts, so at most one wave of images
/// (plus its replicas, never more than [`MAX_REPLICAS`]) is alive at a
/// time. Use this for large grids where materializing every perturbed
/// weight copy up front would dominate memory.
///
/// # Panics
///
/// As [`eval_images`].
pub fn eval_images_with(
    template: &Model,
    n_images: usize,
    make_image: impl Fn(usize) -> QuantizedModel,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    eval_images_streaming_with(template, n_images, make_image, dataset, batch_size, mode, |_, _| {})
}

/// Patterns per streaming wave: small enough for frequent progress, large
/// enough (≥ two work items per hardware thread) to keep every core busy.
fn streaming_wave(n_batches: usize) -> usize {
    (2 * pool_parallelism()).div_ceil(n_batches.max(1)).clamp(1, MAX_REPLICAS)
}

/// Streaming [`eval_images`]: evaluates patterns in small waves and calls
/// `on_cell(index, result)` for every image — in index order — as soon as
/// its wave completes, so long campaigns can report progress while running.
/// Returns the full result vector, byte-identical to [`eval_images`].
///
/// # Panics
///
/// As [`eval_images`].
pub fn eval_images_streaming(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    validate(dataset, batch_size, mode);
    let wave = streaming_wave(dataset.len().div_ceil(batch_size));
    let mut results = Vec::with_capacity(images.len());
    let mut start = 0;
    while start < images.len() {
        let end = (start + wave).min(images.len());
        // Borrow the caller's images directly — no per-wave deep copies.
        eval_chunk(
            template,
            &images[start..end],
            dataset,
            batch_size,
            mode,
            ItemSizing::Adaptive,
            &mut results,
        );
        for (i, result) in results.iter().enumerate().take(end).skip(start) {
            on_cell(i, result);
        }
        start = end;
    }
    results
}

/// Streaming counterpart of [`eval_images_with`]: lazy image construction
/// *and* per-cell result delivery. `make_image(i)` is called as image `i`'s
/// wave starts; `on_cell(i, result)` fires in index order as waves finish.
///
/// Wave sizes scale with the pool parallelism (see [`eval_images_streaming`])
/// and never affect results: each wave is an ordinary chunked fan-out with
/// the usual serial reduction.
///
/// # Panics
///
/// As [`eval_images`].
pub fn eval_images_streaming_with(
    template: &Model,
    n_images: usize,
    make_image: impl Fn(usize) -> QuantizedModel,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    validate(dataset, batch_size, mode);
    let wave = streaming_wave(dataset.len().div_ceil(batch_size));
    let mut results = Vec::with_capacity(n_images);
    let mut start = 0;
    while start < n_images {
        let end = (start + wave).min(n_images);
        let images: Vec<QuantizedModel> = (start..end).map(&make_image).collect();
        eval_chunk(
            template,
            &images,
            dataset,
            batch_size,
            mode,
            ItemSizing::Adaptive,
            &mut results,
        );
        for (i, result) in results.iter().enumerate().take(end).skip(start) {
            on_cell(i, result);
        }
        start = end;
    }
    results
}

/// Evaluates one model directly (no quantized image, no replica build):
/// the single-pattern campaign behind [`crate::evaluate`]'s batch-parallel
/// clean-eval path.
pub(crate) fn eval_model(
    model: &Model,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    validate(dataset, batch_size, mode);
    let mut results = Vec::with_capacity(1);
    eval_replicas(&[model], dataset, batch_size, mode, ItemSizing::Adaptive, &mut results);
    results.pop().expect("single-pattern campaign yields one result")
}

fn validate(dataset: &Dataset, batch_size: usize, mode: Mode) {
    assert!(batch_size > 0, "batch size must be positive");
    mode.assert_inference();
    assert!(!dataset.is_empty(), "dataset must not be empty");
}

/// Evaluates one chunk of at most [`MAX_REPLICAS`] images, appending one
/// [`EvalResult`] per image to `results`.
fn eval_chunk(
    template: &Model,
    chunk: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
    results: &mut Vec<EvalResult>,
) {
    let pairs: Vec<(&Model, &QuantizedModel)> = chunk.iter().map(|q| (template, q)).collect();
    eval_pair_chunk(&pairs, dataset, batch_size, mode, sizing, results);
}

/// Multi-template chunk evaluation: each image carries its own template
/// model (the multi-model sweep's fan-out unit). Per-image results are
/// byte-identical to evaluating that image in a single-template campaign.
fn eval_pair_chunk(
    pairs: &[(&Model, &QuantizedModel)],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
    results: &mut Vec<EvalResult>,
) {
    let owned: Vec<Model> = pairs.iter().map(|(t, q)| build_replica(t, q)).collect();
    let replicas: Vec<&Model> = owned.iter().collect();
    eval_replicas(&replicas, dataset, batch_size, mode, sizing, results);
}

/// The multi-model streaming campaign: evaluates `n_cells` lazily built
/// quantized images, where cell `i`'s image is built by `make_cell(i)`
/// against the template model `templates[make_cell(i).0]` — so one fan-out
/// can span **several models'** cells (the sweep orchestrator's engine
/// entry point). Waves, replica chunking, and per-cell delivery behave
/// exactly as in [`eval_images_streaming_with`].
///
/// Each cell's result is **byte-identical** to evaluating the same image
/// through a single-template campaign of its own model: cells never share
/// state, so neither the cohort of cells in the fan-out nor their order
/// affects any individual result (which is what lets a resumed sweep skip
/// already-stored cells without perturbing the rest).
///
/// # Panics
///
/// Panics if a cell's template index is out of range, or on the
/// [`eval_images`] conditions.
pub fn eval_cells_streaming_with(
    templates: &[&Model],
    n_cells: usize,
    make_cell: impl Fn(usize) -> (usize, QuantizedModel),
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    validate(dataset, batch_size, mode);
    let wave = streaming_wave(dataset.len().div_ceil(batch_size));
    let mut results = Vec::with_capacity(n_cells);
    let mut start = 0;
    while start < n_cells {
        let end = (start + wave).min(n_cells);
        let cells: Vec<(usize, QuantizedModel)> = (start..end).map(&make_cell).collect();
        let pairs: Vec<(&Model, &QuantizedModel)> =
            cells.iter().map(|(t, q)| (templates[*t], q)).collect();
        eval_pair_chunk(&pairs, dataset, batch_size, mode, ItemSizing::Adaptive, &mut results);
        for (i, result) in results.iter().enumerate().take(end).skip(start) {
            on_cell(i, result);
        }
        start = end;
    }
    results
}

/// The engine core: evaluates shared model replicas over `dataset`,
/// appending one [`EvalResult`] per replica in order.
///
/// Work items (runs of consecutive batches of one pattern, per `sizing`)
/// fan out over the thread pool; every `(pattern, batch)` partial is
/// written to its own dedicated slot, then reduced serially in
/// `(pattern, batch)` order — so results are independent of thread count,
/// scheduling, *and* work-item sizing.
fn eval_replicas(
    replicas: &[&Model],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
    results: &mut Vec<EvalResult>,
) {
    let n = dataset.len();
    let n_batches = n.div_ceil(batch_size);
    let group = batches_per_item(sizing, replicas.len(), n_batches);
    let groups_per_pattern = n_batches.div_ceil(group);
    let partials: Vec<OnceLock<BatchPartial>> =
        (0..replicas.len() * n_batches).map(|_| OnceLock::new()).collect();
    parallel_for(replicas.len() * groups_per_pattern, |item| {
        let pattern = item / groups_per_pattern;
        let first = (item % groups_per_pattern) * group;
        let last = (first + group).min(n_batches);
        for batch in first..last {
            let start = batch * batch_size;
            let end = (start + batch_size).min(n);
            let partial = eval_batch(replicas[pattern], dataset, start, end, mode);
            let slot = pattern * n_batches + batch;
            assert!(partials[slot].set(partial).is_ok(), "batch slot {slot} visited twice");
        }
    });
    // Serial reduction in (pattern, batch) order keeps float sums
    // independent of scheduling.
    for pattern in 0..replicas.len() {
        let mut wrong = 0usize;
        let mut conf = 0f64;
        for batch in 0..n_batches {
            let part = partials[pattern * n_batches + batch].get().expect("missing batch partial");
            wrong += part.wrong;
            conf += part.conf;
        }
        results.push(EvalResult {
            error: wrong as f32 / n as f32,
            confidence: (conf / n as f64) as f32,
        });
    }
}

/// The serial reference implementation of [`eval_images`]: one pattern and
/// one batch at a time on the calling thread, bit-identical results.
///
/// Exists for determinism tests and the serial-vs-campaign benchmark; real
/// callers should use [`eval_images`].
///
/// # Panics
///
/// As [`eval_images`].
pub fn eval_images_serial(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    validate(dataset, batch_size, mode);
    let n = dataset.len();
    images
        .iter()
        .map(|image| {
            let replica = build_replica(template, image);
            let mut wrong = 0usize;
            let mut conf = 0f64;
            let mut start = 0;
            while start < n {
                let end = (start + batch_size).min(n);
                let part = eval_batch(&replica, dataset, start, end, mode);
                wrong += part.wrong;
                conf += part.conf;
                start = end;
            }
            EvalResult { error: wrong as f32 / n as f32, confidence: (conf / n as f64) as f32 }
        })
        .collect()
}

/// A grid of fault-injection campaign cells: every combination of
/// quantization scheme, bit error rate, and simulated uniform chip.
///
/// Chip seeds are `chip_seed_base + chip_index`, matching the paper's
/// protocol of fixing the same chips across all models and rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Quantization schemes to evaluate (each gets its own quantization).
    pub schemes: Vec<QuantScheme>,
    /// Bit error rates `p`.
    pub rates: Vec<f64>,
    /// Number of simulated chips per (scheme, rate) cell.
    pub n_chips: usize,
    /// Seed of chip 0; chip `c` uses `chip_seed_base + c`.
    pub chip_seed_base: u64,
}

impl CampaignGrid {
    /// A single-scheme grid (the common rate-sweep shape).
    pub fn uniform(
        scheme: QuantScheme,
        rates: Vec<f64>,
        n_chips: usize,
        chip_seed_base: u64,
    ) -> Self {
        Self { schemes: vec![scheme], rates, n_chips, chip_seed_base }
    }

    /// Total number of grid cells (= quantized images evaluated).
    pub fn n_cells(&self) -> usize {
        self.schemes.len() * self.rates.len() * self.n_chips
    }
}

/// Identifies one cell of a [`CampaignGrid`] by its indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into [`CampaignGrid::schemes`].
    pub scheme: usize,
    /// Index into [`CampaignGrid::rates`].
    pub rate: usize,
    /// Chip index in `0..n_chips`.
    pub chip: usize,
}

/// One heterogeneous injection axis: the generalization of
/// [`CampaignGrid`]'s uniform-chips-only span to *any* family of error
/// patterns the paper evaluates. An axis is a grid of **groups** (one per
/// bit error rate) times **points per group** (simulated chips, or
/// weight-to-memory mapping offsets), and every point deterministically
/// yields one perturbed quantized image.
///
/// Axes are pure descriptions — cheap to clone, compare, and hash into
/// persistent identities ([`ChipAxis::key`]) — and are *prepared* once per
/// campaign (profiled-chip synthesis, rate→voltage resolution) before any
/// cell is built.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipAxis {
    /// Uniform random chips: `rates × n_chips` cells with chip `c` seeded
    /// `chip_seed_base + c` — exactly [`CampaignGrid`]'s span, same seeds,
    /// same cell order (rate-major, then chip).
    Uniform {
        /// Bit error rates `p`.
        rates: Vec<f64>,
        /// Simulated chips per rate.
        n_chips: usize,
        /// Seed of chip 0; chip `c` uses `chip_seed_base + c`.
        chip_seed_base: u64,
    },
    /// A profiled chip's voltage/offset span (Tab. 5): rates resolved to
    /// operating voltages, crossed with mapping offsets.
    Profiled(ProfiledAxis),
}

impl ChipAxis {
    /// The uniform axis matching `CampaignGrid { rates, n_chips,
    /// chip_seed_base }`.
    pub fn uniform(rates: Vec<f64>, n_chips: usize, chip_seed_base: u64) -> Self {
        ChipAxis::Uniform { rates, n_chips, chip_seed_base }
    }

    /// The bit error rates spanned (one per group; for profiled axes these
    /// are the *target* rates the voltages were resolved from).
    pub fn rates(&self) -> &[f64] {
        match self {
            ChipAxis::Uniform { rates, .. } => rates,
            ChipAxis::Profiled(axis) => &axis.rates,
        }
    }

    /// Number of groups (= rates).
    pub fn n_groups(&self) -> usize {
        self.rates().len()
    }

    /// Points per group (chips for uniform axes, mapping offsets for
    /// profiled ones).
    pub fn group_size(&self) -> usize {
        match self {
            ChipAxis::Uniform { n_chips, .. } => *n_chips,
            ChipAxis::Profiled(axis) => axis.n_offsets,
        }
    }

    /// Total number of axis points (`n_groups × group_size`).
    pub fn n_points(&self) -> usize {
        self.n_groups() * self.group_size()
    }

    /// A stable identity string covering every input that shapes the
    /// injected patterns (seeds, rates in exact round-trip encoding, group
    /// geometry). Sweep-store cell keys hash this, so two axes with equal
    /// keys must produce byte-identical cells.
    pub fn key(&self) -> String {
        match self {
            ChipAxis::Uniform { rates, n_chips, chip_seed_base } => {
                let rates: Vec<String> = rates.iter().map(|r| format!("{r:e}")).collect();
                format!("uniform-s{chip_seed_base}-c{n_chips}-r[{}]", rates.join(","))
            }
            ChipAxis::Profiled(axis) => axis.key(),
        }
    }

    /// Resolves the axis for cell construction: synthesizes the profiled
    /// chip and its per-rate operating voltages once, so per-point image
    /// building is cheap. Deterministic — preparing twice yields
    /// byte-identical cells.
    pub(crate) fn prepare(&self) -> PreparedAxis<'_> {
        match self {
            ChipAxis::Uniform { rates, n_chips, chip_seed_base } => {
                PreparedAxis::Uniform { rates, n_chips: *n_chips, chip_seed_base: *chip_seed_base }
            }
            ChipAxis::Profiled(axis) => {
                let chip = axis.synthesize();
                let voltages = axis.voltages(&chip);
                PreparedAxis::Profiled { axis, chip, voltages }
            }
        }
    }
}

/// A [`ChipAxis`] with its per-campaign state resolved (synthesized chip,
/// rate→voltage table). Built once per sweep/campaign; shared by all of
/// the axis's cells.
pub(crate) enum PreparedAxis<'a> {
    Uniform { rates: &'a [f64], n_chips: usize, chip_seed_base: u64 },
    Profiled { axis: &'a ProfiledAxis, chip: ProfiledChip, voltages: Vec<f64> },
}

impl PreparedAxis<'_> {
    /// Builds the perturbed quantized image of axis point `point` from the
    /// clean quantized image `q0`.
    pub(crate) fn make_image(&self, q0: &QuantizedModel, point: usize) -> QuantizedModel {
        let mut q = q0.clone();
        match self {
            PreparedAxis::Uniform { rates, n_chips, chip_seed_base } => {
                let p = rates[point / n_chips];
                let c = point % n_chips;
                q.inject(&UniformChip::new(chip_seed_base + c as u64).at_rate(p));
            }
            PreparedAxis::Profiled { axis, chip, voltages } => {
                q.inject(&axis.injector(chip, voltages, point));
            }
        }
        q
    }
}

/// Identifies one cell of a [`run_axis`] campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxisCell {
    /// Index into the campaign's scheme list.
    pub scheme: usize,
    /// Group (= rate) index within the axis.
    pub group: usize,
    /// Point index within the group (chip or mapping offset).
    pub point: usize,
}

/// Runs `schemes × axis` as **one** parallel campaign: quantizes the model
/// once per scheme, builds every axis point's perturbed image lazily, and
/// fans all cells out together. Returns `[scheme][group]` [`RobustEval`]s.
///
/// For a uniform axis this is exactly [`run_grid`]; profiled axes make
/// Tab. 5-style voltage/offset sweeps run as one campaign too.
///
/// # Panics
///
/// Panics if `schemes` or the axis is empty in any dimension, or on the
/// [`eval_images`] conditions.
pub fn run_axis(
    model: &Model,
    schemes: &[QuantScheme],
    axis: &ChipAxis,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<Vec<RobustEval>> {
    run_axis_streaming(model, schemes, axis, dataset, batch_size, mode, |_, _| {})
}

/// [`run_axis`] with a per-cell progress callback: `on_cell(cell, result)`
/// fires for every (scheme, group, point) cell — scheme-major, then
/// group-major, then point order — as soon as its wave completes. The
/// returned grid is byte-identical to [`run_axis`]'s.
///
/// # Panics
///
/// As [`run_axis`].
pub fn run_axis_streaming(
    model: &Model,
    schemes: &[QuantScheme],
    axis: &ChipAxis,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(AxisCell, &EvalResult),
) -> Vec<Vec<RobustEval>> {
    assert!(!schemes.is_empty(), "campaign needs at least one scheme");
    assert!(axis.n_groups() > 0, "campaign axis needs at least one rate");
    assert!(axis.group_size() > 0, "campaign axis needs at least one point per rate");

    let prepared = axis.prepare();
    let group = axis.group_size();
    schemes
        .iter()
        .enumerate()
        .map(|(scheme_index, &scheme)| {
            // Quantize once per scheme; build each point's image lazily as
            // its wave is reached, so peak memory stays at one wave of
            // images + replicas however large the axis.
            let q0 = QuantizedModel::quantize(model, scheme);
            let cells = eval_images_streaming_with(
                model,
                axis.n_points(),
                |point| prepared.make_image(&q0, point),
                dataset,
                batch_size,
                mode,
                |point, result| {
                    let id = AxisCell {
                        scheme: scheme_index,
                        group: point / group,
                        point: point % group,
                    };
                    on_cell(id, result);
                },
            );
            cells.chunks(group).map(RobustEval::from_results).collect()
        })
        .collect()
}

/// Runs a whole [`CampaignGrid`] as **one** parallel campaign.
///
/// Quantizes the model once per scheme, injects every (rate, chip) pattern,
/// and evaluates all cells in a single fan-out. Returns `[scheme][rate]`
/// [`RobustEval`]s whose per-chip `errors` are bit-identical to running
/// `robust_eval_uniform` serially per rate with the same seeds.
///
/// The model is only read; its weights are never touched (patterns live in
/// per-pattern replicas).
///
/// # Panics
///
/// Panics if the grid is empty in any dimension, or on the
/// [`eval_images`] conditions.
pub fn run_grid(
    model: &Model,
    grid: &CampaignGrid,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<Vec<RobustEval>> {
    run_grid_streaming(model, grid, dataset, batch_size, mode, |_, _| {})
}

/// [`run_grid`] with a per-cell progress callback: `on_cell(cell, result)`
/// fires for every (scheme, rate, chip) cell — in scheme-major, then
/// rate-major, then chip order — as soon as the cell's wave of the
/// campaign completes. The returned grid is byte-identical to
/// [`run_grid`]'s; the callback only adds observability (long sweeps use
/// it for progress output).
///
/// # Panics
///
/// As [`run_grid`].
pub fn run_grid_streaming(
    model: &Model,
    grid: &CampaignGrid,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(GridCell, &EvalResult),
) -> Vec<Vec<RobustEval>> {
    let axis = ChipAxis::uniform(grid.rates.clone(), grid.n_chips, grid.chip_seed_base);
    run_axis_streaming(model, &grid.schemes, &axis, dataset, batch_size, mode, |cell, result| {
        on_cell(GridCell { scheme: cell.scheme, rate: cell.group, chip: cell.point }, result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use crate::{evaluate, robust_eval_uniform, EVAL_BATCH};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn tiny_setup() -> (Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let (_, test) = SynthDataset::Mnist.generate(0);
        (built.model, test)
    }

    fn uniform_images(model: &mut Model, n_chips: usize, p: f64) -> Vec<QuantizedModel> {
        let q0 = QuantizedModel::quantize(model, QuantScheme::rquant(8));
        (0..n_chips)
            .map(|c| {
                let mut q = q0.clone();
                q.inject(&UniformChip::new(1000 + c as u64).at_rate(p));
                q
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 6, 0.02);
        let parallel = eval_images(&model, &images, &test, EVAL_BATCH, Mode::Eval);
        let serial = eval_images_serial(&model, &images, &test, EVAL_BATCH, Mode::Eval);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn engine_matches_legacy_mutate_and_forward_loop() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 4, 0.01);
        let engine = eval_images(&model, &images, &test, EVAL_BATCH, Mode::Eval);

        // The pre-engine path: write each image into the model and run the
        // cached-forward evaluator.
        let snapshot = model.param_tensors();
        let legacy: Vec<EvalResult> = images
            .iter()
            .map(|q| {
                q.write_to(&mut model);
                evaluate(&model, &test, EVAL_BATCH, Mode::Eval)
            })
            .collect();
        model.set_param_tensors(&snapshot);

        for (e, l) in engine.iter().zip(&legacy) {
            assert_eq!(e.error, l.error, "error must be bit-identical to the legacy loop");
        }
    }

    #[test]
    fn robust_eval_uniform_is_deterministic_across_calls() {
        let (model, test) = tiny_setup();
        let a = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        let b = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.mean_confidence, b.mean_confidence);
    }

    #[test]
    fn run_grid_groups_cells_by_scheme_and_rate() {
        let (model, test) = tiny_setup();
        let grid = CampaignGrid {
            schemes: vec![QuantScheme::rquant(8), QuantScheme::rquant(4)],
            rates: vec![0.001, 0.01],
            n_chips: 3,
            chip_seed_base: 1000,
        };
        let out = run_grid(&model, &grid, &test, EVAL_BATCH, Mode::Eval);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|per_rate| per_rate.len() == 2));
        assert!(out.iter().flatten().all(|r| r.errors.len() == 3));

        // Each grid cell must equal the standalone uniform evaluation.
        let standalone = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(out[0][1].errors, standalone.errors);
    }

    #[test]
    fn lazy_image_construction_matches_eager() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 5, 0.02);
        let eager = eval_images(&model, &images, &test, EVAL_BATCH, Mode::Eval);
        let lazy = eval_images_with(
            &model,
            images.len(),
            |i| images[i].clone(),
            &test,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(eager, lazy);
    }

    #[test]
    fn chunked_campaign_matches_unchunked() {
        let (mut model, test) = tiny_setup();
        // More images than MAX_REPLICAS would be slow here; instead check
        // that splitting a campaign in two yields the same cells.
        let images = uniform_images(&mut model, 6, 0.02);
        let whole = eval_images(&model, &images, &test, EVAL_BATCH, Mode::Eval);
        let mut split = eval_images(&model, &images[..2], &test, EVAL_BATCH, Mode::Eval);
        split.extend(eval_images(&model, &images[2..], &test, EVAL_BATCH, Mode::Eval));
        assert_eq!(whole, split);
    }

    #[test]
    #[should_panic(expected = "non-training mode")]
    fn rejects_training_mode() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 1, 0.0);
        let _ = eval_images(&model, &images, &test, EVAL_BATCH, Mode::Train);
    }
}
