//! **Fig. 7 / Fig. 11 / Tab. 18–21** — Summary sweeps: RErr vs bit error
//! rate on all three datasets and across precisions.
//!
//! For each dataset, trains the method stack (`NORMAL`, `RQUANT`,
//! `+CLIPPING`, `+RANDBET`) at 8 bit and the best low-precision models
//! (`m ∈ {4, 3, 2}`), then prints the per-rate RErr series the paper plots.
//!
//! Each dataset's whole method stack evaluates as **one** durable sweep
//! campaign ([`bitrobust_core::run_sweep`]) checkpointed to
//! `target/sweeps/fig7_<dataset>.jsonl` — interrupt and rerun to resume
//! (`--fresh` recomputes).

use bitrobust_core::{run_sweep, RandBetVariant, SweepAxis, SweepOptions, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, open_sweep_store, p_grid_cifar, p_grid_cifar100, p_grid_mnist, pct, pct_pm,
    protocol_axis, sweep_models, sweep_progress, warm_zoo, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    for kind in [DatasetKind::Cifar10, DatasetKind::Cifar100, DatasetKind::Mnist] {
        run_dataset(kind, &opts);
    }
    println!("Expected shape (paper): per dataset, NORMAL < RQUANT < +CLIPPING < +RANDBET in");
    println!("robustness; tolerable rates are far higher on MNIST than CIFAR100; low precision");
    println!("costs clean Err but RANDBET keeps RErr from exploding.");
}

fn run_dataset(kind: DatasetKind, opts: &ExpOptions) {
    let (_, test_ds) = dataset_pair(kind, opts.seed);
    let ps = match kind {
        DatasetKind::Cifar10 => p_grid_cifar(),
        DatasetKind::Cifar100 => p_grid_cifar100(),
        DatasetKind::Mnist => p_grid_mnist(),
    };
    // RandBET training rate scales with what the dataset tolerates.
    let (p_train, p_train_low) = match kind {
        DatasetKind::Mnist => (0.1, 0.05),
        DatasetKind::Cifar10 => (0.01, 0.005),
        DatasetKind::Cifar100 => (0.005, 0.001),
    };

    let mut runs: Vec<(String, QuantScheme, TrainMethod)> = vec![
        ("NORMAL 8bit".into(), QuantScheme::normal(8), TrainMethod::Normal),
        ("RQUANT 8bit".into(), QuantScheme::rquant(8), TrainMethod::Normal),
        ("CLIPPING 0.1 8bit".into(), QuantScheme::rquant(8), TrainMethod::Clipping { wmax: 0.1 }),
        ("CLIPPING 0.05 8bit".into(), QuantScheme::rquant(8), TrainMethod::Clipping { wmax: 0.05 }),
        (
            format!("RANDBET 0.1 p={:.2}% 8bit", 100.0 * p_train_low),
            QuantScheme::rquant(8),
            TrainMethod::RandBet {
                wmax: Some(0.1),
                p: p_train_low,
                variant: RandBetVariant::Standard,
            },
        ),
        (
            format!("RANDBET 0.05 p={:.2}% 8bit", 100.0 * p_train),
            QuantScheme::rquant(8),
            TrainMethod::RandBet {
                wmax: Some(0.05),
                p: p_train,
                variant: RandBetVariant::Standard,
            },
        ),
    ];
    // Low-precision best models (skip for CIFAR100 to bound runtime; the
    // paper's Fig. 11 low-precision panels cover CIFAR10/MNIST).
    if kind != DatasetKind::Cifar100 {
        for m in [4u8, 3, 2] {
            runs.push((
                format!("RANDBET 0.05 p={:.2}% {m}bit", 100.0 * p_train),
                QuantScheme::rquant(m),
                TrainMethod::RandBet {
                    wmax: Some(0.05),
                    p: p_train,
                    variant: RandBetVariant::Standard,
                },
            ));
        }
    }

    let mut header = vec!["model".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("p={:.3}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    // Warm the zoo for the whole method stack (parallel across models, or
    // sequential with full inner parallelism when the stack is small), then
    // evaluate every model's rate grid as one durable sweep campaign.
    let specs: Vec<ZooSpec> = runs
        .iter()
        .map(|(_, scheme, method)| {
            let mut spec = ZooSpec::new(kind, Some(*scheme), *method);
            spec.epochs = opts.epochs(spec.epochs);
            spec.seed = opts.seed;
            spec
        })
        .collect();
    eprintln!("warming {} {} zoo models...", specs.len(), kind.name());
    let warmed = warm_zoo(&specs, opts.seed, opts.no_cache);

    let models = sweep_models(&specs, &warmed);
    let axes = vec![SweepAxis::new("uniform", protocol_axis(&ps, opts.chips))];
    let total = models.len() * axes[0].axis.n_points();
    let mut store = open_sweep_store(&format!("fig7_{}", kind.name()), opts);
    eprint!("sweep {} models x {} cells: ", models.len(), axes[0].axis.n_points());
    let results = run_sweep(
        &models,
        &axes,
        &test_ds,
        &SweepOptions::default(),
        Some(&mut store),
        sweep_progress(total),
    );

    for (mi, ((name, _, _), (_, report))) in runs.into_iter().zip(&warmed).enumerate() {
        let sweep = results.robust(mi, 0);
        let mut row = vec![name, pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Fig. 7 — {}:\n{}", kind.name(), table.render());
    bitrobust_experiments::finish_obs();
}
