//! **Tab. 10** — BatchNorm is not robust to weight bit errors.
//!
//! Compares GroupNorm and BatchNorm models under random bit errors, and
//! shows that evaluating BatchNorm with *batch statistics at test time*
//! recovers much of the robustness — the accumulated running statistics
//! are what break.

use bitrobust_core::{robust_eval_uniform, NormKind, TrainMethod, EVAL_BATCH};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [1e-3, 5e-3];

    let mut table = Table::new(&["model", "Err %", "RErr p=0.1%", "RErr p=0.5%"]);

    let configs: Vec<(String, NormKind, TrainMethod, Mode)> = vec![
        ("GN NORMAL".into(), NormKind::Group, TrainMethod::Normal, Mode::Eval),
        (
            "GN CLIPPING 0.1".into(),
            NormKind::Group,
            TrainMethod::Clipping { wmax: 0.1 },
            Mode::Eval,
        ),
        ("BN NORMAL (accum stats)".into(), NormKind::Batch, TrainMethod::Normal, Mode::Eval),
        (
            "BN CLIPPING 0.1 (accum stats)".into(),
            NormKind::Batch,
            TrainMethod::Clipping { wmax: 0.1 },
            Mode::Eval,
        ),
        (
            "BN NORMAL (batch stats)".into(),
            NormKind::Batch,
            TrainMethod::Normal,
            Mode::EvalBatchStats,
        ),
        (
            "BN CLIPPING 0.1 (batch stats)".into(),
            NormKind::Batch,
            TrainMethod::Clipping { wmax: 0.1 },
            Mode::EvalBatchStats,
        ),
    ];

    // BatchNorm models are not cacheable; train each (norm, method) pair
    // once and reuse across eval modes.
    let mut cache: Vec<((NormKind, String), bitrobust_nn::Model, f32)> = Vec::new();
    for (name, norm, method, mode) in configs {
        let method_key = format!("{method:?}");
        let have = cache.iter().position(|((n, m), _, _)| *n == norm && *m == method_key);
        let idx = match have {
            Some(i) => i,
            None => {
                let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
                spec.norm = norm;
                spec.epochs = opts.epochs(spec.epochs);
                spec.seed = opts.seed;
                let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
                cache.push(((norm, method_key), model, report.clean_error));
                cache.len() - 1
            }
        };
        let (_, model, clean_err) = &mut cache[idx];
        let r: Vec<_> = ps
            .iter()
            .map(|&p| {
                robust_eval_uniform(
                    model, scheme, &test_ds, p, opts.chips, CHIP_SEED, EVAL_BATCH, mode,
                )
            })
            .collect();
        table.row_owned(vec![
            name,
            pct(*clean_err as f64),
            pct_pm(r[0].mean_error as f64, r[0].std_error as f64),
            pct_pm(r[1].mean_error as f64, r[1].std_error as f64),
        ]);
    }
    println!("Tab. 10 (CIFAR10 stand-in, m = 8 bit):\n{}", table.render());
    println!("Expected shape (paper): BN with accumulated statistics degrades far more than GN");
    println!("under bit errors; using batch statistics at test time recovers most of it.");
}
