//! Open-loop load test for the `bitrobust-serve` inference service:
//! generator threads submit single-image requests as fast as admission
//! control lets them (never waiting on responses — submission rate is
//! decoupled from service rate), while a waiter thread redeems tickets
//! and records per-request latency.
//!
//! Running this bench writes a machine-readable `BENCH_serve.json` at the
//! workspace root with sustained requests/sec, p50/p99 latency, and the
//! shed count; CI uploads it as an artifact and sanity-gates the numbers.
//! Before measuring, a sample of responses is checked bit-for-bit against
//! the single-request `reference_response` — the load path must not cost
//! a single byte of the determinism contract.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bitrobust_core::{build, ArchKind, NormKind};
use bitrobust_data::SynthDataset;
use bitrobust_serve::{
    reference_response, InferenceService, ModelRegistry, ServeConfig, SubmitError, Ticket,
};
use bitrobust_tensor::Tensor;
use rand::SeedableRng;

/// Generator threads (concurrent synthetic clients).
const CLIENTS: usize = 4;
/// Requests attempted per client.
const REQUESTS_PER_CLIENT: usize = 500;
/// Distinct images cycled through by the generators.
const IMAGE_POOL: usize = 64;

const CONFIG: ServeConfig =
    ServeConfig { queue_capacity: 512, max_batch: 32, max_delay: Duration::from_millis(1) };

fn setup() -> (Arc<ModelRegistry>, Vec<Tensor>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("mlp", model);
    let (_, test) = SynthDataset::Mnist.generate(0);
    let images = (0..IMAGE_POOL).map(|i| test.batch(&[i % test.len()]).0).collect();
    (registry, images)
}

fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

fn main() {
    // `--obs <spec>` mirrors the experiments CLI (the bench harness is
    // `harness = false`, so arguments pass straight through).
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--obs") {
        let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
        match bitrobust_obs::ObsConfig::parse(spec) {
            Ok(cfg) => bitrobust_obs::init(&cfg.with_env_paths()),
            Err(e) => {
                eprintln!("--obs: {e}");
                std::process::exit(2);
            }
        }
    }
    let (registry, images) = setup();

    // Correctness gate before the clock starts: served bytes == reference.
    {
        let service = InferenceService::start(Arc::clone(&registry), CONFIG);
        let reference_model = registry.get("mlp").unwrap();
        for image in images.iter().take(8) {
            let response = service.infer_blocking("mlp", image.clone()).expect("warm-up submit");
            let expected = reference_response(&reference_model, image);
            assert_eq!(response.prediction, expected.prediction);
            assert_eq!(
                response.confidence.to_bits(),
                expected.confidence.to_bits(),
                "served response must be bit-identical to the single-request reference"
            );
        }
        service.shutdown();
    }

    let service = Arc::new(InferenceService::start(Arc::clone(&registry), CONFIG));
    let (ticket_tx, ticket_rx) = mpsc::channel::<(Instant, Ticket)>();

    let start = Instant::now();
    let waiter = {
        std::thread::spawn(move || {
            let mut latencies: Vec<Duration> = Vec::new();
            while let Ok((submitted, ticket)) = ticket_rx.recv() {
                ticket.wait();
                latencies.push(submitted.elapsed());
            }
            latencies
        })
    };

    let shed = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = Arc::clone(&service);
                let ticket_tx = ticket_tx.clone();
                let images = &images;
                scope.spawn(move || {
                    let mut shed = 0u64;
                    for i in 0..REQUESTS_PER_CLIENT {
                        let image = images[(client + CLIENTS * i) % images.len()].clone();
                        match service.submit("mlp", image) {
                            Ok(ticket) => {
                                ticket_tx.send((Instant::now(), ticket)).expect("waiter alive")
                            }
                            Err(SubmitError::Overloaded) => {
                                // Stay open-loop (never wait on responses),
                                // but back off briefly so the run exercises
                                // sustained saturation, not one instant burst.
                                shed += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(other) => panic!("unexpected rejection: {other}"),
                        }
                    }
                    shed
                })
            })
            .collect();
        clients.into_iter().map(|h| h.join().expect("client thread")).sum::<u64>()
    });
    drop(ticket_tx);

    // Live gauges while the waiter is still redeeming the backlog: the
    // instantaneous view ServeStats now carries alongside the totals.
    let live = service.stats();
    println!(
        "end-of-run gauges: queue_depth={} in_flight={} versions={:?}",
        live.queue_depth, live.in_flight, live.versions
    );

    // Sustained throughput is submissions *through* responses: the clock
    // stops when the last admitted request has been redeemed.
    let mut latencies = waiter.join().expect("waiter thread");
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let stats = Arc::into_inner(service).expect("sole service owner").shutdown();
    assert_eq!(stats.shed, shed, "client-observed sheds must match service accounting");
    assert_eq!(stats.completed + stats.shed, stats.submitted, "no request may be silently dropped");
    assert_eq!(latencies.len() as u64, stats.completed);

    let requests = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let rps = stats.completed as f64 / elapsed;
    let threads = bitrobust_tensor::pool_parallelism();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"arch\": \"mlp\",\n  \"clients\": {},\n  \
         \"requests\": {},\n  \"completed\": {},\n  \"shed\": {},\n  \"queue_capacity\": {},\n  \
         \"max_batch\": {},\n  \"max_delay_ms\": {:.3},\n  \"threads\": {},\n  \
         \"elapsed_secs\": {:.6},\n  \"requests_per_sec\": {:.1},\n  \"p50_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"bit_identical\": true\n}}\n",
        CLIENTS,
        requests,
        stats.completed,
        stats.shed,
        CONFIG.queue_capacity,
        CONFIG.max_batch,
        CONFIG.max_delay.as_secs_f64() * 1e3,
        threads,
        elapsed,
        rps,
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 99.0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("serve load comparison written to {path}:\n{json}");
    for written in bitrobust_obs::finish().expect("write obs output") {
        println!("obs output written to {}", written.display());
    }
}
