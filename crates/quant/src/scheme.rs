//! Fixed-point quantization schemes (the lattice of Tab. 1 / Tab. 8).

use serde::{Deserialize, Serialize};

use crate::{QuantRange, QuantizedTensor};

/// Smallest representable half-range, guarding against constant tensors.
const MIN_SPAN: f32 = 1e-8;

/// Whether the quantization range is shared across all tensors or adapted
/// per tensor ("per-layer" in the paper: each layer's weights and biases are
/// quantized separately, as in PyTorch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// One range for the entire network (`qmax = max_i |w_i|` over all
    /// layers). The paper's worst case (Tab. 1 row 1).
    Global,
    /// A range per parameter tensor. The paper's default.
    PerTensor,
}

/// Whether the range is symmetric around zero or spans `[min w, max w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RangeMode {
    /// `[-qmax, qmax]` with `qmax = max |w|`.
    Symmetric,
    /// `[qmin, qmax]` mapped linearly onto `[-1, 1]` before quantization
    /// (Eq. 3 in the paper's App. D).
    Asymmetric,
}

/// Integer representation of the quantization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntegerRepr {
    /// Two's-complement signed integers in the low `m` bits.
    ///
    /// With an asymmetric range the sign bit no longer mirrors the weight's
    /// sign, which the paper shows is what makes this representation fragile
    /// under MSB flips (Sec. 5.1, App. G.2).
    Signed,
    /// Unsigned integers, implemented via an additive offset of
    /// `2^(m-1) - 1` (Eq. 4 in App. D). The robust choice.
    ///
    /// Note the top code point `2^m - 1` is **dead on the clean path**: the
    /// quantizer clamps levels to `[-L, L]` with `L = 2^(m-1) - 1`, so clean
    /// words span `[0, 2L]` and the all-ones word (level `L + 1`) is only
    /// ever *observed* after a bit error. It still decodes meaningfully —
    /// one step above the top of the clean range — which is exactly why this
    /// representation is robust: an MSB flip moves the value by half the
    /// range instead of flipping its sign.
    Unsigned,
}

/// How `w/Δ` becomes an integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rounding {
    /// C-style float-to-integer conversion (truncation toward zero) — the
    /// "commonly implemented" variant the paper warns about.
    Truncate,
    /// Proper round-to-nearest (`⌈·⌋`), the robust choice.
    Nearest,
}

/// A complete fixed-point quantization scheme.
///
/// The paper's evaluation walks a lattice of schemes from the fragile
/// baseline (global, symmetric, signed, truncating) to the robust
/// [`QuantScheme::rquant`] (per-layer, asymmetric, unsigned, rounding);
/// every intermediate point is constructible here.
///
/// # Examples
///
/// ```
/// use bitrobust_quant::QuantScheme;
///
/// let scheme = QuantScheme::rquant(8);
/// let weights = [0.5f32, -0.25, 0.125, 0.0];
/// let q = scheme.quantize(&weights);
/// let back = q.dequantize();
/// for (w, b) in weights.iter().zip(&back) {
///     assert!((w - b).abs() < 0.01);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantScheme {
    /// Range sharing across tensors.
    pub granularity: Granularity,
    /// Symmetric vs asymmetric range.
    pub range_mode: RangeMode,
    /// Signed vs unsigned integer representation.
    pub repr: IntegerRepr,
    /// Truncation vs round-to-nearest.
    pub rounding: Rounding,
    bits: u8,
}

impl QuantScheme {
    /// Creates a scheme with explicit options.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8`.
    pub fn new(
        granularity: Granularity,
        range_mode: RangeMode,
        repr: IntegerRepr,
        rounding: Rounding,
        bits: u8,
    ) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
        Self { granularity, range_mode, repr, rounding, bits }
    }

    /// Eq. (1) with a single global range: the most fragile scheme
    /// (Tab. 1 row 1).
    pub fn eq1_global(bits: u8) -> Self {
        Self::new(
            Granularity::Global,
            RangeMode::Symmetric,
            IntegerRepr::Signed,
            Rounding::Truncate,
            bits,
        )
    }

    /// The paper's `NORMAL` reference: per-layer symmetric signed
    /// quantization with integer conversion (Tab. 1 row 2).
    pub fn normal(bits: u8) -> Self {
        Self::new(
            Granularity::PerTensor,
            RangeMode::Symmetric,
            IntegerRepr::Signed,
            Rounding::Truncate,
            bits,
        )
    }

    /// `NORMAL` + asymmetric ranges, still signed (Tab. 1 row 3; fragile at
    /// high bit error rates).
    pub fn asymmetric_signed(bits: u8) -> Self {
        Self::new(
            Granularity::PerTensor,
            RangeMode::Asymmetric,
            IntegerRepr::Signed,
            Rounding::Truncate,
            bits,
        )
    }

    /// Asymmetric + unsigned integers (Tab. 1 row 4).
    pub fn asymmetric_unsigned(bits: u8) -> Self {
        Self::new(
            Granularity::PerTensor,
            RangeMode::Asymmetric,
            IntegerRepr::Unsigned,
            Rounding::Truncate,
            bits,
        )
    }

    /// The paper's robust quantization `RQUANT`: per-layer, asymmetric,
    /// unsigned, with proper rounding (Tab. 1 row 5).
    pub fn rquant(bits: u8) -> Self {
        Self::new(
            Granularity::PerTensor,
            RangeMode::Asymmetric,
            IntegerRepr::Unsigned,
            Rounding::Nearest,
            bits,
        )
    }

    /// Per-layer symmetric quantization with rounding, used for the
    /// symmetric-quantization ablations (Tab. 9 / Tab. 12).
    pub fn symmetric(bits: u8) -> Self {
        Self::new(
            Granularity::PerTensor,
            RangeMode::Symmetric,
            IntegerRepr::Signed,
            Rounding::Nearest,
            bits,
        )
    }

    /// Precision in bits (`m`).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// A stable, filename-safe key encoding the full scheme, e.g. `q8laun`
    /// for 8-bit RQuant (per-**l**ayer, **a**symmetric, **u**nsigned,
    /// **n**earest). Used wherever a scheme is part of a persistent
    /// identity: zoo cache keys and sweep-store cell hashes.
    pub fn key(&self) -> String {
        let g = match self.granularity {
            Granularity::Global => "g",
            Granularity::PerTensor => "l",
        };
        let r = match self.range_mode {
            RangeMode::Symmetric => "s",
            RangeMode::Asymmetric => "a",
        };
        let i = match self.repr {
            IntegerRepr::Signed => "i",
            IntegerRepr::Unsigned => "u",
        };
        let o = match self.rounding {
            Rounding::Truncate => "t",
            Rounding::Nearest => "n",
        };
        format!("q{}{g}{r}{i}{o}", self.bits)
    }

    /// Bitmask of the live (stored) bits within each 8-bit word.
    pub fn live_mask(&self) -> u8 {
        if self.bits == 8 {
            0xFF
        } else {
            (1u8 << self.bits) - 1
        }
    }

    /// Largest positive quantization level, `L = 2^(m-1) - 1`.
    pub fn max_level(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// The quantization range this scheme derives from a weight buffer.
    ///
    /// Symmetric mode returns `[-max|w|, max|w|]`; asymmetric returns
    /// `[min w, max w]`. Degenerate (constant) buffers are widened to a tiny
    /// span so that `Δ > 0`.
    pub fn range_for(&self, weights: &[f32]) -> QuantRange {
        match self.range_mode {
            RangeMode::Symmetric => {
                let a = weights.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(MIN_SPAN);
                QuantRange::new(-a, a)
            }
            RangeMode::Asymmetric => {
                let lo = weights.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let (lo, hi) = if weights.is_empty() { (-MIN_SPAN, MIN_SPAN) } else { (lo, hi) };
                // Widen degenerate (constant) ranges by an amount that stays
                // representable at the magnitude of the values.
                let min_span = (lo.abs().max(hi.abs()) * 1e-4).max(MIN_SPAN);
                if hi - lo < min_span {
                    let mid = 0.5 * (hi + lo);
                    QuantRange::new(mid - min_span, mid + min_span)
                } else {
                    QuantRange::new(lo, hi)
                }
            }
        }
    }

    /// Quantizes `weights` using a range derived from them.
    ///
    /// This is the per-tensor entry point; for [`Granularity::Global`]
    /// schemes, compute the shared range over all tensors first and call
    /// [`QuantScheme::quantize_with_range`].
    pub fn quantize(&self, weights: &[f32]) -> QuantizedTensor {
        self.quantize_with_range(weights, self.range_for(weights))
    }

    /// Quantizes `weights` with an explicit range.
    ///
    /// # Panics
    ///
    /// Panics if any weight is non-finite: `f32::max`/`f32::min` range folds
    /// drop NaN and `as i32` saturates NaN to 0, so without this check a NaN
    /// weight would silently quantize to code 0.
    pub fn quantize_with_range(&self, weights: &[f32], range: QuantRange) -> QuantizedTensor {
        let level = self.max_level();
        let mask = self.live_mask();
        let words = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite(), "cannot quantize non-finite weight {w}");
                let normalized = self.normalize(w, range);
                let delta = 1.0 / level as f32;
                let raw = normalized / delta;
                let q = match self.rounding {
                    Rounding::Truncate => raw as i32, // C-style trunc toward zero
                    Rounding::Nearest => raw.round() as i32,
                };
                let q = q.clamp(-level, level);
                match self.repr {
                    IntegerRepr::Signed => (q as u32 as u8) & mask,
                    IntegerRepr::Unsigned => (q + level) as u8 & mask,
                }
            })
            .collect();
        QuantizedTensor::from_parts(words, range, *self)
    }

    /// Decodes a stored word to its integer quantization level.
    ///
    /// This is the single definition of the word → level map shared by the
    /// float path ([`QuantScheme::dequantize_word`]) and the integer-domain
    /// inference path: signed words sign-extend from the low `m` bits,
    /// unsigned words subtract the [`QuantScheme::max_level`] offset. Clean
    /// levels lie in `[-L, L]`; bit errors can push the result to `-2^(m-1)`
    /// (signed) or `L + 1` (unsigned).
    pub fn decode_level(&self, word: u8) -> i32 {
        let level = self.max_level();
        let mask = self.live_mask();
        let word = word & mask;
        match self.repr {
            IntegerRepr::Signed => {
                // Sign-extend from the low `m` bits.
                if self.bits < 8 && (word & (1 << (self.bits - 1))) != 0 {
                    (word | !mask) as i8 as i32
                } else {
                    word as i8 as i32
                }
            }
            IntegerRepr::Unsigned => word as i32 - level,
        }
    }

    /// Dequantizes a single stored word.
    pub fn dequantize_word(&self, word: u8, range: QuantRange) -> f32 {
        let level = self.max_level();
        let q = self.decode_level(word);
        let normalized = q as f32 / level as f32;
        self.denormalize(normalized, range)
    }

    /// The affine map `w ≈ scale * q + offset` from a decoded level
    /// ([`QuantScheme::decode_level`]) back to weight space.
    ///
    /// Algebraically identical to [`QuantScheme::dequantize_word`]'s
    /// normalize-then-denormalize (symmetric: `w = q/L * hi`; asymmetric:
    /// `w = (q/L + 1) * span/2 + lo`), but folded into one multiply-add so
    /// the integer inference path can apply it to whole i32 accumulators.
    /// The float association differs, so results may differ from the float
    /// path in the last ulp — the native path is pinned by tolerance, the
    /// float path bit-for-bit.
    pub fn weight_affine(&self, range: QuantRange) -> (f32, f32) {
        let level = self.max_level() as f32;
        match self.range_mode {
            RangeMode::Symmetric => (range.hi() / level, 0.0),
            RangeMode::Asymmetric => {
                let span = range.hi() - range.lo();
                (span / (2.0 * level), range.lo() + 0.5 * span)
            }
        }
    }

    /// Maps a weight into the internal `[-1, 1]` domain.
    fn normalize(&self, w: f32, range: QuantRange) -> f32 {
        match self.range_mode {
            RangeMode::Symmetric => (w / range.hi()).clamp(-1.0, 1.0),
            RangeMode::Asymmetric => {
                ((w - range.lo()) / (range.hi() - range.lo()) * 2.0 - 1.0).clamp(-1.0, 1.0)
            }
        }
    }

    /// Inverse of [`QuantScheme::normalize`] (without clamping, so that bit
    /// errors can push values slightly outside the clean range, exactly as
    /// on hardware).
    fn denormalize(&self, n: f32, range: QuantRange) -> f32 {
        match self.range_mode {
            RangeMode::Symmetric => n * range.hi(),
            RangeMode::Asymmetric => (n + 1.0) * 0.5 * (range.hi() - range.lo()) + range.lo(),
        }
    }

    /// A short human-readable description used in experiment tables.
    pub fn describe(&self) -> String {
        let g = match self.granularity {
            Granularity::Global => "global",
            Granularity::PerTensor => "per-layer",
        };
        let r = match self.range_mode {
            RangeMode::Symmetric => "sym",
            RangeMode::Asymmetric => "asym",
        };
        let i = match self.repr {
            IntegerRepr::Signed => "signed",
            IntegerRepr::Unsigned => "unsigned",
        };
        let o = match self.rounding {
            Rounding::Truncate => "trunc",
            Rounding::Nearest => "round",
        };
        format!("{}b {g}/{r}/{i}/{o}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_papers_lattice() {
        let normal = QuantScheme::normal(8);
        assert_eq!(normal.granularity, Granularity::PerTensor);
        assert_eq!(normal.range_mode, RangeMode::Symmetric);
        assert_eq!(normal.repr, IntegerRepr::Signed);
        assert_eq!(normal.rounding, Rounding::Truncate);

        let rq = QuantScheme::rquant(8);
        assert_eq!(rq.range_mode, RangeMode::Asymmetric);
        assert_eq!(rq.repr, IntegerRepr::Unsigned);
        assert_eq!(rq.rounding, Rounding::Nearest);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_one_bit() {
        let _ = QuantScheme::rquant(1);
    }

    #[test]
    fn live_mask_matches_bits() {
        assert_eq!(QuantScheme::rquant(8).live_mask(), 0xFF);
        assert_eq!(QuantScheme::rquant(4).live_mask(), 0x0F);
        assert_eq!(QuantScheme::rquant(2).live_mask(), 0x03);
    }

    #[test]
    fn round_trip_error_bounded_by_delta() {
        for bits in [2u8, 3, 4, 8] {
            for scheme in
                [QuantScheme::rquant(bits), QuantScheme::normal(bits), QuantScheme::symmetric(bits)]
            {
                let weights: Vec<f32> = (0..101).map(|i| -0.5 + i as f32 * 0.01).collect();
                let q = scheme.quantize(&weights);
                let back = q.dequantize();
                let range = scheme.range_for(&weights);
                let span = range.hi() - range.lo();
                // Effective step in weight units.
                let delta = span / (2.0 * scheme.max_level() as f32);
                let bound = match scheme.rounding {
                    Rounding::Nearest => delta * 0.5 + 1e-6,
                    Rounding::Truncate => delta + 1e-6,
                };
                for (w, b) in weights.iter().zip(&back) {
                    assert!(
                        (w - b).abs() <= bound,
                        "{}: |{} - {}| > {}",
                        scheme.describe(),
                        w,
                        b,
                        bound
                    );
                }
            }
        }
    }

    #[test]
    fn zero_is_representable_in_symmetric_schemes() {
        let scheme = QuantScheme::symmetric(8);
        let weights = [0.0f32, 0.3, -0.3];
        let q = scheme.quantize(&weights);
        assert_eq!(q.dequantize()[0], 0.0);
    }

    #[test]
    fn constant_tensor_does_not_divide_by_zero() {
        for scheme in [QuantScheme::rquant(8), QuantScheme::normal(8)] {
            let weights = [0.25f32; 10];
            let q = scheme.quantize(&weights);
            for b in q.dequantize() {
                assert!(b.is_finite());
                assert!((b - 0.25).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn truncation_biases_toward_zero() {
        let scheme = QuantScheme::normal(4);
        // With range [-1, 1], delta = 1/7. A weight of 0.9*delta truncates to 0.
        let delta = 1.0 / 7.0;
        let weights = [1.0f32, 0.9 * delta, -0.9 * delta];
        let q = scheme.quantize(&weights);
        let back = q.dequantize();
        assert_eq!(back[1], 0.0);
        assert_eq!(back[2], 0.0);
        // Rounding keeps them at +-delta.
        let q2 = QuantScheme::symmetric(4).quantize(&weights);
        let back2 = q2.dequantize();
        assert!((back2[1] - delta).abs() < 1e-6);
        assert!((back2[2] + delta).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_weights() {
        let _ = QuantScheme::rquant(8).quantize(&[0.5, f32::NAN, -0.5]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_infinite_weights_with_explicit_range() {
        let scheme = QuantScheme::normal(8);
        let _ = scheme.quantize_with_range(&[f32::INFINITY], QuantRange::new(-1.0, 1.0));
    }

    /// Exhaustive decode pin: all 256 words × {signed, unsigned} × {4, 8}
    /// bits, against independent reference arithmetic. The int8 inference
    /// kernel reuses exactly these semantics, so this is the contract both
    /// paths decode by.
    #[test]
    fn decode_level_pins_all_words() {
        for bits in [4u8, 8] {
            for repr in [IntegerRepr::Signed, IntegerRepr::Unsigned] {
                let scheme = QuantScheme::new(
                    Granularity::PerTensor,
                    RangeMode::Asymmetric,
                    repr,
                    Rounding::Nearest,
                    bits,
                );
                let level = (1i32 << (bits - 1)) - 1;
                for word in 0u16..=255 {
                    let word = word as u8;
                    let live = (word as u32) & ((1u32 << bits) - 1);
                    // Independent reference: interpret the low `bits` bits.
                    let expected = match repr {
                        // Two's complement on `bits` bits.
                        IntegerRepr::Signed => {
                            if live >= (1u32 << (bits - 1)) {
                                live as i32 - (1i32 << bits)
                            } else {
                                live as i32
                            }
                        }
                        IntegerRepr::Unsigned => live as i32 - level,
                    };
                    assert_eq!(
                        scheme.decode_level(word),
                        expected,
                        "{}: word {word:#010b}",
                        scheme.describe()
                    );
                }
            }
        }
    }

    /// `dequantize_word` must stay exactly `denormalize(decode_level / L)` —
    /// the float goldens depend on this composition bit-for-bit.
    #[test]
    fn dequantize_word_is_decode_then_denormalize_bitwise() {
        let range = QuantRange::new(-0.75, 0.5);
        for bits in [4u8, 8] {
            for scheme in [
                QuantScheme::rquant(bits),
                QuantScheme::normal(bits),
                QuantScheme::asymmetric_signed(bits),
                QuantScheme::symmetric(bits),
            ] {
                let level = scheme.max_level();
                for word in 0u16..=255 {
                    let word = word as u8;
                    let q = scheme.decode_level(word);
                    let expected = scheme.denormalize(q as f32 / level as f32, range);
                    assert_eq!(
                        scheme.dequantize_word(word, range).to_bits(),
                        expected.to_bits(),
                        "{}: word {word:#04x}",
                        scheme.describe()
                    );
                }
            }
        }
    }

    /// The unsigned all-ones word (`2^m - 1`, level `L + 1`) is dead on the
    /// clean path: quantization clamps to `[-L, L]`, i.e. words `[0, 2L]`.
    /// It is only reachable via bit errors.
    #[test]
    fn unsigned_top_code_point_is_unreachable_cleanly() {
        for bits in [2u8, 4, 8] {
            for scheme in [QuantScheme::rquant(bits), QuantScheme::asymmetric_unsigned(bits)] {
                let top = scheme.live_mask();
                let weights: Vec<f32> = (0..4001).map(|i| (i - 2000) as f32 / 1000.0).collect();
                let q = scheme.quantize(&weights);
                assert!(
                    q.words().iter().all(|&w| w != top),
                    "{}: clean quantization produced the dead word {top:#04x}",
                    scheme.describe()
                );
                // And yet it decodes, one level above the clean maximum.
                assert_eq!(scheme.decode_level(top), scheme.max_level() + 1);
            }
        }
    }

    /// `weight_affine` agrees with the float decode within a few ulps over
    /// every word (it is the same algebra with one different association).
    #[test]
    fn weight_affine_matches_float_decode_within_tolerance() {
        let range = QuantRange::new(-0.6, 1.1);
        for bits in [2u8, 4, 8] {
            for scheme in [
                QuantScheme::rquant(bits),
                QuantScheme::normal(bits),
                QuantScheme::symmetric(bits),
                QuantScheme::asymmetric_signed(bits),
            ] {
                let (scale, offset) = scheme.weight_affine(range);
                for word in 0u16..=255 {
                    let word = word as u8;
                    let via_affine = scale * scheme.decode_level(word) as f32 + offset;
                    let via_float = scheme.dequantize_word(word, range);
                    assert!(
                        (via_affine - via_float).abs() <= 1e-6 * via_float.abs().max(1.0),
                        "{}: word {word:#04x}: {via_affine} vs {via_float}",
                        scheme.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(QuantScheme::rquant(4).describe(), "4b per-layer/asym/unsigned/round");
        assert_eq!(QuantScheme::eq1_global(8).describe(), "8b global/sym/signed/trunc");
    }

    #[test]
    fn keys_are_stable_and_distinct_across_the_lattice() {
        // Pinned: zoo cache filenames and sweep-store cell hashes embed
        // these keys, so changing the encoding invalidates on-disk state.
        assert_eq!(QuantScheme::rquant(8).key(), "q8laun");
        assert_eq!(QuantScheme::eq1_global(8).key(), "q8gsit");
        let lattice = [
            QuantScheme::eq1_global(8),
            QuantScheme::normal(8),
            QuantScheme::asymmetric_signed(8),
            QuantScheme::asymmetric_unsigned(8),
            QuantScheme::rquant(8),
            QuantScheme::symmetric(8),
            QuantScheme::rquant(4),
        ];
        for (i, a) in lattice.iter().enumerate() {
            for b in &lattice[i + 1..] {
                assert_ne!(a.key(), b.key(), "{} vs {}", a.describe(), b.describe());
            }
        }
    }
}
