//! Whole-model quantization with a linear weight-to-memory mapping.

use bitrobust_biterror::ErrorInjector;
use bitrobust_nn::Model;
use bitrobust_quant::{Granularity, QuantRange, QuantScheme, QuantizedTensor};
use bitrobust_tensor::Tensor;

/// The quantized image of a model's parameters: one [`QuantizedTensor`] per
/// parameter tensor plus each tensor's word offset in the network's global,
/// linearized weight vector.
///
/// The offsets realize the paper's linear weight-to-memory mapping (Sec. 3):
/// injecting errors tensor-by-tensor with the running offset is equivalent
/// to injecting into one contiguous memory image.
///
/// # Examples
///
/// ```
/// use bitrobust_biterror::UniformChip;
/// use bitrobust_core::QuantizedModel;
/// use bitrobust_nn::{Linear, Model, Sequential};
/// use bitrobust_quant::QuantScheme;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(8, 4, &mut rng));
/// let mut model = Model::new("demo", net);
///
/// let mut q = QuantizedModel::quantize(&mut model, QuantScheme::rquant(8));
/// q.inject(&UniformChip::new(1).at_rate(0.01));
/// q.write_to(&mut model); // model now runs on perturbed weights
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    scheme: QuantScheme,
    tensors: Vec<QuantizedTensor>,
    offsets: Vec<usize>,
    shapes: Vec<Vec<usize>>,
    total_weights: usize,
}

impl QuantizedModel {
    /// Quantizes all parameters of `model` under `scheme`. Needs only
    /// shared access, so snapshots can be taken from models that are
    /// concurrently serving evaluation workers.
    ///
    /// For [`Granularity::Global`] schemes a single range spanning every
    /// parameter is computed first; per-tensor schemes adapt each tensor's
    /// range individually ("the quantization range always adapts to the
    /// weight range at hand", Sec. 4.2).
    pub fn quantize(model: &Model, scheme: QuantScheme) -> Self {
        let params = model.param_tensors();
        let global_range: Option<QuantRange> = match scheme.granularity {
            Granularity::Global => {
                let mut merged: Option<QuantRange> = None;
                for t in &params {
                    let r = scheme.range_for(t.data());
                    merged = Some(match merged {
                        Some(m) => m.merge(&r),
                        None => r,
                    });
                }
                merged
            }
            Granularity::PerTensor => None,
        };

        let mut tensors = Vec::with_capacity(params.len());
        let mut offsets = Vec::with_capacity(params.len());
        let mut shapes = Vec::with_capacity(params.len());
        let mut offset = 0usize;
        for t in &params {
            let q = match global_range {
                Some(r) => scheme.quantize_with_range(t.data(), r),
                None => scheme.quantize(t.data()),
            };
            offsets.push(offset);
            offset += q.len();
            shapes.push(t.shape().to_vec());
            tensors.push(q);
        }
        Self { scheme, tensors, offsets, shapes, total_weights: offset }
    }

    /// The scheme used.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Total number of quantized weights `W`.
    pub fn total_weights(&self) -> usize {
        self.total_weights
    }

    /// The per-tensor quantized buffers.
    pub fn tensors(&self) -> &[QuantizedTensor] {
        &self.tensors
    }

    /// Mutable access to the per-tensor buffers (for error correction and
    /// targeted manipulation).
    pub fn tensors_mut(&mut self) -> &mut [QuantizedTensor] {
        &mut self.tensors
    }

    /// Injects bit errors into a single parameter tensor only (used for the
    /// per-layer vulnerability analysis). The injector still sees the
    /// tensor's global offset, so patterns stay consistent with whole-model
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn inject_tensor(&mut self, index: usize, injector: &impl ErrorInjector) {
        let bits = self.scheme.bits();
        let offset = self.offsets[index];
        injector.inject(self.tensors[index].words_mut(), bits, offset);
    }

    /// Injects bit errors across the whole linearized weight image.
    pub fn inject(&mut self, injector: &impl ErrorInjector) {
        let bits = self.scheme.bits();
        for (q, &offset) in self.tensors.iter_mut().zip(&self.offsets) {
            injector.inject(q.words_mut(), bits, offset);
        }
    }

    /// Dequantizes into the model's parameters (the `w_q = Q⁻¹(v)` of
    /// Alg. 1).
    ///
    /// # Panics
    ///
    /// Panics if `model`'s parameter shapes differ from the quantization
    /// snapshot.
    pub fn write_to(&self, model: &mut Model) {
        let mut index = 0;
        model.visit_params(&mut |p| {
            assert!(index < self.tensors.len(), "model has more parameters than snapshot");
            assert_eq!(
                p.value().shape(),
                &self.shapes[index][..],
                "parameter {index} shape mismatch"
            );
            self.tensors[index].dequantize_into(p.value_mut().data_mut());
            index += 1;
        });
        assert_eq!(index, self.tensors.len(), "model has fewer parameters than snapshot");
    }

    /// Dequantizes all tensors into fresh buffers (for analysis).
    pub fn dequantize_tensors(&self) -> Vec<Tensor> {
        self.tensors
            .iter()
            .zip(&self.shapes)
            .map(|(q, shape)| Tensor::from_vec(shape.clone(), q.dequantize()))
            .collect()
    }

    /// Total number of differing live bits vs another snapshot (diagnostic).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different structure.
    pub fn hamming_distance(&self, other: &QuantizedModel) -> usize {
        assert_eq!(self.tensors.len(), other.tensors.len(), "snapshot structure mismatch");
        self.tensors.iter().zip(&other.tensors).map(|(a, b)| a.hamming_distance(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_biterror::UniformChip;
    use bitrobust_nn::{Linear, Mode, Relu, Sequential};
    use rand::SeedableRng;

    fn toy_model(seed: u64) -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Linear::new(6, 12, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(12, 4, &mut rng));
        Model::new("toy", net)
    }

    #[test]
    fn quantize_write_round_trip_is_close() {
        let mut model = toy_model(1);
        let before = model.param_tensors();
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        assert_eq!(q.total_weights(), 6 * 12 + 12 + 12 * 4 + 4);
        q.write_to(&mut model);
        let after = model.param_tensors();
        for (b, a) in before.iter().zip(&after) {
            let span = b.max() - b.min();
            for (x, y) in b.data().iter().zip(a.data()) {
                assert!((x - y).abs() <= span / 254.0 + 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn global_scheme_shares_one_range() {
        let model = toy_model(2);
        let q = QuantizedModel::quantize(&model, QuantScheme::eq1_global(8));
        let first = q.tensors()[0].range();
        for t in q.tensors() {
            assert_eq!(t.range(), first, "global granularity must share the range");
        }
    }

    #[test]
    fn per_tensor_scheme_adapts_ranges() {
        let mut model = toy_model(3);
        // Scale one parameter up so ranges must differ.
        model.visit_params(&mut |p| {
            if p.value().shape() == [4] {
                p.value_mut().map_inplace(|v| v + 3.0);
            }
        });
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let ranges: Vec<_> = q.tensors().iter().map(|t| t.range()).collect();
        assert!(ranges.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn inject_changes_outputs_consistently_with_offsets() {
        let model = toy_model(4);
        let q0 = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut q1 = q0.clone();
        let mut q2 = q0.clone();
        let chip = UniformChip::new(9);
        q1.inject(&chip.at_rate(0.05));
        q2.inject(&chip.at_rate(0.05));
        // Same chip, same rate -> identical pattern.
        assert_eq!(q1.hamming_distance(&q2), 0);
        // Subset property at the model level.
        let mut q3 = q0.clone();
        q3.inject(&chip.at_rate(0.01));
        let flips_small = q0.hamming_distance(&q3);
        let flips_large = q0.hamming_distance(&q1);
        assert!(flips_small < flips_large);
    }

    #[test]
    fn perturbed_model_changes_predictions_gracefully() {
        let mut model = toy_model(5);
        let x = bitrobust_tensor::Tensor::rand_uniform(
            &[4, 6],
            -1.0,
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(0),
        );
        let clean_out = model.forward(&x, Mode::Eval);
        let mut q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        q.inject(&UniformChip::new(1).at_rate(0.1));
        q.write_to(&mut model);
        let dirty_out = model.forward(&x, Mode::Eval);
        assert_eq!(clean_out.shape(), dirty_out.shape());
        assert!(dirty_out.data().iter().all(|v| v.is_finite()));
        assert_ne!(clean_out, dirty_out);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn write_to_rejects_mismatched_model() {
        let model = toy_model(6);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut other_net = Sequential::new();
        other_net.push(Linear::new(5, 12, &mut rng));
        other_net.push(Linear::new(12, 4, &mut rng));
        let mut other = Model::new("other", other_net);
        q.write_to(&mut other);
    }
}
