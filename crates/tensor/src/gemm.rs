//! Packed, cache-blocked, register-tiled GEMM.
//!
//! One kernel serves every matmul variant in the workspace: the operands are
//! described by (row, column) strides, so transposition is absorbed when the
//! panels are packed and there is a single inner loop to keep fast. The
//! blocking follows the classic GotoBLAS/BLIS decomposition:
//!
//! ```text
//!         NC                 packed B panel (KC x NC, column tiles of NR)
//!       ┌────┐                 ┌NR┬NR┬NR┬─┐
//!     K │ B  │   KC rows  →    │  │  │  │ │   reused across all of A
//!       └────┘                 └──┴──┴──┴─┘
//!   M ┌─┐        packed A block (MC x KC, row panels of MR)
//!  MC │A│    →   ┌────────┐
//!     └─┘     MR ├────────┤    each MR x NR tile of C is held in
//!                └────────┘    registers while the KC loop runs
//! ```
//!
//! * [`KC`]-long slices of the K dimension are packed once per (`jc`, `pc`)
//!   block: B into column panels of [`NR`], A into row panels of [`MR`],
//!   zero-padded at the edges so the microkernel never branches on shape.
//! * The microkernel keeps an `MR x NR` accumulator tile in registers and
//!   runs an unrolled multiply-add over the packed panels — a form LLVM
//!   autovectorizes without `-ffast-math` because every C element keeps its
//!   own accumulator.
//! * The tile is **loaded from C and stored back** (rather than computed in
//!   a scratch tile and added), so each output element sees its `K`
//!   contributions in strictly ascending order no matter how the M/N space
//!   is tiled. See [Determinism](#determinism).
//!
//! # Determinism
//!
//! The reduction shape of this kernel is part of the workspace's numerical
//! contract, exactly like `TRAIN_SHARDS`: every `C[i, j]` is accumulated in
//! strictly ascending `k` order with a single scalar accumulator, so results
//! are byte-identical across thread counts, shapes of the surrounding
//! blocking ([`MR`]/[`NR`]/[`MC`]/[`KC`]/[`NC`]), and machines. Changing the
//! *order* of the `pc` (K-blocking) loop or splitting accumulators in the
//! microkernel would change bits and requires regenerating the goldens in
//! `crates/core/tests/golden.rs`.

use std::cell::RefCell;

/// Rows of the register microkernel tile.
pub const MR: usize = 4;
/// Columns of the register microkernel tile.
pub const NR: usize = 8;
/// Rows of a packed A block (multiple of [`MR`]).
pub const MC: usize = 64;
/// Depth of a packed A/B block (the K-dimension slice length).
pub const KC: usize = 256;
/// Columns of a packed B block (multiple of [`NR`]).
pub const NC: usize = 256;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

thread_local! {
    /// Per-worker packed-panel scratch (A block, B block), reused across
    /// calls like conv's im2col scratch.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A GEMM operand described by its buffer and element strides.
///
/// The logical matrix element `(r, c)` lives at `buf[r * rs + c * cs]`;
/// a transposed view is expressed by swapping the strides, so the packed
/// kernel absorbs every transposition at pack time.
#[derive(Clone, Copy, Debug)]
pub struct GemmOperand<'a> {
    buf: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> GemmOperand<'a> {
    /// A row-major matrix with contiguous rows of length `cols`.
    pub fn row_major(buf: &'a [f32], cols: usize) -> Self {
        Self { buf, rs: cols, cs: 1 }
    }

    /// The transpose of a row-major matrix whose *stored* rows have length
    /// `stored_cols` (i.e. the logical matrix is `stored` read column-wise).
    pub fn transposed(buf: &'a [f32], stored_cols: usize) -> Self {
        Self { buf, rs: 1, cs: stored_cols }
    }

    /// A row-major view with an explicit row stride (`ld >= cols`), for
    /// operating on a sub-block of a larger matrix.
    pub fn strided(buf: &'a [f32], ld: usize) -> Self {
        Self { buf, rs: ld, cs: 1 }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.buf[r * self.rs + c * self.cs]
    }

    /// Panics unless every element of an `rows x cols` view is in bounds.
    fn check(&self, rows: usize, cols: usize) {
        if rows > 0 && cols > 0 {
            let last = (rows - 1) * self.rs + (cols - 1) * self.cs;
            assert!(last < self.buf.len(), "gemm operand out of bounds: {rows}x{cols}");
        }
    }
}

/// `C += A · B` where `C[i, j]` lives at `c[i * ldc + j]`, `A` is `m x k`,
/// and `B` is `k x n`. This is the single packed path behind [`matmul`],
/// [`matmul_nt`], [`matmul_tn`] and the fused im2col convolution.
///
/// [`matmul`]: crate::matmul
/// [`matmul_nt`]: crate::matmul_nt
/// [`matmul_tn`]: crate::matmul_tn
///
/// # Panics
///
/// Panics if any operand (including `c` with row stride `ldc`) is too short
/// for the given dimensions, or if `ldc < n`.
pub fn gemm(
    c: &mut [f32],
    ldc: usize,
    a: GemmOperand,
    b: GemmOperand,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldc >= n, "ldc ({ldc}) must be >= n ({n})");
    if m > 0 && n > 0 {
        let last = (m - 1) * ldc + (n - 1);
        assert!(last < c.len(), "gemm output out of bounds: {m}x{n} with ldc {ldc}");
    }
    if k == 0 {
        return; // accumulate semantics: nothing to add
    }
    a.check(m, k);
    b.check(k, n);
    let use_avx = avx_available();
    bitrobust_obs::span!("gemm.f32");

    PACK_SCRATCH.with(|scratch| {
        let (a_buf, b_buf) = &mut *scratch.borrow_mut();
        a_buf.resize(MC * KC, 0.0);
        b_buf.resize(KC * NC, 0.0);

        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let nr_tiles = nc.div_ceil(NR);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                {
                    bitrobust_obs::span!("gemm.pack_b");
                    pack_b(b_buf, b, pc, jc, kc, nc);
                }
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    let mr_tiles = mc.div_ceil(MR);
                    pack_a(a_buf, a, ic, pc, mc, kc);
                    for jr in 0..nr_tiles {
                        let nr_eff = NR.min(nc - jr * NR);
                        let b_panel = &b_buf[jr * kc * NR..(jr + 1) * kc * NR];
                        for ir in 0..mr_tiles {
                            let mr_eff = MR.min(mc - ir * MR);
                            let a_panel = &a_buf[ir * kc * MR..(ir + 1) * kc * MR];
                            let c_off = (ic + ir * MR) * ldc + jc + jr * NR;
                            let c_tile = &mut c[c_off..];
                            microkernel(use_avx, c_tile, ldc, a_panel, b_panel, mr_eff, nr_eff);
                        }
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

/// Packs the `mc x kc` block of `A` at `(ic, pc)` into row panels of [`MR`]:
/// `panel[p * MR + i] = A[ic + ir*MR + i, pc + p]`, zero-padded past `mc`.
///
/// The two stride patterns that occur in practice (contiguous rows for
/// untransposed A, contiguous columns for a pack-time transpose) get
/// branch-free inner loops; anything else falls back to a generic gather.
fn pack_a(buf: &mut [f32], a: GemmOperand, ic: usize, pc: usize, mc: usize, kc: usize) {
    let mr_tiles = mc.div_ceil(MR);
    for ir in 0..mr_tiles {
        let panel = &mut buf[ir * kc * MR..(ir + 1) * kc * MR];
        let rows = MR.min(mc - ir * MR);
        let i0 = ic + ir * MR;
        if rows < MR {
            panel.fill(0.0);
        }
        if a.cs == 1 {
            // Rows of A are contiguous: interleave `rows` row slices.
            for i in 0..rows {
                let src = &a.buf[(i0 + i) * a.rs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * MR + i] = v;
                }
            }
        } else if a.rs == 1 {
            // A is a pack-time transpose: each k-slice is contiguous.
            for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                let src = &a.buf[(pc + p) * a.cs + i0..][..rows];
                chunk[..rows].copy_from_slice(src);
            }
        } else {
            for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                for (i, slot) in chunk.iter_mut().enumerate().take(rows) {
                    *slot = a.at(i0 + i, pc + p);
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `B` at `(pc, jc)` into column panels of
/// [`NR`]: `panel[p * NR + j] = B[pc + p, jc + jr*NR + j]`, zero-padded.
fn pack_b(buf: &mut [f32], b: GemmOperand, pc: usize, jc: usize, kc: usize, nc: usize) {
    let nr_tiles = nc.div_ceil(NR);
    for jr in 0..nr_tiles {
        let panel = &mut buf[jr * kc * NR..(jr + 1) * kc * NR];
        let cols = NR.min(nc - jr * NR);
        let j0 = jc + jr * NR;
        if cols < NR {
            panel.fill(0.0);
        }
        if b.cs == 1 {
            // Rows of B are contiguous: straight row copies.
            for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &b.buf[(pc + p) * b.rs + j0..][..cols];
                chunk[..cols].copy_from_slice(src);
            }
        } else if b.rs == 1 {
            // B is a pack-time transpose: each column is contiguous.
            for j in 0..cols {
                let src = &b.buf[(j0 + j) * b.cs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + j] = v;
                }
            }
        } else {
            for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                for (j, slot) in chunk.iter_mut().enumerate().take(cols) {
                    *slot = b.at(pc + p, j0 + j);
                }
            }
        }
    }
}

/// The register-tiled inner loop: loads the valid `mr_eff x nr_eff` corner
/// of the C tile, accumulates `kc` outer products from the packed panels
/// (fully unrolled over the `MR x NR` tile so LLVM vectorizes the `j` lanes),
/// and stores the corner back. Loading C up front is what keeps each output
/// element's reduction strictly `k`-ascending across KC blocks.
#[inline(always)]
fn microkernel_body(
    c: &mut [f32],
    ldc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr_eff) {
        row[..nr_eff].copy_from_slice(&c[i * ldc..i * ldc + nr_eff]);
    }
    for (a_k, b_k) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let a_k: &[f32; MR] = a_k.try_into().expect("panel chunk");
        let b_k: &[f32; NR] = b_k.try_into().expect("panel chunk");
        for (i, row) in acc.iter_mut().enumerate() {
            let a_ip = a_k[i];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += a_ip * b_k[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr_eff) {
        c[i * ldc..i * ldc + nr_eff].copy_from_slice(&row[..nr_eff]);
    }
}

/// Baseline-ISA compilation of [`microkernel_body`].
///
/// `inline(never)`: compiled as a standalone function the autovectorizer
/// reliably turns into packed SIMD; inlined into the blocking loops LLVM
/// falls back to scalar code (measured 4x slower).
#[inline(never)]
fn microkernel_portable(
    c: &mut [f32],
    ldc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    mr_eff: usize,
    nr_eff: usize,
) {
    microkernel_body(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

/// AVX compilation of the *same* [`microkernel_body`], dispatched at runtime.
///
/// Bit-safety: the body is identical scalar Rust — wider vectors just carry
/// more of the independent per-element accumulators per instruction, and FMA
/// contraction is never enabled — so this path produces byte-identical
/// results to [`microkernel_portable`] and the determinism contract holds
/// across machines with and without AVX.
///
/// # Safety
///
/// `#[target_feature]` makes this fn unsafe to call: the caller must prove
/// the CPU supports AVX first. The only call site gates on
/// [`avx_available`] (`is_x86_feature_detected!("avx")`); executing it on a
/// non-AVX CPU would be an illegal-instruction fault, not a wrong answer.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
fn microkernel_avx(
    c: &mut [f32],
    ldc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    mr_eff: usize,
    nr_eff: usize,
) {
    microkernel_body(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

/// Whether the AVX compilation of the microkernel can be used.
#[inline]
fn avx_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Invokes the fastest available microkernel compilation.
#[inline]
fn microkernel(
    use_avx: bool,
    c: &mut [f32],
    ldc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    mr_eff: usize,
    nr_eff: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx {
        // SAFETY: `use_avx` is only true when `is_x86_feature_detected!`
        // confirmed AVX support at runtime.
        unsafe { microkernel_avx(c, ldc, a_panel, b_panel, mr_eff, nr_eff) };
        return;
    }
    let _ = use_avx;
    microkernel_portable(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-accumulator, k-ascending triple loop: the packed kernel must
    /// match this *bit for bit* (same reduction shape).
    fn sequential_gemm(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values; no RNG dependency needed.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (x % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_sequential_reduction_bit_for_bit() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (MC + 5, 2 * KC + 1, NC + 9),
            (3, 700, 2),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = fill(m * n, 3);
            let mut c_ref = c.clone();
            gemm(&mut c, n, GemmOperand::row_major(&a, k), GemmOperand::row_major(&b, n), m, k, n);
            sequential_gemm(&mut c_ref, &a, &b, m, k, n);
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bits diverged at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn transposed_operands_match_explicit_transpose() {
        let (m, k, n) = (7, 13, 9);
        let a = fill(m * k, 4); // stored [m, k]
        let b = fill(k * n, 5); // stored [k, n]
        let at: Vec<f32> = {
            // stored [k, m]
            let mut t = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        };
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(&mut c1, n, GemmOperand::row_major(&a, k), GemmOperand::row_major(&b, n), m, k, n);
        gemm(&mut c2, n, GemmOperand::transposed(&at, m), GemmOperand::row_major(&b, n), m, k, n);
        assert_eq!(c1, c2, "pack-time transposition must be exact");
    }

    #[test]
    fn strided_output_leaves_gaps_untouched() {
        let (m, k, n, ldc) = (3, 5, 4, 10);
        let a = fill(m * k, 6);
        let b = fill(k * n, 7);
        let mut c = vec![9.0; m * ldc];
        gemm(&mut c, ldc, GemmOperand::row_major(&a, k), GemmOperand::row_major(&b, n), m, k, n);
        let mut dense = vec![9.0; m * n];
        sequential_gemm(&mut dense, &a, &b, m, k, n);
        for i in 0..m {
            assert_eq!(&c[i * ldc..i * ldc + n], &dense[i * n..(i + 1) * n]);
            assert!(c[i * ldc + n..(i + 1) * ldc].iter().all(|&v| v == 9.0), "gap clobbered");
        }
    }

    #[test]
    fn degenerate_dims_are_no_ops_or_zero_adds() {
        let mut c = vec![1.0; 6];
        gemm(&mut c, 3, GemmOperand::row_major(&[], 0), GemmOperand::row_major(&[], 3), 2, 0, 3);
        assert_eq!(c, vec![1.0; 6], "k == 0 must leave C unchanged (accumulate semantics)");
        gemm(&mut c, 3, GemmOperand::row_major(&[], 5), GemmOperand::row_major(&[], 3), 0, 5, 3);
        assert_eq!(c, vec![1.0; 6], "m == 0 must be a no-op");
        let a = fill(10, 8);
        gemm(&mut c, 0, GemmOperand::row_major(&a, 5), GemmOperand::row_major(&[], 0), 2, 5, 0);
        assert_eq!(c, vec![1.0; 6], "n == 0 must be a no-op");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_short_operands() {
        let mut c = vec![0.0; 4];
        let a = vec![0.0; 3]; // needs 4 for 2x2
        let b = vec![0.0; 4];
        gemm(&mut c, 2, GemmOperand::row_major(&a, 2), GemmOperand::row_major(&b, 2), 2, 2, 2);
    }
}
