//! Compatibility suite for the unified [`Campaign`] builder: every one of
//! the seven deprecated free-function entry points must stay a thin,
//! **byte-identical** wrapper over its builder spelling. CI runs this file
//! explicitly so a wrapper drifting off the builder (different defaults,
//! different wave policy, a dropped callback) fails the build rather than
//! silently diverging for downstream users mid-migration.

#![allow(deprecated)]

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    build, eval_cells_streaming_with, eval_images, eval_images_serial, eval_images_sized,
    eval_images_streaming, eval_images_streaming_with, eval_images_with, ArchKind, Campaign,
    EvalResult, ItemSizing, NormKind, QuantizedModel, EVAL_BATCH,
};
use bitrobust_data::{Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn setup() -> (Model, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let (_, test) = SynthDataset::Mnist.generate(0);
    (built.model, test)
}

fn images(model: &Model, n: usize) -> Vec<QuantizedModel> {
    let q0 = QuantizedModel::quantize(model, QuantScheme::rquant(8));
    (0..n)
        .map(|c| {
            let mut q = q0.clone();
            q.inject(&UniformChip::new(1000 + c as u64).at_rate(0.02));
            q
        })
        .collect()
}

/// `make_image` shared by the lazy wrappers and their builder spellings.
fn lazy_image(model: &Model, i: usize) -> QuantizedModel {
    let mut q = QuantizedModel::quantize(model, QuantScheme::rquant(8));
    q.inject(&UniformChip::new(2000 + i as u64).at_rate(0.02));
    q
}

#[test]
fn eval_images_matches_builder() {
    let (model, test) = setup();
    let imgs = images(&model, 4);
    let wrapper = eval_images(&model, &imgs, &test, EVAL_BATCH, Mode::Eval);
    let builder = Campaign::new(&model, &test).batch_size(EVAL_BATCH).mode(Mode::Eval).run(&imgs);
    assert_eq!(wrapper, builder);
}

#[test]
fn eval_images_sized_matches_builder() {
    let (model, test) = setup();
    let imgs = images(&model, 4);
    for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
        let wrapper = eval_images_sized(&model, &imgs, &test, EVAL_BATCH, Mode::Eval, sizing);
        let builder = Campaign::new(&model, &test).sizing(sizing).run(&imgs);
        assert_eq!(wrapper, builder, "{sizing:?}");
    }
}

#[test]
fn eval_images_with_matches_builder() {
    let (model, test) = setup();
    let wrapper =
        eval_images_with(&model, 4, |i| lazy_image(&model, i), &test, EVAL_BATCH, Mode::Eval);
    let builder = Campaign::new(&model, &test).run_lazy(4, |i| lazy_image(&model, i));
    assert_eq!(wrapper, builder);
}

#[test]
fn eval_images_serial_matches_builder() {
    let (model, test) = setup();
    let imgs = images(&model, 4);
    let wrapper = eval_images_serial(&model, &imgs, &test, EVAL_BATCH, Mode::Eval);
    let builder = Campaign::new(&model, &test).serial().run(&imgs);
    assert_eq!(wrapper, builder);
}

#[test]
fn eval_images_streaming_matches_builder() {
    let (model, test) = setup();
    let imgs = images(&model, 4);
    let mut wrapper_cells = Vec::new();
    let wrapper = eval_images_streaming(&model, &imgs, &test, EVAL_BATCH, Mode::Eval, |i, r| {
        wrapper_cells.push((i, *r))
    });
    let mut builder_cells = Vec::new();
    let builder =
        Campaign::new(&model, &test).on_cell(|i, r| builder_cells.push((i, *r))).run(&imgs);
    assert_eq!(wrapper, builder);
    assert_eq!(wrapper_cells, builder_cells, "streamed cells must match exactly");
}

#[test]
fn eval_images_streaming_with_matches_builder() {
    let (model, test) = setup();
    let mut wrapper_cells = Vec::new();
    let wrapper = eval_images_streaming_with(
        &model,
        4,
        |i| lazy_image(&model, i),
        &test,
        EVAL_BATCH,
        Mode::Eval,
        |i, r| wrapper_cells.push((i, *r)),
    );
    let mut builder_cells = Vec::new();
    let builder = Campaign::new(&model, &test)
        .on_cell(|i, r| builder_cells.push((i, *r)))
        .run_lazy(4, |i| lazy_image(&model, i));
    assert_eq!(wrapper, builder);
    assert_eq!(wrapper_cells, builder_cells);
}

#[test]
fn eval_cells_streaming_with_matches_builder() {
    let (model_a, test) = setup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model_b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let templates = [&model_a, &model_b];
    let make = |templates: &[&Model; 2], i: usize| -> (usize, QuantizedModel) {
        let t = i % 2;
        (t, lazy_image(templates[t], i))
    };

    let mut wrapper_cells = Vec::new();
    let wrapper = eval_cells_streaming_with(
        &templates,
        4,
        |i| make(&templates, i),
        &test,
        EVAL_BATCH,
        Mode::Eval,
        |i, r| wrapper_cells.push((i, *r)),
    );
    let mut builder_cells = Vec::new();
    let builder = Campaign::multi(&templates, &test)
        .on_cell(|i, r| builder_cells.push((i, *r)))
        .run_cells(4, |i| make(&templates, i));
    assert_eq!(wrapper, builder);
    assert_eq!(wrapper_cells, builder_cells);
}

/// The migration contract in one place: every path — eager, lazy, serial,
/// streaming — agrees byte-for-byte on the same cells, so any wrapper can
/// be rewritten to any builder spelling without changing results.
#[test]
fn all_entry_points_agree_on_the_same_cells() {
    let (model, test) = setup();
    let imgs = images(&model, 4);
    let reference: Vec<EvalResult> = Campaign::new(&model, &test).serial().run(&imgs);
    let eager = Campaign::new(&model, &test).run(&imgs);
    let lazy = Campaign::new(&model, &test).run_lazy(4, |i| imgs[i].clone());
    let streamed = Campaign::new(&model, &test).on_cell(|_, _| {}).run(&imgs);
    assert_eq!(eager, reference);
    assert_eq!(lazy, reference);
    assert_eq!(streamed, reference);
}
