//! A disk-backed zoo of trained models.
//!
//! Reproducing the paper requires dozens of trained models (quantization
//! schemes × clipping levels × RandBET rates × datasets × precisions), and
//! several tables share models. The zoo trains each configuration once and
//! caches the parameters under `target/zoo/`, keyed by the full training
//! configuration; subsequent experiment binaries reload in milliseconds.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use bitrobust_core::{
    build, train, ArchKind, DataParallel, NormKind, PattPattern, RandBetVariant, TrainConfig,
    TrainMethod, TrainReport,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::Model;
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::{parallel_for, pool_parallelism};
use rand::SeedableRng;

/// The dataset a zoo model is trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// The MNIST stand-in.
    Mnist,
    /// The CIFAR10 stand-in (the paper's main benchmark).
    Cifar10,
    /// The CIFAR100 stand-in.
    Cifar100,
}

impl DatasetKind {
    /// The synthetic generator.
    pub fn synth(self) -> SynthDataset {
        match self {
            DatasetKind::Mnist => SynthDataset::Mnist,
            DatasetKind::Cifar10 => SynthDataset::Cifar10,
            DatasetKind::Cifar100 => SynthDataset::Cifar100,
        }
    }

    /// Image shape `[c, h, w]`.
    pub fn image_shape(self) -> [usize; 3] {
        let spec = self.synth().spec();
        [spec.channels, spec.size, spec.size]
    }

    /// Number of classes.
    pub fn n_classes(self) -> usize {
        self.synth().spec().n_classes
    }

    /// Default architecture (the paper: SimpleNet on MNIST/CIFAR10, a wide
    /// model on CIFAR100).
    pub fn default_arch(self) -> ArchKind {
        match self {
            DatasetKind::Mnist | DatasetKind::Cifar10 => ArchKind::SimpleNet,
            DatasetKind::Cifar100 => ArchKind::WideSimpleNet,
        }
    }

    /// Default epoch budget (scaled from the paper's 100/250).
    pub fn default_epochs(self) -> usize {
        match self {
            DatasetKind::Mnist => 12,
            DatasetKind::Cifar10 => 20,
            DatasetKind::Cifar100 => 18,
        }
    }

    /// RandBET warm-up loss threshold (1.75 / 3.5 in the paper).
    pub fn warmup_loss(self) -> f32 {
        match self {
            DatasetKind::Cifar100 => 3.5,
            _ => 1.75,
        }
    }

    /// Augmentation recipe.
    pub fn augment(self) -> AugmentConfig {
        match self {
            DatasetKind::Mnist => AugmentConfig::mnist(),
            _ => AugmentConfig::cifar(),
        }
    }

    /// Short name used in keys and tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Mnist => "mnist",
            DatasetKind::Cifar10 => "cifar10",
            DatasetKind::Cifar100 => "cifar100",
        }
    }
}

/// Generates the (train, test) pair for a dataset kind.
pub fn dataset_pair(kind: DatasetKind, seed: u64) -> (Dataset, Dataset) {
    kind.synth().generate(seed)
}

/// A fully specified training configuration for the zoo.
#[derive(Debug, Clone)]
pub struct ZooSpec {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Architecture.
    pub arch: ArchKind,
    /// Normalization.
    pub norm: NormKind,
    /// Quantization scheme during training (`None` = float training).
    pub scheme: Option<QuantScheme>,
    /// Training method.
    pub method: TrainMethod,
    /// Label smoothing target.
    pub label_smoothing: Option<f32>,
    /// Epochs.
    pub epochs: usize,
    /// Seed (init, shuffling, per-step chips).
    pub seed: u64,
}

impl ZooSpec {
    /// A standard spec: default architecture/epochs for the dataset.
    pub fn new(dataset: DatasetKind, scheme: Option<QuantScheme>, method: TrainMethod) -> Self {
        Self {
            dataset,
            arch: dataset.default_arch(),
            norm: NormKind::Group,
            scheme,
            method,
            label_smoothing: None,
            epochs: dataset.default_epochs(),
            seed: 0,
        }
    }

    /// A stable, filename-safe cache key encoding the full configuration.
    pub fn key(&self) -> String {
        let arch = match self.arch {
            ArchKind::SimpleNet => "simplenet",
            ArchKind::WideSimpleNet => "widesimplenet",
            ArchKind::ResNetMini => "resnetmini",
            ArchKind::Mlp => "mlp",
        };
        let norm = match self.norm {
            NormKind::Group => "gn",
            NormKind::Batch => "bn",
        };
        let scheme = match &self.scheme {
            None => "float".to_string(),
            Some(s) => s.key(),
        };
        let method = match &self.method {
            TrainMethod::Normal => "normal".to_string(),
            TrainMethod::Clipping { wmax } => format!("clip{wmax:.3}"),
            TrainMethod::RandBet { wmax, p, variant } => {
                let v = match variant {
                    RandBetVariant::Standard => "std",
                    RandBetVariant::Curricular => "cur",
                    RandBetVariant::Alternating => "alt",
                    RandBetVariant::PerturbedOnly => "ponly",
                };
                format!(
                    "randbet-w{}-p{p:.4}-{v}",
                    wmax.map_or("none".into(), |w| format!("{w:.3}"))
                )
            }
            TrainMethod::PattBet { wmax, pattern } => {
                let pat = match pattern {
                    PattPattern::Uniform { seed, p } => format!("u{seed}p{p:.4}"),
                    PattPattern::Profiled { kind, seed, rate, persistent_only } => format!(
                        "{}s{seed}r{rate:.4}{}",
                        kind.name(),
                        if *persistent_only { "pers" } else { "all" }
                    ),
                };
                format!("pattbet-w{}-{pat}", wmax.map_or("none".into(), |w| format!("{w:.3}")))
            }
        };
        let ls = self.label_smoothing.map_or("ls0".to_string(), |t| format!("ls{t:.2}"));
        // The execution plan is part of the numerical identity of the
        // trained weights: data-parallel training at k shards is a
        // different float trajectory than the single-model path, so a
        // cache written under one plan must never serve the other.
        let dp = match self.train_config().data_parallel {
            Some(d) => format!("dp{}", d.shards),
            None => "dp0".to_string(),
        };
        format!(
            "{}-{arch}-{norm}-{scheme}-{method}-{ls}-e{}-s{}-{dp}",
            self.dataset.name(),
            self.epochs,
            self.seed
        )
    }

    fn train_config(&self) -> TrainConfig {
        let mut cfg = TrainConfig::new(self.scheme, self.method);
        cfg.label_smoothing = self.label_smoothing;
        cfg.epochs = self.epochs;
        cfg.warmup_loss = self.dataset.warmup_loss();
        cfg.augment = self.dataset.augment();
        cfg.seed = self.seed;
        // Zoo training is data-parallel at the protocol shard count: the
        // fixed count keeps trained weights identical on every machine and
        // thread count, while single-model trainings (tab3/tab4-style
        // binaries) get real wall-clock wins. Under `warm_zoo`'s own
        // fan-out the shard loop runs inline on the claiming worker, so
        // nothing is lost when many models train at once. BatchNorm specs
        // must stay on the single-model path (whole-batch statistics).
        if self.norm != NormKind::Batch {
            cfg.data_parallel = Some(DataParallel::protocol());
        }
        cfg
    }
}

fn zoo_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BITROBUST_ZOO") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/zoo")
}

/// Returns the trained model for `spec`, training and caching it if needed.
///
/// Models using BatchNorm bypass the cache (their running statistics are
/// not serialized).
///
/// # Panics
///
/// Panics on cache I/O errors other than "not found" (corrupt cache files
/// should be deleted rather than silently retrained).
pub fn zoo_model(
    spec: &ZooSpec,
    train_ds: &Dataset,
    test_ds: &Dataset,
    no_cache: bool,
) -> (Model, TrainReport) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ 0xA2C4);
    let built =
        build(spec.arch, spec.dataset.image_shape(), spec.dataset.n_classes(), spec.norm, &mut rng);
    let mut model = built.model;

    let cacheable = spec.norm != NormKind::Batch;
    let dir = zoo_dir();
    let params_path = dir.join(format!("{}.brts", spec.key()));
    let meta_path = dir.join(format!("{}.meta", spec.key()));

    if cacheable && !no_cache && params_path.exists() && meta_path.exists() {
        let file = fs::File::open(&params_path).expect("open cached params");
        model.load_params(std::io::BufReader::new(file)).expect("read cached params");
        let report = read_meta(&fs::read_to_string(&meta_path).expect("read cached meta"));
        return (model, report);
    }

    let report = train(&mut model, train_ds, test_ds, &spec.train_config());

    if cacheable && !no_cache {
        fs::create_dir_all(&dir).expect("create zoo dir");
        let file = fs::File::create(&params_path).expect("create params cache");
        model.save_params(std::io::BufWriter::new(file)).expect("write params cache");
        fs::write(&meta_path, write_meta(&report)).expect("write meta cache");
    }
    (model, report)
}

/// Whether a zoo warmup of `n_unique` trainings should run them
/// sequentially with full *inner* parallelism instead of fanning models
/// out over the pool.
///
/// The pool runs nested `parallel_for` inline on the claiming worker, so
/// an outer model-level fan-out caps each training at one core. With at
/// least as many models as threads that is ideal (every core trains a
/// model); with a *small* zoo it starves the machine — 2 models on 16
/// cores would leave 14 idle. In that regime it is faster to train the
/// models one after another and let each training's own fan-outs
/// (data-parallel shards, batch-parallel probes and evaluation) own the
/// whole pool. The crossover is heuristic: inner parallelism never scales
/// perfectly, so sequential-inner only wins clearly while the model count
/// is at most about half the thread count.
///
/// Scheduling never changes bytes: each training is self-contained and
/// byte-deterministic, so both modes produce identical models.
fn inner_parallel_warmup(n_unique: usize, parallelism: usize) -> bool {
    n_unique * 2 <= parallelism
}

/// Ensures every spec is trained and cached. Returns one `(model, report)`
/// per spec, in input order.
///
/// Large spec lists fan out over the thread pool (one training per
/// worker, nested fan-outs inline); small lists — fewer models than half
/// the threads — train sequentially so each training's inner parallelism
/// can use the whole pool instead. Either way
/// the zoo and everything downstream (e.g. the multi-model sweep
/// orchestrator's evaluation fan-out) share the one process-wide pool, and
/// results are bit-identical to calling [`zoo_model`] per spec serially.
///
/// Duplicate specs (same [`ZooSpec::key`]) are trained once and cloned, so
/// no two workers ever touch the same cache file.
///
/// This is the cache-warmup path for experiment binaries that need many
/// models: warm the zoo once, then reload per model in milliseconds.
pub fn warm_zoo(specs: &[ZooSpec], data_seed: u64, no_cache: bool) -> Vec<(Model, TrainReport)> {
    // Dedupe by cache key; remember which unique entry serves each spec.
    let mut unique: Vec<&ZooSpec> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    let assignment: Vec<usize> = specs
        .iter()
        .map(|spec| {
            let key = spec.key();
            match keys.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    unique.push(spec);
                    unique.len() - 1
                }
            }
        })
        .collect();

    // Generate each dataset once, not once per spec: the splits are
    // read-only, so trainings can share them across workers.
    let mut kinds: Vec<DatasetKind> = Vec::new();
    for spec in &unique {
        if !kinds.contains(&spec.dataset) {
            kinds.push(spec.dataset);
        }
    }
    let pairs: Vec<(Dataset, Dataset)> =
        kinds.iter().map(|&kind| dataset_pair(kind, data_seed)).collect();

    let slots: Vec<OnceLock<(Model, TrainReport)>> =
        (0..unique.len()).map(|_| OnceLock::new()).collect();
    let train_one = |i: usize| {
        let spec = unique[i];
        let kind = kinds.iter().position(|&k| k == spec.dataset).expect("kind generated above");
        let (train_ds, test_ds) = &pairs[kind];
        let trained = zoo_model(spec, train_ds, test_ds, no_cache);
        assert!(slots[i].set(trained).is_ok(), "zoo spec {i} trained twice");
    };
    if inner_parallel_warmup(unique.len(), pool_parallelism()) {
        // Few models, many cores: train sequentially on this thread so the
        // nested fan-outs inside each training get the whole pool.
        for i in 0..unique.len() {
            train_one(i);
        }
    } else {
        parallel_for(unique.len(), train_one);
    }
    assignment
        .into_iter()
        .map(|i| slots[i].get().expect("missing zoo warmup result").clone())
        .collect()
}

fn write_meta(r: &TrainReport) -> String {
    let losses: Vec<String> = r.epoch_losses.iter().map(|l| l.to_string()).collect();
    format!(
        "final_loss={}\nclean_error={}\nclean_confidence={}\nstarted_at={}\nepoch_losses={}\n",
        r.final_loss,
        r.clean_error,
        r.clean_confidence,
        r.bit_errors_started_at.map_or(-1i64, |e| e as i64),
        losses.join(",")
    )
}

fn read_meta(text: &str) -> TrainReport {
    let mut final_loss = 0.0;
    let mut clean_error = 0.0;
    let mut clean_confidence = 0.0;
    let mut started_at = -1i64;
    let mut epoch_losses = Vec::new();
    for line in text.lines() {
        if let Some((k, v)) = line.split_once('=') {
            match k {
                "final_loss" => final_loss = v.parse().unwrap_or(0.0),
                "clean_error" => clean_error = v.parse().unwrap_or(0.0),
                "clean_confidence" => clean_confidence = v.parse().unwrap_or(0.0),
                "started_at" => started_at = v.parse().unwrap_or(-1),
                "epoch_losses" => {
                    epoch_losses = v.split(',').filter_map(|s| s.parse().ok()).collect()
                }
                _ => {}
            }
        }
    }
    TrainReport {
        final_loss,
        clean_error,
        clean_confidence,
        bit_errors_started_at: if started_at >= 0 { Some(started_at as usize) } else { None },
        epoch_losses,
        // Zoo training never configures an RErr probe, so there is no
        // per-epoch RErr history to cache.
        epoch_rerr: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_and_stable() {
        let a =
            ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        let b = ZooSpec::new(
            DatasetKind::Cifar10,
            Some(QuantScheme::rquant(8)),
            TrainMethod::Clipping { wmax: 0.1 },
        );
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), a.key());
        assert!(a.key().contains("cifar10"));
        assert!(b.key().contains("clip0.100"));
    }

    /// The execution plan is part of the cache identity: data-parallel
    /// weights are a different float trajectory than single-model ones, so
    /// caches written before the dp rollout (or by the BatchNorm fallback)
    /// must never be served to a dp training and vice versa.
    #[test]
    fn keys_encode_the_execution_plan() {
        let dp =
            ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        assert!(dp.key().ends_with("-dp8"), "{}", dp.key());
        let mut single = dp.clone();
        single.norm = NormKind::Batch;
        assert!(single.key().ends_with("-dp0"), "{}", single.key());
    }

    #[test]
    fn keys_distinguish_schemes() {
        let rq =
            ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        let nm =
            ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::normal(8)), TrainMethod::Normal);
        let fl = ZooSpec::new(DatasetKind::Cifar10, None, TrainMethod::Normal);
        assert_ne!(rq.key(), nm.key());
        assert_ne!(rq.key(), fl.key());
    }

    #[test]
    fn meta_round_trip() {
        let r = TrainReport {
            final_loss: 0.5,
            clean_error: 0.043,
            clean_confidence: 0.97,
            bit_errors_started_at: Some(3),
            epoch_losses: vec![1.25, 0.75, 0.5],
            epoch_rerr: Vec::new(),
        };
        let back = read_meta(&write_meta(&r));
        assert_eq!(back, r);
        let r2 = TrainReport { bit_errors_started_at: None, epoch_losses: Vec::new(), ..r };
        assert_eq!(read_meta(&write_meta(&r2)), r2);
    }

    #[test]
    fn warm_zoo_matches_serial_training_and_dedupes() {
        let mut spec =
            ZooSpec::new(DatasetKind::Mnist, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        spec.epochs = 2;
        let mut other = spec.clone();
        other.seed = 1;

        // Bypass the on-disk cache so the test exercises the training path.
        let specs = vec![spec.clone(), other.clone(), spec.clone()];
        let warmed = warm_zoo(&specs, 0, true);
        assert_eq!(warmed.len(), 3);

        let (train_ds, test_ds) = dataset_pair(DatasetKind::Mnist, 0);
        let (serial_model, serial_report) = zoo_model(&spec, &train_ds, &test_ds, true);
        assert_eq!(warmed[0].1, serial_report, "parallel warmup must match serial training");
        assert_eq!(warmed[0].0.param_tensors(), serial_model.param_tensors());
        // Duplicate specs share one training run.
        assert_eq!(warmed[0].0.param_tensors(), warmed[2].0.param_tensors());
        assert_eq!(warmed[0].1, warmed[2].1);
        // Distinct seeds are genuinely different runs.
        assert_ne!(warmed[0].1, warmed[1].1);
    }

    /// The warmup scheduling crossover: sequential-inner-parallel only
    /// while the unique model count is at most half the thread count.
    #[test]
    fn warmup_scheduling_crossover() {
        assert!(inner_parallel_warmup(1, 2));
        assert!(inner_parallel_warmup(2, 4));
        assert!(inner_parallel_warmup(4, 8));
        assert!(!inner_parallel_warmup(5, 8));
        assert!(!inner_parallel_warmup(8, 8));
        assert!(!inner_parallel_warmup(1, 1));
        assert!(!inner_parallel_warmup(16, 4));
    }

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::Cifar100.n_classes(), 100);
        assert_eq!(DatasetKind::Mnist.image_shape(), [1, 14, 14]);
        assert_eq!(DatasetKind::Cifar100.warmup_loss(), 3.5);
    }
}
