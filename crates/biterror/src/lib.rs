//! # bitrobust-biterror
//!
//! Low-voltage bit error models for the Rust reproduction of *"Bit Error
//! Robustness for Energy-Efficient DNN Accelerators"* (Stutz et al.,
//! MLSys 2021).
//!
//! Two families of error models implement the common [`ErrorInjector`]
//! trait:
//!
//! * [`UniformChip`] — the paper's random bit error model `BErr_p`
//!   (Sec. 3): every bit of every weight flips independently with
//!   probability `p`. A chip is a seed; its pattern is a pure function of
//!   `(seed, weight, bit)`, so the flips at `p' ≤ p` are a subset of the
//!   flips at `p` (errors "inherited" across voltages) with zero storage.
//! * [`ProfiledChip`] — synthesized chips with the statistical structure of
//!   the paper's profiled 14 nm SRAM maps (Fig. 3/8, App. C.1): exponential
//!   rate-vs-voltage, column-aligned faults, 0-to-1/1-to-0 bias, and a
//!   persistent/transient split, with configurable weight-to-memory
//!   mapping offsets.
//!
//! # Examples
//!
//! ```
//! use bitrobust_biterror::{expected_bit_errors, ErrorInjector, UniformChip};
//! use bitrobust_quant::QuantScheme;
//!
//! // Quantize a weight vector and hit it with p = 1% random bit errors.
//! let scheme = QuantScheme::rquant(8);
//! let mut q = scheme.quantize(&vec![0.05f32; 4096]);
//! UniformChip::new(42).at_rate(0.01).inject(q.words_mut(), 8, 0);
//! println!("expected flips: {}", expected_bit_errors(0.01, 4096, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod inject;
mod profiled;
mod uniform;

pub use hash::{hash_u64, hash_unit};
pub use inject::{ErrorInjector, NoErrors};
pub use profiled::{ChipKind, ProfiledAxis, ProfiledChip, ProfiledInjector, TAB5_OFFSET_STRIDE};
pub use uniform::{expected_bit_errors, UniformChip, UniformInjector};
