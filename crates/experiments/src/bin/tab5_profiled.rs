//! **Tab. 5 / Tab. 15** — RandBET generalizes to profiled chips.
//!
//! Evaluates `RQUANT`, `CLIPPING 0.05` and `RANDBET 0.05 (p=1.5%)` on the
//! three synthesized profiled chips at the paper's measured rates,
//! averaging over several weight-to-memory mapping offsets (App. C.1).
//!
//! The whole table — 3 models × 3 profiled chips × rates × offsets — runs
//! as **one** durable sweep campaign ([`bitrobust_core::run_sweep`]) over
//! profiled-chip [`ChipAxis`] axes, checkpointed to
//! `target/sweeps/tab5_profiled.jsonl`: kill it at any point and rerun to
//! resume byte-identically (`--fresh` recomputes).

use bitrobust_biterror::{ChipKind, ProfiledAxis};
use bitrobust_core::{run_sweep, ChipAxis, RandBetVariant, SweepAxis, SweepOptions, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    open_sweep_store, pct, sweep_models, sweep_progress, warm_zoo, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (_, test_ds) = bitrobust_experiments::dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let n_offsets = if opts.quick { 2 } else { 8 };

    let chip_rates: &[(ChipKind, &[f64])] = &[
        (ChipKind::Chip1, &[0.0086, 0.0275]),
        (ChipKind::Chip2, &[0.0014, 0.0108]),
        (ChipKind::Chip3, &[0.0003, 0.005]),
    ];

    let methods: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT", TrainMethod::Normal),
        ("CLIPPING 0.05", TrainMethod::Clipping { wmax: 0.05 }),
        (
            "RANDBET 0.05 p=1.5%",
            TrainMethod::RandBet { wmax: Some(0.05), p: 0.015, variant: RandBetVariant::Standard },
        ),
    ];

    let specs: Vec<ZooSpec> = methods
        .iter()
        .map(|(_, method)| {
            let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), *method);
            spec.epochs = opts.epochs(spec.epochs);
            spec.seed = opts.seed;
            spec
        })
        .collect();
    eprintln!("warming {} cifar10 zoo models...", specs.len());
    let warmed = warm_zoo(&specs, opts.seed, opts.no_cache);

    // One axis per profiled chip: rates resolve to operating voltages,
    // offsets vary the weight-to-memory mapping (the Tab. 5 protocol).
    let models = sweep_models(&specs, &warmed);
    let axes: Vec<SweepAxis> = chip_rates
        .iter()
        .map(|&(kind, rates)| {
            SweepAxis::new(
                kind.name(),
                ChipAxis::Profiled(ProfiledAxis::tab5(kind, opts.seed, rates.to_vec(), n_offsets)),
            )
        })
        .collect();
    let total = models.len() * axes.iter().map(|a| a.axis.n_points()).sum::<usize>();
    let mut store = open_sweep_store("tab5_profiled", &opts);
    eprint!("sweep {} models x 3 profiled chips ({total} cells): ", models.len());
    let results = run_sweep(
        &models,
        &axes,
        &test_ds,
        &SweepOptions::default(),
        Some(&mut store),
        sweep_progress(total),
    );

    for (ai, &(kind, rates)) in chip_rates.iter().enumerate() {
        let mut header = vec!["model".to_string(), "Err %".to_string()];
        header.extend(rates.iter().map(|r| format!("RErr p~{:.2}%", 100.0 * r)));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for (mi, (name, _)) in methods.iter().enumerate() {
            let mut row = vec![name.to_string(), pct(warmed[mi].1.clean_error as f64)];
            row.extend(results.robust(mi, ai).iter().map(|r| pct(r.mean_error as f64)));
            table.row_owned(row);
        }
        println!(
            "Tab. 5 / Tab. 15 — {} ({} offsets per rate):\n{}",
            kind.name(),
            n_offsets,
            table.render()
        );
    }
    println!("Expected shape (paper): RANDBET (trained only on uniform random errors)");
    println!("generalizes to all profiled chips; chip 2's column-aligned, 0-to-1 biased");
    println!("errors are hardest.");
    bitrobust_experiments::finish_obs();
}
