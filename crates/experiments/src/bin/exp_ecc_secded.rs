//! **Extension (Sec. 1 argument)** — SECDED ECC vs training-time
//! robustness.
//!
//! The paper dismisses classic ECC with a one-line probability argument:
//! at `p = 1%`, 13.5% of 64-bit words hold two or more errors, which
//! SECDED cannot correct. This experiment makes the comparison concrete:
//! RErr of an `RQUANT` model with SECDED protection vs a `RANDBET` model
//! with none, across bit error rates.

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    apply_secded, evaluate, multi_error_probability, robust_eval_uniform, DoubleErrorPolicy,
    QuantizedModel, RandBetVariant, SecdedConfig, TrainMethod, EVAL_BATCH,
};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [1e-3, 5e-3, 1e-2, 2.5e-2];

    // The analytic argument.
    println!("Probability of >= 2 bit errors per word (SECDED-uncorrectable):");
    let mut table = Table::new(&["p %", "64-bit word", "72-bit word (with parity)"]);
    for p in [1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2] {
        table.row_owned(vec![
            format!("{:.2}", 100.0 * p),
            format!("{:.3}%", 100.0 * multi_error_probability(p, 64)),
            format!("{:.3}%", 100.0 * multi_error_probability(p, 72)),
        ]);
    }
    println!("{}", table.render());
    println!("(Paper: 13.5% at p = 1% for 64-bit words.)\n");

    // Empirical comparison.
    let mut rq_spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), TrainMethod::Normal);
    rq_spec.epochs = opts.epochs(rq_spec.epochs);
    rq_spec.seed = opts.seed;
    let (mut rquant, _) = zoo_model(&rq_spec, &train_ds, &test_ds, opts.no_cache);

    let mut rb_spec = ZooSpec::new(
        DatasetKind::Cifar10,
        Some(scheme),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
    );
    rb_spec.epochs = opts.epochs(rb_spec.epochs);
    rb_spec.seed = opts.seed;
    let (randbet, _) = zoo_model(&rb_spec, &train_ds, &test_ds, opts.no_cache);

    let mut header = vec!["configuration".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    // RQuant, no protection.
    let mut row = vec!["RQUANT, no ECC".to_string()];
    for &p in &ps {
        let r = robust_eval_uniform(
            &rquant,
            scheme,
            &test_ds,
            p,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        row.push(pct(r.mean_error as f64));
    }
    table.row_owned(row);

    // RQuant with SECDED (both double-error policies).
    for policy in [DoubleErrorPolicy::Leave, DoubleErrorPolicy::ZeroWord] {
        let cfg = SecdedConfig { policy, ..Default::default() };
        let mut row = vec![format!("RQUANT + SECDED ({policy:?})")];
        for &p in &ps {
            row.push(pct(secded_rerr(&mut rquant, scheme, &test_ds, p, opts.chips, &cfg)));
        }
        table.row_owned(row);
    }

    // RandBET, no protection.
    let mut row = vec!["RANDBET 0.1 p=1%, no ECC".to_string()];
    for &p in &ps {
        let r = robust_eval_uniform(
            &randbet,
            scheme,
            &test_ds,
            p,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        row.push(pct(r.mean_error as f64));
    }
    table.row_owned(row);

    println!("Empirical comparison (CIFAR10 stand-in):\n{}", table.render());
    println!("Expected shape: SECDED rescues low rates but degrades as multi-error words");
    println!("dominate; RandBET needs no decoder, no parity storage, and no extra access");
    println!("energy, and keeps working at high rates.");
}

fn secded_rerr(
    model: &mut bitrobust_nn::Model,
    scheme: QuantScheme,
    test_ds: &bitrobust_data::Dataset,
    p: f64,
    chips: usize,
    cfg: &SecdedConfig,
) -> f64 {
    let snapshot = model.param_tensors();
    let q0 = QuantizedModel::quantize(model, scheme);
    let mut sum = 0f64;
    for c in 0..chips {
        let mut q = q0.clone();
        q.inject(&UniformChip::new(CHIP_SEED + c as u64).at_rate(p));
        let _ = apply_secded(&q0, &mut q, cfg);
        q.write_to(model);
        sum += evaluate(model, test_ds, EVAL_BATCH, Mode::Eval).error as f64;
    }
    model.set_param_tensors(&snapshot);
    sum / chips as f64
}
