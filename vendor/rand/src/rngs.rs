//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast, and seed-stable; statistically strong enough for data
/// augmentation, weight init, and Monte-Carlo bit error sampling. Unlike
/// upstream `rand`, the stream is *not* ChaCha12 — see the crate docs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna 2018).
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0; 32]);
        let first = r.next_u64();
        let second = r.next_u64();
        assert!(first != 0 || second != 0);
    }
}
