//! # bitrobust-core
//!
//! The Rust reproduction of *"Bit Error Robustness for Energy-Efficient DNN
//! Accelerators"* (Stutz, Chandramoorthy, Hein, Schiele — MLSys 2021).
//!
//! DNN accelerators can cut SRAM energy quadratically by operating below
//! the rated voltage `Vmin`, at the cost of exponentially growing random
//! bit errors in the stored weights. The paper — and this crate — makes
//! DNNs robust to those errors with three stacked techniques:
//!
//! 1. **Robust quantization** (`RQUANT`): per-layer, asymmetric, unsigned
//!    fixed-point quantization with proper rounding
//!    ([`bitrobust_quant::QuantScheme::rquant`]).
//! 2. **Weight clipping** (`CLIPPING`): constraining weights to
//!    `[-wmax, wmax]` during training, which together with the
//!    cross-entropy loss forces redundant weight usage
//!    ([`TrainMethod::Clipping`], [`redundancy_metrics`]).
//! 3. **Random bit error training** (`RANDBET`, Alg. 1): injecting fresh
//!    random bit errors into the quantized weights at every training step
//!    and averaging clean and perturbed gradients
//!    ([`TrainMethod::RandBet`]).
//!
//! The crate also implements the non-generalizing fixed-pattern baseline
//! (`PATTBET`, [`TrainMethod::PattBet`]), the `Err`/`RErr` evaluation
//! protocol ([`evaluate`], [`robust_eval_uniform`]) backed by the parallel
//! fault-injection [`campaign`] engine (the [`Campaign`] builder, uniform
//! and profiled-chip axes via [`run_axis`]), the reusable fork-join
//! [`scheduler`] every batch-parallel subsystem (campaigns, sweeps,
//! data-parallel training, the `bitrobust-serve` inference service) runs
//! through, the durable [`sweep`] orchestrator (multi-model × multi-axis
//! campaigns checkpointed to a resumable on-disk [`SweepStore`] —
//! [`run_sweep`]), deterministic data-parallel training
//! ([`TrainConfig::data_parallel`] → [`data_parallel`]),
//! the Prop. 1 generalization bound ([`deviation_bound`]), and the energy
//! trade-off analysis combining the SRAM voltage/energy models with
//! measured RErr curves ([`energy_tradeoff`]).
//!
//! # Examples
//!
//! Train a small model with RandBET and measure its robustness:
//!
//! ```no_run
//! use bitrobust_core::{
//!     build, robust_eval_uniform, train, ArchKind, NormKind, RandBetVariant, TrainConfig,
//!     TrainMethod,
//! };
//! use bitrobust_data::SynthDataset;
//! use bitrobust_nn::Mode;
//! use bitrobust_quant::QuantScheme;
//! use rand::SeedableRng;
//!
//! let (train_ds, test_ds) = SynthDataset::Cifar10.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let built = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng);
//! let mut model = built.model;
//!
//! let scheme = QuantScheme::rquant(8);
//! let method = TrainMethod::RandBet {
//!     wmax: Some(0.1),
//!     p: 0.01,
//!     variant: RandBetVariant::Standard,
//! };
//! let report = train(&mut model, &train_ds, &test_ds, &TrainConfig::new(Some(scheme), method));
//! let robust =
//!     robust_eval_uniform(&mut model, scheme, &test_ds, 0.01, 20, 1000, 128, Mode::Eval);
//! println!("Err {:.2}% RErr {:.2}%", 100.0 * report.clean_error, 100.0 * robust.mean_error);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod bound;
pub mod campaign;
pub mod data_parallel;
mod ecc;
mod energy;
mod eval;
mod probe;
mod qmodel;
mod redundancy;
pub mod scheduler;
pub mod store;
pub mod sweep;
mod train;

pub use arch::{build, ArchKind, BuiltModel, NormKind};
pub use bound::{deviation_bound, deviation_probability};
#[allow(deprecated)] // the deprecated entry points stay re-exported for migration
pub use campaign::{
    eval_cells_streaming_with, eval_images, eval_images_serial, eval_images_sized,
    eval_images_streaming, eval_images_streaming_with, eval_images_with,
};
pub use campaign::{
    run_axis, run_axis_streaming, run_grid, run_grid_streaming, AxisCell, Campaign, CampaignGrid,
    ChipAxis, GridCell, ReplicaStrategy,
};
pub use data_parallel::{DataParallel, TRAIN_SHARDS};
pub use ecc::{apply_secded, multi_error_probability, DoubleErrorPolicy, EccStats, SecdedConfig};
pub use energy::{best_saving_within, energy_tradeoff, TradeoffPoint};
pub use eval::{
    evaluate, evaluate_probed, evaluate_serial, quantized_error, quantized_error_probed,
    robust_eval, robust_eval_uniform, robust_eval_uniform_serial, EvalResult, RobustEval,
    EVAL_BATCH,
};
pub use probe::{has_attached_probes, probe_handles, ActivationProbe, ProbeHandle, ProbeStats};
pub use qmodel::QuantizedModel;
pub use redundancy::{redundancy_metrics, RedundancyMetrics};
pub use scheduler::{ItemSizing, ReplicaPool, ScratchReplicas, ShardReplicas, MAX_REPLICAS};
pub use store::{CellRecord, StoreError, SweepStore};
pub use sweep::{run_sweep, SweepAxis, SweepCell, SweepModel, SweepOptions, SweepResults};
pub use train::{
    train, PattPattern, RErrProbe, RandBetVariant, TrainConfig, TrainMethod, TrainReport,
};
