//! Chrome `trace_event` export.
//!
//! The writer emits the JSON-array flavor of the trace-event format —
//! one complete (`"ph": "X"`) event per line plus a `thread_name`
//! metadata record per thread — which both `chrome://tracing` and
//! Perfetto load directly.

use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::Path;

/// One completed span, in process-relative nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Span name (the `span!` argument).
    pub name: &'static str,
    /// Start time in nanoseconds since the process trace origin.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense thread id assigned by obs (not the OS tid).
    pub tid: u64,
}

/// Serialize events as a Chrome trace JSON array. Events should already
/// be in deterministic order (see [`crate::take_trace`]).
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut s = String::from("[\n");
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let mut first = true;
    for tid in tids {
        push_sep(&mut s, &mut first);
        s.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"bitrobust-{tid}\"}}}}"
        ));
    }
    for e in events {
        push_sep(&mut s, &mut first);
        // trace_event timestamps are microseconds; keep nanosecond
        // precision as fractional digits.
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{}}}",
            e.name,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            e.tid,
        ));
    }
    s.push_str("\n]\n");
    s
}

fn push_sep(s: &mut String, first: &mut bool) {
    if !*first {
        s.push_str(",\n");
    }
    *first = false;
}

/// Write a Chrome trace file loadable in `chrome://tracing` / Perfetto.
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(render_chrome_trace(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_metadata_then_events_with_commas() {
        let events = [
            TraceEvent { name: "a", ts_ns: 1_500, dur_ns: 2_001, tid: 0 },
            TraceEvent { name: "b", ts_ns: 4_000, dur_ns: 10, tid: 3 },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.ends_with("\n]\n"), "{json}");
        assert!(json.contains("\"name\":\"bitrobust-0\""), "{json}");
        assert!(json.contains("\"name\":\"bitrobust-3\""), "{json}");
        assert!(json.contains("\"ts\":1.500,\"dur\":2.001"), "{json}");
        assert!(json.contains("\"ts\":4.000,\"dur\":0.010"), "{json}");
        // Commas separate every record but never trail the last one.
        assert_eq!(json.matches(",\n").count(), 3, "{json}");
    }

    #[test]
    fn empty_trace_is_still_a_valid_array() {
        assert_eq!(render_chrome_trace(&[]), "[\n\n]\n");
    }
}
