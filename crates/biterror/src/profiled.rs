//! Profiled chips: spatially structured, direction-biased bit errors.
//!
//! The paper evaluates generalization on bit error maps profiled from real
//! 14 nm chips (Fig. 3 / Fig. 8, App. C.1). We synthesize chips with the
//! same *statistical structure*: exponential rate-vs-voltage, errors
//! inherited across voltages, optional column alignment, a 0-to-1 /
//! 1-to-0 flip bias, and a persistent/transient split. The App. C.1 table
//! for the three profiled chips is the calibration target.

use bitrobust_sram::{CellProfile, FaultStats, SramArray, VoltageErrorModel};
use rand::SeedableRng;

use crate::ErrorInjector;

/// Which published chip a synthesized profile imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipKind {
    /// Chip 1: approximately uniform spatial distribution, mild 1-to-0
    /// bias (App. C.1: p ≈ 2.744% with p1t0 1.47 / p0t1 1.27).
    Chip1,
    /// Chip 2: errors strongly aligned along columns and biased toward
    /// 0-to-1 flips (p ≈ 4.707% with p0t1 3.443 / p1t0 1.091).
    Chip2,
    /// Chip 3: 0-to-1 biased without the pronounced column structure
    /// (p ≈ 2.297% with p0t1 1.81 / p1t0 0.48).
    Chip3,
}

impl ChipKind {
    /// The cell profile used to synthesize this chip kind.
    pub fn profile(self) -> CellProfile {
        match self {
            // Slight 1-to-0 bias: stuck-at-0 cells produce 1-to-0 flips.
            ChipKind::Chip1 => CellProfile {
                weak_column_frac: 0.0,
                column_boost: 0.0,
                stuck_one_bias: 0.46,
                persistent_frac: 0.45,
            },
            ChipKind::Chip2 => CellProfile {
                weak_column_frac: 0.08,
                column_boost: 0.04,
                stuck_one_bias: 0.76,
                persistent_frac: 0.6,
            },
            ChipKind::Chip3 => CellProfile {
                weak_column_frac: 0.02,
                column_boost: 0.02,
                stuck_one_bias: 0.79,
                persistent_frac: 0.3,
            },
        }
    }

    /// Array geometry: the paper's bit error maps are 2048×128 bits for
    /// chip 1 and 8192×128 for chips 2 and 3.
    pub fn geometry(self) -> (usize, usize) {
        match self {
            ChipKind::Chip1 => (2048, 128),
            ChipKind::Chip2 | ChipKind::Chip3 => (8192, 128),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ChipKind::Chip1 => "chip1",
            ChipKind::Chip2 => "chip2",
            ChipKind::Chip3 => "chip3",
        }
    }

    /// All three kinds.
    pub fn all() -> [ChipKind; 3] {
        [ChipKind::Chip1, ChipKind::Chip2, ChipKind::Chip3]
    }
}

/// A synthesized profiled chip: a fixed map of faulty bit cells per voltage.
///
/// Weights are mapped linearly onto the chip's cells: bit `j` of weight `i`
/// lands in cell `(map_offset + i*m + j) mod n_cells`. Different
/// `map_offset` values simulate different weight-to-memory mappings, as in
/// the paper's App. C.1 evaluation.
///
/// # Examples
///
/// ```
/// use bitrobust_biterror::{ChipKind, ProfiledChip};
///
/// let chip = ProfiledChip::synthesize(ChipKind::Chip1, 1);
/// let v = chip.voltage_for_rate(0.0086); // ~ the paper's p ≈ 0.86% point
/// let stats = chip.stats_at(v);
/// assert!((stats.rate - 0.0086).abs() < 0.002);
/// ```
#[derive(Debug, Clone)]
pub struct ProfiledChip {
    kind: ChipKind,
    array: SramArray,
    model: VoltageErrorModel,
}

impl ProfiledChip {
    /// Synthesizes a chip of the given kind; `seed` selects the instance.
    pub fn synthesize(kind: ChipKind, seed: u64) -> Self {
        let model = VoltageErrorModel::chandramoorthy14nm();
        let (rows, cols) = kind.geometry();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC4_11_57_00 ^ kind as u64);
        let array = SramArray::sample(rows, cols, &model, &kind.profile(), &mut rng);
        Self { kind, array, model }
    }

    /// The chip kind.
    pub fn kind(&self) -> ChipKind {
        self.kind
    }

    /// Total number of bit cells.
    pub fn n_cells(&self) -> usize {
        self.array.n_cells()
    }

    /// Measured bit error rate at normalized voltage `v`.
    pub fn bit_error_rate_at(&self, v: f64) -> f64 {
        self.array.bit_error_rate_at(v)
    }

    /// Fault statistics at `v` (the App. C.1 table row).
    pub fn stats_at(&self, v: f64) -> FaultStats {
        self.array.stats_at(v)
    }

    /// Whether bit cell `cell` (row-major) is faulty at voltage `v`
    /// (for fault-map visualization and subset-property checks).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn is_cell_faulty_at(&self, cell: usize, v: f64) -> bool {
        self.array.is_faulty_at(cell, v)
    }

    /// Finds the operating voltage at which this chip's *measured* rate is
    /// closest to `p` (bisection over the monotone rate curve).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn voltage_for_rate(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "rate must be in (0, 1)");
        let (mut lo, mut hi) = (0.5f64, 1.1f64); // rate(lo) high, rate(hi) ~ 0
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.array.bit_error_rate_at(mid) > p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The underlying voltage model (shared calibration).
    pub fn voltage_model(&self) -> &VoltageErrorModel {
        &self.model
    }

    /// Binds the chip to an operating voltage and weight-to-memory mapping,
    /// producing an [`ErrorInjector`].
    ///
    /// `map_offset` is a bit-cell offset applied before the linear mapping;
    /// `persistent_only` restricts injection to persistent faults (used for
    /// the PattBET-on-profiled-errors experiments, Tab. 16).
    pub fn at_voltage(
        &self,
        v: f64,
        map_offset: usize,
        persistent_only: bool,
    ) -> ProfiledInjector<'_> {
        ProfiledInjector { chip: self, voltage: v, map_offset, persistent_only }
    }
}

/// A profiled-chip evaluation axis: target bit error rates (each resolved
/// to an operating voltage on the synthesized chip) crossed with several
/// weight-to-memory mapping offsets per rate — the Tab. 5 / App. C.1
/// protocol as a first-class, iterable description.
///
/// Points are ordered **rate-major**: point `i` is
/// `(rate[i / n_offsets], offset index i % n_offsets)`, and offset index
/// `k` maps weights at bit-cell offset `k * offset_stride`. The order is
/// part of the axis identity ([`ProfiledAxis::key`]) because campaign
/// cells are stored and resumed under per-point content hashes.
///
/// # Examples
///
/// ```
/// use bitrobust_biterror::{ChipKind, ProfiledAxis};
///
/// let axis = ProfiledAxis::tab5(ChipKind::Chip1, 0, vec![0.0086, 0.0275], 4);
/// assert_eq!(axis.n_points(), 8);
/// assert_eq!(axis.point(5), (1, 1)); // second rate, second offset
/// let chip = axis.synthesize();
/// let voltages = axis.voltages(&chip);
/// assert!(voltages[0] > voltages[1], "higher rate needs lower voltage");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledAxis {
    /// Which published chip to synthesize.
    pub kind: ChipKind,
    /// Seed selecting the chip instance.
    pub chip_seed: u64,
    /// Target bit error rates; each is resolved to the chip voltage whose
    /// measured rate is closest ([`ProfiledChip::voltage_for_rate`]).
    pub rates: Vec<f64>,
    /// Weight-to-memory mapping offsets evaluated per rate.
    pub n_offsets: usize,
    /// Bit-cell stride between consecutive mapping offsets.
    pub offset_stride: usize,
    /// Restrict injection to persistent faults (Tab. 16).
    pub persistent_only: bool,
}

/// The mapping-offset stride of the Tab. 5 protocol (a prime-ish constant
/// so consecutive offsets decorrelate against the chip's column structure).
pub const TAB5_OFFSET_STRIDE: usize = 131_071;

impl ProfiledAxis {
    /// The Tab. 5 protocol axis: all faults, [`TAB5_OFFSET_STRIDE`] between
    /// mapping offsets.
    pub fn tab5(kind: ChipKind, chip_seed: u64, rates: Vec<f64>, n_offsets: usize) -> Self {
        Self {
            kind,
            chip_seed,
            rates,
            n_offsets,
            offset_stride: TAB5_OFFSET_STRIDE,
            persistent_only: false,
        }
    }

    /// Total number of axis points (`rates × offsets`).
    pub fn n_points(&self) -> usize {
        self.rates.len() * self.n_offsets
    }

    /// Decomposes a point index into `(rate index, offset index)`.
    ///
    /// # Panics
    ///
    /// Panics if `point >= self.n_points()`.
    pub fn point(&self, point: usize) -> (usize, usize) {
        assert!(point < self.n_points(), "axis point {point} out of range");
        (point / self.n_offsets, point % self.n_offsets)
    }

    /// Synthesizes the axis's chip (deterministic in `kind` and
    /// `chip_seed`).
    pub fn synthesize(&self) -> ProfiledChip {
        ProfiledChip::synthesize(self.kind, self.chip_seed)
    }

    /// Resolves every target rate to its operating voltage on `chip`, in
    /// rate order. Bisection is deterministic, so callers can resolve once
    /// and share the result across all points.
    pub fn voltages(&self, chip: &ProfiledChip) -> Vec<f64> {
        self.rates.iter().map(|&p| chip.voltage_for_rate(p)).collect()
    }

    /// The injector for axis point `point`, given the synthesized chip and
    /// its pre-resolved [`ProfiledAxis::voltages`].
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range or `voltages` does not match the
    /// rate count.
    pub fn injector<'c>(
        &self,
        chip: &'c ProfiledChip,
        voltages: &[f64],
        point: usize,
    ) -> ProfiledInjector<'c> {
        assert_eq!(voltages.len(), self.rates.len(), "one voltage per rate");
        let (rate, offset) = self.point(point);
        chip.at_voltage(voltages[rate], offset * self.offset_stride, self.persistent_only)
    }

    /// A stable identity string for persistent cell keys: chip kind, seed,
    /// offset grid, fault filter, and the exact rates (shortest round-trip
    /// float encoding, so re-parsing yields identical `f64`s).
    pub fn key(&self) -> String {
        let rates: Vec<String> = self.rates.iter().map(|r| format!("{r:e}")).collect();
        format!(
            "{}-s{}-o{}x{}-{}-r[{}]",
            self.kind.name(),
            self.chip_seed,
            self.n_offsets,
            self.offset_stride,
            if self.persistent_only { "pers" } else { "all" },
            rates.join(",")
        )
    }
}

/// A [`ProfiledChip`] bound to a voltage and memory mapping.
#[derive(Debug, Clone, Copy)]
pub struct ProfiledInjector<'a> {
    chip: &'a ProfiledChip,
    voltage: f64,
    map_offset: usize,
    persistent_only: bool,
}

impl ProfiledInjector<'_> {
    /// The operating voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }
}

impl ErrorInjector for ProfiledInjector<'_> {
    fn inject(&self, words: &mut [u8], bits: u8, word_offset: usize) {
        let n_cells = self.chip.array.n_cells();
        let array = &self.chip.array;
        for (i, word) in words.iter_mut().enumerate() {
            let base = self.map_offset + (word_offset + i) * bits as usize;
            for bit in 0..bits {
                let cell = (base + bit as usize) % n_cells;
                if array.is_faulty_at(cell, self.voltage)
                    && (!self.persistent_only || array.is_persistent(cell))
                {
                    let stored = (*word >> bit) & 1 == 1;
                    let read = array.stuck_value(cell);
                    if read != stored {
                        *word ^= 1 << bit;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_stats_match_app_c1_calibration() {
        // Synthesize each chip and check the direction bias at a voltage
        // close to the published rates.
        let chip1 = ProfiledChip::synthesize(ChipKind::Chip1, 0);
        let v = chip1.voltage_for_rate(0.02744);
        let s = chip1.stats_at(v);
        assert!((s.rate - 0.02744).abs() < 0.004, "rate {}", s.rate);
        assert!(s.rate_1_to_0 > s.rate_0_to_1, "chip 1 is slightly 1-to-0 biased");

        let chip2 = ProfiledChip::synthesize(ChipKind::Chip2, 0);
        let v = chip2.voltage_for_rate(0.047);
        let s = chip2.stats_at(v);
        assert!(s.rate_0_to_1 > 2.0 * s.rate_1_to_0, "chip 2 is strongly 0-to-1 biased");
    }

    #[test]
    fn injection_flips_only_mismatched_stuck_cells() {
        let chip = ProfiledChip::synthesize(ChipKind::Chip1, 1);
        let v = chip.voltage_for_rate(0.02);
        // All-zero words: only stuck-at-1 faults can flip bits (0 -> 1).
        let mut zeros = vec![0u8; 5000];
        chip.at_voltage(v, 0, false).inject(&mut zeros, 8, 0);
        let ones_set: u32 = zeros.iter().map(|w| w.count_ones()).sum();
        // All-one words: only stuck-at-0 faults flip (1 -> 0).
        let mut ones = vec![0xFFu8; 5000];
        chip.at_voltage(v, 0, false).inject(&mut ones, 8, 0);
        let zeros_set: u32 = ones.iter().map(|w| (!w).count_ones()).sum();
        assert!(ones_set > 0 && zeros_set > 0);
        // Combined they should approximate rate * bits * words.
        let total = (ones_set + zeros_set) as f64;
        let expected = 0.02 * 8.0 * 5000.0;
        assert!((total - expected).abs() < expected * 0.3, "{total} vs {expected}");
    }

    #[test]
    fn lower_voltage_is_a_superset_of_higher_voltage() {
        let chip = ProfiledChip::synthesize(ChipKind::Chip2, 2);
        let (v_hi, v_lo) = (0.88, 0.80);
        let mut at_hi = vec![0u8; 2000];
        let mut at_lo = vec![0u8; 2000];
        chip.at_voltage(v_hi, 0, false).inject(&mut at_hi, 8, 0);
        chip.at_voltage(v_lo, 0, false).inject(&mut at_lo, 8, 0);
        for (h, l) in at_hi.iter().zip(&at_lo) {
            assert_eq!(h & !l, 0, "every error at {v_hi} must also occur at {v_lo}");
        }
    }

    #[test]
    fn map_offset_changes_the_pattern() {
        let chip = ProfiledChip::synthesize(ChipKind::Chip1, 3);
        let v = chip.voltage_for_rate(0.02);
        let mut a = vec![0u8; 3000];
        let mut b = vec![0u8; 3000];
        chip.at_voltage(v, 0, false).inject(&mut a, 8, 0);
        chip.at_voltage(v, 12_345, false).inject(&mut b, 8, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn persistent_only_injects_fewer_errors() {
        let chip = ProfiledChip::synthesize(ChipKind::Chip2, 4);
        let v = chip.voltage_for_rate(0.04);
        let mut all = vec![0u8; 4000];
        let mut pers = vec![0u8; 4000];
        chip.at_voltage(v, 0, false).inject(&mut all, 8, 0);
        chip.at_voltage(v, 0, true).inject(&mut pers, 8, 0);
        let c_all: u32 = all.iter().map(|w| w.count_ones()).sum();
        let c_pers: u32 = pers.iter().map(|w| w.count_ones()).sum();
        assert!(c_pers < c_all);
        assert!(c_pers > 0);
    }

    #[test]
    fn axis_points_iterate_rate_major_and_match_manual_injection() {
        let axis = ProfiledAxis::tab5(ChipKind::Chip1, 1, vec![0.01, 0.02], 3);
        assert_eq!(axis.n_points(), 6);
        let order: Vec<(usize, usize)> = (0..axis.n_points()).map(|i| axis.point(i)).collect();
        assert_eq!(order, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);

        // Each point's injector must equal the hand-built Tab. 5 loop:
        // voltage from the rate, offset from the stride.
        let chip = axis.synthesize();
        let voltages = axis.voltages(&chip);
        for point in 0..axis.n_points() {
            let (rate, offset) = axis.point(point);
            let mut via_axis = vec![0u8; 2000];
            axis.injector(&chip, &voltages, point).inject(&mut via_axis, 8, 0);
            let mut manual = vec![0u8; 2000];
            let v = chip.voltage_for_rate(axis.rates[rate]);
            chip.at_voltage(v, offset * TAB5_OFFSET_STRIDE, false).inject(&mut manual, 8, 0);
            assert_eq!(via_axis, manual, "point {point}");
        }
    }

    #[test]
    fn axis_keys_encode_every_identity_component() {
        let base = ProfiledAxis::tab5(ChipKind::Chip2, 3, vec![0.0014, 0.0108], 8);
        assert_eq!(base.key(), "chip2-s3-o8x131071-all-r[1.4e-3,1.08e-2]");
        let mut pers = base.clone();
        pers.persistent_only = true;
        assert_ne!(base.key(), pers.key());
        let mut reseeded = base.clone();
        reseeded.chip_seed = 4;
        assert_ne!(base.key(), reseeded.key());
        let mut restrided = base.clone();
        restrided.offset_stride = 1;
        assert_ne!(base.key(), restrided.key());
    }

    #[test]
    fn voltage_for_rate_brackets_target() {
        let chip = ProfiledChip::synthesize(ChipKind::Chip3, 5);
        for &p in &[0.001, 0.01, 0.023] {
            let v = chip.voltage_for_rate(p);
            let measured = chip.bit_error_rate_at(v);
            assert!((measured - p).abs() < p * 0.5 + 1e-4, "p={p}: got {measured}");
        }
    }
}
