//! Quantized weight buffers with bit-exact storage.

use serde::{Deserialize, Serialize};

use crate::{IntegerRepr, QuantScheme};

/// A (possibly asymmetric) quantization range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantRange {
    lo: f32,
    hi: f32,
}

impl QuantRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "range bounds must be finite");
        assert!(lo < hi, "invalid quantization range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Lower bound (`qmin`).
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper bound (`qmax`).
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Width of the range.
    pub fn span(&self) -> f32 {
        self.hi - self.lo
    }

    /// The union of two ranges (used to build global ranges).
    pub fn merge(&self, other: &QuantRange) -> QuantRange {
        QuantRange::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

/// A quantized parameter tensor: one `u8` word per weight, with only the low
/// `m` bits live.
///
/// The words are the *exact* bits an accelerator would hold in SRAM — bit
/// error injection XORs them directly (see `bitrobust-biterror`), and
/// [`QuantizedTensor::dequantize`] faithfully decodes whatever the errors
/// produced, including levels outside the clean range (e.g. `-2^(m-1)` in
/// two's complement).
///
/// # Examples
///
/// ```
/// use bitrobust_quant::QuantScheme;
///
/// let scheme = QuantScheme::rquant(8);
/// let mut q = scheme.quantize(&[0.1f32, -0.4, 0.3]);
/// q.words_mut()[0] ^= 0x80; // flip the MSB of the first weight
/// let perturbed = q.dequantize();
/// assert!((perturbed[0] - 0.1).abs() > 0.2); // MSB flip ~ half the range
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    words: Vec<u8>,
    range: QuantRange,
    scheme: QuantScheme,
}

impl QuantizedTensor {
    pub(crate) fn from_parts(words: Vec<u8>, range: QuantRange, scheme: QuantScheme) -> Self {
        debug_assert!(
            words.iter().all(|&w| w & !scheme.live_mask() == 0),
            "dead bits must be zero"
        );
        Self { words, range, scheme }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the tensor holds no weights.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The stored words (low `m` bits live).
    pub fn words(&self) -> &[u8] {
        &self.words
    }

    /// Mutable access to the stored words, for bit error injection.
    ///
    /// Injectors must respect [`QuantizedTensor::live_mask`]: bits above the
    /// precision are not backed by memory cells.
    pub fn words_mut(&mut self) -> &mut [u8] {
        &mut self.words
    }

    /// The scheme that produced this tensor.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The quantization range.
    pub fn range(&self) -> QuantRange {
        self.range
    }

    /// Precision in bits.
    pub fn bits(&self) -> u8 {
        self.scheme.bits()
    }

    /// Bitmask of live bits within each word.
    pub fn live_mask(&self) -> u8 {
        self.scheme.live_mask()
    }

    /// Decodes all weights into a fresh vector.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.words.len()];
        self.dequantize_into(&mut out);
        out
    }

    /// Decodes all weights into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.words.len(), "output length mismatch");
        for (o, &w) in out.iter_mut().zip(&self.words) {
            *o = self.scheme.dequantize_word(w, self.range);
        }
    }

    /// Decodes the stored words into an `i8` image plus the affine map back
    /// to weight space — the form the integer-domain inference path consumes
    /// (`w[i] ≈ scale * q[i] + offset`).
    ///
    /// Decoded levels span at most `[-2^(m-1), 2^(m-1)]` once bit errors are
    /// in play; the one level that cannot fit an `i8` (unsigned 8-bit word
    /// `0xFF` decodes to `+128`) is handled by re-biasing the whole image by
    /// `-1` and folding the bias into `offset`, so the image is always exact.
    pub fn decode_i8(&self) -> DecodedI8 {
        let (scale, offset) = self.scheme.weight_affine(self.range);
        // Unsigned 8-bit levels span [-127, 128]; shift by -1 into i8 range.
        let rebias =
            if self.bits() == 8 && self.scheme.repr == IntegerRepr::Unsigned { 1 } else { 0 };
        let q = self
            .words
            .iter()
            .map(|&w| {
                let level = self.scheme.decode_level(w) - rebias;
                debug_assert!((-128..=127).contains(&level));
                level as i8
            })
            .collect();
        DecodedI8 { q, scale, offset: scale * rebias as f32 + offset }
    }

    /// Counts differing live bits between two quantized tensors of the same
    /// shape and scheme (used by tests and chip diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &QuantizedTensor) -> usize {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let mask = self.live_mask();
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| ((a ^ b) & mask).count_ones() as usize)
            .sum()
    }
}

/// An integer-domain view of a [`QuantizedTensor`]: the exact decoded levels
/// as `i8` plus the affine map back to weight space,
/// `w[i] ≈ scale * q[i] as f32 + offset`.
///
/// This is the image the int8 inference kernels consume — built once per
/// tensor (or once per bit-error pattern) instead of dequantizing a full
/// f32 replica, which is what shrinks per-pattern campaign memory ~4×.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedI8 {
    /// Decoded (re-biased) quantization levels, one per weight.
    pub q: Vec<i8>,
    /// Multiplier of the affine decode.
    pub scale: f32,
    /// Constant term of the affine decode.
    pub offset: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntegerRepr, QuantScheme};

    #[test]
    fn range_accessors_and_merge() {
        let a = QuantRange::new(-0.5, 0.25);
        assert_eq!(a.lo(), -0.5);
        assert_eq!(a.hi(), 0.25);
        assert!((a.span() - 0.75).abs() < 1e-7);
        let b = QuantRange::new(-0.1, 0.6);
        let m = a.merge(&b);
        assert_eq!((m.lo(), m.hi()), (-0.5, 0.6));
    }

    #[test]
    #[should_panic(expected = "invalid quantization range")]
    fn rejects_empty_range() {
        let _ = QuantRange::new(0.3, 0.3);
    }

    #[test]
    fn msb_flip_changes_value_by_about_half_range_signed() {
        let scheme = QuantScheme::symmetric(8);
        assert_eq!(scheme.repr, IntegerRepr::Signed);
        let weights = [0.1f32];
        let mut q = scheme.quantize(&weights);
        let clean = q.dequantize()[0];
        q.words_mut()[0] ^= 0x80; // sign bit
        let dirty = q.dequantize()[0];
        // The single weight defines qmax = 0.1, so it sits at level 127; the
        // sign-bit flip sends it to level -1, an error of ~qmax = half the
        // [-qmax, qmax] range (the paper's Fig. 4 "yellow" error).
        assert!((dirty - clean).abs() > 0.09, "clean {clean} dirty {dirty}");
    }

    #[test]
    fn lsb_flip_changes_value_by_one_delta() {
        let scheme = QuantScheme::rquant(8);
        let weights: Vec<f32> = (0..16).map(|i| i as f32 * 0.01).collect();
        let mut q = scheme.quantize(&weights);
        let clean = q.dequantize();
        q.words_mut()[3] ^= 0x01;
        let dirty = q.dequantize();
        let delta = q.range().span() / (2.0 * scheme.max_level() as f32);
        assert!(((dirty[3] - clean[3]).abs() - delta).abs() < 1e-6);
        for i in (0..16).filter(|&i| i != 3) {
            assert_eq!(clean[i], dirty[i]);
        }
    }

    #[test]
    fn hamming_distance_counts_live_bits_only() {
        let scheme = QuantScheme::rquant(4);
        let a = scheme.quantize(&[0.0f32, 0.1, 0.2]);
        let mut b = a.clone();
        b.words_mut()[0] ^= 0b0101;
        b.words_mut()[2] ^= 0b0001;
        assert_eq!(a.hamming_distance(&b), 3);
    }

    #[test]
    fn dead_bits_are_zero_for_low_precision() {
        let scheme = QuantScheme::rquant(3);
        let q = scheme.quantize(&[-1.0f32, -0.5, 0.0, 0.5, 1.0]);
        assert!(q.words().iter().all(|&w| w & 0xF8 == 0));
    }

    /// `decode_i8` must reproduce the float decode for every scheme,
    /// including the unsigned 8-bit word `0xFF` whose raw level (+128) does
    /// not fit an `i8` without the re-bias.
    #[test]
    fn decode_i8_matches_float_decode_for_all_words() {
        for bits in [2u8, 4, 8] {
            for scheme in [
                QuantScheme::rquant(bits),
                QuantScheme::normal(bits),
                QuantScheme::symmetric(bits),
                QuantScheme::asymmetric_unsigned(bits),
            ] {
                let weights: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 40.0).collect();
                let mut q = scheme.quantize(&weights);
                // Cover every word value reachable by bit errors, notably
                // the dead code points (0xFF unsigned, 0x80 signed).
                for (i, w) in q.words_mut().iter_mut().enumerate() {
                    *w = (i as u8).wrapping_mul(37) & scheme.live_mask();
                }
                q.words_mut()[0] = scheme.live_mask(); // all-ones (dead point)
                q.words_mut()[1] = 0x80 & scheme.live_mask(); // signed minimum
                let img = q.decode_i8();
                let float = q.dequantize();
                for (i, (&qi, &f)) in img.q.iter().zip(&float).enumerate() {
                    let via_i8 = img.scale * qi as f32 + img.offset;
                    assert!(
                        (via_i8 - f).abs() <= 1e-6 * f.abs().max(1.0),
                        "{} word {i}: {via_i8} vs {f}",
                        scheme.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn bit_error_can_exceed_clean_range_without_panicking() {
        let scheme = QuantScheme::normal(8); // signed
        let mut q = scheme.quantize(&[1.0f32, -1.0]);
        // Force the word to -128 (not producible by clean quantization).
        q.words_mut()[1] = 0x80;
        let v = q.dequantize()[1];
        assert!(v.is_finite());
        assert!(v < -1.0); // -128/127 * qmax
    }
}
