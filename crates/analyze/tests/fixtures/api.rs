// Fixture: deliberately violates the API-hygiene rules. Never compiled —
// only lexed by the integration test (scanned as `crates/core/src/fixture.rs`).

#[deprecated]
pub fn forgotten() {}

#[deprecated(since = "0.1.0")]
pub fn half_hearted() {}

// analyze:allow(not-a-real-rule, the rule id is bogus)
pub fn unknown_rule_allow() {}

// analyze:allow(det-rng)
pub fn reasonless_allow() {}

// analyze:allow(cast-boundary, nothing here ever casts)
pub fn unused_allow() {}
