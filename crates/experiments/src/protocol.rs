//! The shared evaluation protocol: fixed chip seeds and bit-error-rate
//! grids, so every experiment binary measures RErr on the *same* simulated
//! chips (as the paper fixes its 50 error patterns across all models).

use bitrobust_core::{run_grid, CampaignGrid, RobustEval, EVAL_BATCH};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;

/// Base seed for the shared evaluation chips.
pub const CHIP_SEED: u64 = 1000;

/// The paper's CIFAR bit error rate grid (in fractions, not %):
/// 0.01, 0.05, 0.1, 0.5, 1, 1.5, 2, 2.5 percent.
pub fn p_grid_cifar() -> Vec<f64> {
    vec![1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1.5e-2, 2e-2, 2.5e-2]
}

/// The CIFAR100 grid (Fig. 7 middle): 0.001 … 1 percent.
pub fn p_grid_cifar100() -> Vec<f64> {
    vec![1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2]
}

/// The MNIST grid (Fig. 7 right): 1 … 20 percent.
pub fn p_grid_mnist() -> Vec<f64> {
    vec![1e-2, 5e-2, 1e-1, 1.25e-1, 1.5e-1, 2e-1]
}

/// Evaluates RErr on the shared chips for every rate in `ps`.
///
/// The whole sweep runs as **one** fault-injection campaign
/// ([`bitrobust_core::run_grid`]): all `ps.len() x chips` patterns fan out
/// over the thread pool together, instead of nested serial loops. Per-chip
/// errors are bit-identical to calling `robust_eval_uniform` per rate.
pub fn rerr_sweep(
    model: &mut Model,
    scheme: QuantScheme,
    test_ds: &Dataset,
    ps: &[f64],
    chips: usize,
) -> Vec<RobustEval> {
    let grid = CampaignGrid::uniform(scheme, ps.to_vec(), chips, CHIP_SEED);
    run_grid(model, &grid, test_ds, EVAL_BATCH, Mode::Eval).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_positive() {
        for grid in [p_grid_cifar(), p_grid_cifar100(), p_grid_mnist()] {
            assert!(grid.windows(2).all(|w| w[0] < w[1]));
            assert!(grid.iter().all(|&p| p > 0.0 && p < 1.0));
        }
    }
}
