// Fixture: deliberately violates the unsafety rules. Never compiled —
// only lexed by the integration test (scanned as `crates/nn/src/fixture.rs`).

/// Undocumented contract: no rustdoc section tells callers what to uphold.
pub unsafe fn write_unchecked(p: *mut f32) {
    *p = 1.0;
}

pub fn bare_block(x: &mut [f32]) {
    let first = unsafe { x.get_unchecked_mut(0) };
    *first = 1.0;

    unsafe {
        debug_assert!(!x.is_empty(), "dropped in release: cannot guard the deref below");
        *x.as_mut_ptr() = 2.0;
    }
}
