//! In-memory labeled image datasets.

use bitrobust_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labeled image-classification dataset held in memory.
///
/// Images are `[n, channels, height, width]`, labels are class indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    images: Tensor,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if shapes/labels disagree or a label is out of range.
    pub fn new(
        name: impl Into<String>,
        images: Tensor,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(images.ndim(), 4, "images must be [n, c, h, w]");
        assert_eq!(images.dim(0), labels.len(), "image/label count mismatch");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        Self { name: name.into(), images, labels, n_classes }
    }

    /// Dataset name (e.g. `"synth-cifar10/train"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// `[channels, height, width]` of each image.
    pub fn image_shape(&self) -> [usize; 3] {
        [self.images.dim(1), self.images.dim(2), self.images.dim(3)]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The full image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Gathers the examples at `indices` into a batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let [c, h, w] = self.image_shape();
        let sample = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        let src = self.images.data();
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&src[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(vec![indices.len(), c, h, w], data), labels)
    }

    /// Gathers the contiguous example range `start..end` into a batch.
    ///
    /// Equivalent to `batch(&(start..end).collect::<Vec<_>>())` but copies
    /// one contiguous slab instead of gathering per index — the fast path
    /// for sequential evaluation loops, which need no index vector at all.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn batch_range(&self, start: usize, end: usize) -> (Tensor, Vec<usize>) {
        assert!(start <= end, "batch range start {start} exceeds end {end}");
        assert!(end <= self.len(), "batch range end {end} out of bounds (len {})", self.len());
        let [c, h, w] = self.image_shape();
        let sample = c * h * w;
        let data = self.images.data()[start * sample..end * sample].to_vec();
        (Tensor::from_vec(vec![end - start, c, h, w], data), self.labels[start..end].to_vec())
    }

    /// Iterates over shuffled mini-batches for one epoch.
    pub fn shuffled_batches<R: Rng>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.chunks(batch_size).map(|chunk| self.batch(chunk)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn(&[4, 1, 2, 2], |i| i as f32);
        Dataset::new("tiny", images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.image_shape(), [1, 2, 2]);
    }

    #[test]
    fn batch_gathers_in_order() {
        let d = tiny();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(y, vec![0, 0]);
        assert_eq!(x.data()[0], 8.0); // first pixel of sample 2
        assert_eq!(x.data()[4], 0.0); // first pixel of sample 0
    }

    #[test]
    fn batch_range_matches_indexed_batch() {
        let d = tiny();
        let (xr, yr) = d.batch_range(1, 3);
        let (xi, yi) = d.batch(&[1, 2]);
        assert_eq!(xr, xi);
        assert_eq!(yr, yi);
        let (empty, labels) = d.batch_range(2, 2);
        assert_eq!(empty.dim(0), 0);
        assert!(labels.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn batch_range_rejects_overrun() {
        let _ = tiny().batch_range(0, 5);
    }

    #[test]
    fn shuffled_batches_cover_dataset() {
        let d = tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batches = d.shuffled_batches(3, &mut rng);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(batches[0].1.len(), 3);
        assert_eq!(batches[1].1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new("bad", images, vec![5], 2);
    }
}
