//! The trainable model wrapper.

use std::io::{self, Read, Write};

use bitrobust_tensor::{read_tensors, write_tensors, Tensor};

use crate::{Layer, Mode, Param, Sequential};

/// A named network with convenience accessors over its parameters.
///
/// `Model` wraps a [`Sequential`] root and provides the operations the
/// robustness pipeline needs: snapshotting parameter tensors (so quantized
/// or bit-error-perturbed weights can be swapped in and out around forward
/// passes), clipping, gradient zeroing, and (de)serialization.
///
/// Parameter order is the deterministic visit order of the layer tree; this
/// order defines the linear weight-to-memory mapping used for bit error
/// injection.
pub struct Model {
    name: String,
    root: Sequential,
}

// The immutable `infer` path plus `Layer: Send + Sync` make a model shareable
// across evaluation workers; keep that guarantee from regressing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Model>();
};

impl Clone for Model {
    /// Duplicates the model's parameters and structure (activation caches
    /// and accumulated gradients start fresh in the copy).
    fn clone(&self) -> Self {
        Self { name: self.name.clone(), root: self.root.clone() }
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model").field("name", &self.name).field("root", &self.root).finish()
    }
}

impl Model {
    /// Wraps a layer chain as a model.
    pub fn new(name: impl Into<String>, root: Sequential) -> Self {
        Self { name: name.into(), root }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared access to the root layer chain (for structural consumers
    /// such as the integer-domain lowering in [`crate::lower_layers`]).
    pub fn root(&self) -> &Sequential {
        &self.root
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.root.forward(input, mode)
    }

    /// Immutable inference pass: bit-identical to [`Model::forward`] for the
    /// same non-training `mode`, but requires no exclusive access, so one
    /// model can serve concurrent evaluation workers.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`Mode::Train`].
    pub fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        self.root.infer(input, mode)
    }

    /// Backward pass; returns the input gradient and accumulates parameter
    /// gradients.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.root.backward(grad_output)
    }

    /// Visits all parameters in deterministic order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.root.visit_params(visitor);
    }

    /// Visits all parameters immutably, in the same order as
    /// [`Model::visit_params`]. Read-only consumers (quantization,
    /// statistics, serialization) use this so they can share a `&Model`
    /// with concurrent evaluation workers.
    pub fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        self.root.visit_params_ref(visitor);
    }

    /// Visits every layer in the tree depth-first (containers before their
    /// children), including nested layers inside residual blocks.
    pub fn visit_layers(&self, visitor: &mut dyn FnMut(&dyn Layer)) {
        fn walk(layer: &dyn Layer, visitor: &mut dyn FnMut(&dyn Layer)) {
            visitor(layer);
            layer.visit_children(&mut |child| walk(child, visitor));
        }
        walk(&self.root, visitor);
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.numel());
        n
    }

    /// Number of parameter tensors.
    pub fn num_param_tensors(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |_| n += 1);
        n
    }

    /// Clones all parameter tensors in visit order.
    pub fn param_tensors(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params_ref(&mut |p| out.push(p.value().clone()));
        out
    }

    /// Overwrites all parameter tensors from `values` (visit order).
    ///
    /// # Panics
    ///
    /// Panics if the count or any shape differs.
    pub fn set_param_tensors(&mut self, values: &[Tensor]) {
        let mut index = 0;
        self.visit_params(&mut |p| {
            let v = values.get(index).expect("fewer tensors than parameters");
            assert_eq!(v.shape(), p.value().shape(), "parameter {index} shape mismatch");
            p.value_mut().data_mut().copy_from_slice(v.data());
            index += 1;
        });
        assert_eq!(index, values.len(), "more tensors than parameters");
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Clones all accumulated gradient tensors in visit order — the
    /// extraction half of the data-parallel gradient buffer API. A training
    /// replica runs `forward`/`backward` on its shard of a mini-batch, then
    /// its gradients are pulled out with this and merged into the primary
    /// model via [`Model::accumulate_grads`] (after a deterministic
    /// [`crate::tree_reduce_grads`] across shards).
    pub fn grad_tensors(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params_ref(&mut |p| out.push(p.grad().clone()));
        out
    }

    /// Adds `grads` (visit order, e.g. from [`Model::grad_tensors`] on a
    /// replica) onto this model's accumulated gradients — the merge half of
    /// the data-parallel gradient buffer API.
    ///
    /// # Panics
    ///
    /// Panics if the count or any shape differs.
    pub fn accumulate_grads(&mut self, grads: &[Tensor]) {
        let mut index = 0;
        self.visit_params(&mut |p| {
            let g = grads.get(index).expect("fewer gradient tensors than parameters");
            p.grad_mut().axpy(1.0, g);
            index += 1;
        });
        assert_eq!(index, grads.len(), "more gradient tensors than parameters");
    }

    /// Projects every parameter onto `[-wmax, wmax]` (the paper's weight
    /// clipping, Alg. 1 line 6).
    ///
    /// # Panics
    ///
    /// Panics if `wmax` is not positive.
    pub fn clip_params(&mut self, wmax: f32) {
        assert!(wmax > 0.0, "wmax must be positive");
        self.visit_params(&mut |p| {
            p.value_mut().map_inplace(|v| v.clamp(-wmax, wmax));
        });
    }

    /// Releases all cached activations.
    pub fn clear_caches(&mut self) {
        self.root.clear_cache();
    }

    /// Serializes all parameters to `w` (names are `p{index}.{param name}`).
    ///
    /// Note: non-parameter buffers (BatchNorm running statistics) are not
    /// serialized; models using BatchNorm should be re-calibrated or saved
    /// through a higher-level mechanism.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_params<W: Write>(&self, w: W) -> io::Result<()> {
        let mut entries = Vec::new();
        let mut index = 0;
        self.visit_params_ref(&mut |p| {
            entries.push((format!("p{index}.{}", p.name()), p.value().clone()));
            index += 1;
        });
        write_tensors(w, &entries)
    }

    /// Restores parameters previously written by [`Model::save_params`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or shapes do not match this model.
    pub fn load_params<R: Read>(&mut self, r: R) -> io::Result<()> {
        let entries = read_tensors(r)?;
        let values: Vec<Tensor> = entries.into_iter().map(|(_, t)| t).collect();
        self.set_param_tensors(&values);
        Ok(())
    }

    /// A compact per-layer summary (layer types and parameter counts).
    pub fn summary(&self) -> String {
        let n_params = self.num_params();
        let types: Vec<&str> = self.root.layers().map(|l| l.layer_type()).collect();
        format!("{}: {} layers, {} params [{}]", self.name, types.len(), n_params, types.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::SeedableRng;

    fn toy_model(seed: u64) -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 3, &mut rng));
        Model::new("toy", net)
    }

    #[test]
    fn param_snapshot_round_trip() {
        let mut m = toy_model(1);
        let snapshot = m.param_tensors();
        assert_eq!(snapshot.len(), 4);
        let mut m2 = toy_model(2);
        let x = Tensor::full(&[1, 4], 0.5);
        let y1 = m.forward(&x, Mode::Eval);
        m2.set_param_tensors(&snapshot);
        let y2 = m2.forward(&x, Mode::Eval);
        assert_eq!(y1, y2);
    }

    #[test]
    fn num_params_counts_scalars() {
        let m = toy_model(3);
        assert_eq!(m.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(m.num_param_tensors(), 4);
    }

    #[test]
    fn clip_params_bounds_all_values() {
        let mut m = toy_model(4);
        m.visit_params(&mut |p| p.value_mut().map_inplace(|_| 5.0));
        m.clip_params(0.1);
        m.visit_params(&mut |p| {
            assert!(p.value().abs_max() <= 0.1);
        });
    }

    #[test]
    fn save_and_load_params() {
        let mut m = toy_model(5);
        let mut buf = Vec::new();
        m.save_params(&mut buf).unwrap();
        let mut m2 = toy_model(6);
        m2.load_params(&buf[..]).unwrap();
        let x = Tensor::full(&[2, 4], -0.3);
        assert_eq!(m.forward(&x, Mode::Eval), m2.forward(&x, Mode::Eval));
    }

    #[test]
    fn infer_matches_forward_in_eval_mode() {
        let mut m = toy_model(8);
        let x = Tensor::full(&[3, 4], 0.25);
        let via_forward = m.forward(&x, Mode::Eval);
        let via_infer = m.infer(&x, Mode::Eval);
        assert_eq!(via_forward, via_infer);
    }

    #[test]
    #[should_panic(expected = "non-training mode")]
    fn infer_rejects_train_mode() {
        let m = toy_model(9);
        let _ = m.infer(&Tensor::zeros(&[1, 4]), Mode::Train);
    }

    #[test]
    fn clone_copies_weights_and_detaches_them() {
        let mut m = toy_model(10);
        let mut copy = m.clone();
        let x = Tensor::full(&[2, 4], -0.7);
        assert_eq!(m.forward(&x, Mode::Eval), copy.forward(&x, Mode::Eval));
        // Mutating the copy must not write through to the original.
        copy.visit_params(&mut |p| p.value_mut().map_inplace(|v| v + 1.0));
        assert_ne!(m.forward(&x, Mode::Eval), copy.forward(&x, Mode::Eval));
    }

    #[test]
    fn model_can_be_shared_across_threads_for_infer() {
        let mut m = toy_model(11);
        let x = Tensor::full(&[2, 4], 0.5);
        let expected = m.forward(&x, Mode::Eval);
        let outputs = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (m, x) = (&m, &x);
                    s.spawn(move || m.infer(x, Mode::Eval))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("thread panicked")).collect::<Vec<_>>()
        });
        for y in outputs {
            assert_eq!(y, expected);
        }
    }

    #[test]
    fn grad_tensors_round_trip_through_accumulate() {
        use crate::CrossEntropyLoss;

        let mut m = toy_model(20);
        let x = Tensor::full(&[2, 4], 0.5);
        let labels = [0usize, 2];

        // Compute a reference gradient directly on the model.
        m.zero_grads();
        let logits = m.forward(&x, Mode::Train);
        let out = CrossEntropyLoss::new().compute(&logits, &labels);
        m.backward(&out.grad);
        let reference = m.grad_tensors();
        assert_eq!(reference.len(), m.num_param_tensors());

        // A replica doing the same work hands its buffers back losslessly.
        let mut replica = m.clone();
        replica.zero_grads();
        let logits = replica.forward(&x, Mode::Train);
        let out = CrossEntropyLoss::new().compute(&logits, &labels);
        replica.backward(&out.grad);
        let shard = replica.grad_tensors();
        assert_eq!(shard, reference);

        // Accumulating onto zeroed gradients reproduces the buffer; a second
        // accumulation doubles it (gradients accumulate, Alg. 1 style).
        m.zero_grads();
        m.accumulate_grads(&shard);
        assert_eq!(m.grad_tensors(), reference);
        m.accumulate_grads(&shard);
        let doubled = m.grad_tensors();
        for (d, r) in doubled.iter().zip(&reference) {
            for (dv, rv) in d.data().iter().zip(r.data()) {
                assert_eq!(*dv, rv + rv);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fewer gradient tensors")]
    fn accumulate_grads_rejects_short_input() {
        let mut m = toy_model(21);
        m.accumulate_grads(&[Tensor::zeros(&[8, 4])]);
    }

    #[test]
    fn visit_params_ref_matches_mutable_order() {
        let mut m = toy_model(12);
        let mut mutable = Vec::new();
        m.visit_params(&mut |p| mutable.push((p.name().to_string(), p.value().clone())));
        let mut immutable = Vec::new();
        m.visit_params_ref(&mut |p| immutable.push((p.name().to_string(), p.value().clone())));
        assert_eq!(mutable, immutable);
        assert_eq!(m.param_tensors().len(), m.num_param_tensors());
    }

    #[test]
    fn visit_layers_walks_the_tree() {
        let m = toy_model(13);
        let mut types = Vec::new();
        m.visit_layers(&mut |l| types.push(l.layer_type()));
        assert_eq!(types, vec!["Sequential", "Linear", "Relu", "Linear"]);
    }

    #[test]
    fn summary_mentions_layers_and_params() {
        let m = toy_model(7);
        let s = m.summary();
        assert!(s.contains("Linear"));
        assert!(s.contains("Relu"));
        assert!(s.contains(&format!("{}", 4 * 8 + 8 + 8 * 3 + 3)));
    }

    /// Guards the `visit_params` / `visit_params_ref` pairing contract over
    /// every parameter-bearing layer and container in the crate: a layer
    /// that overrides only the mutable visitor would silently vanish from
    /// quantization and serialization (which use the ref path).
    #[test]
    fn every_param_layer_agrees_between_ref_and_mut_visitors() {
        use crate::{BatchNorm2d, Conv2d, Flatten, GroupNorm, Residual};

        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, &mut rng));
        body.push(GroupNorm::new(2, 1));
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 2, 3, 1, 1, &mut rng));
        net.push(BatchNorm2d::new(2));
        net.push(Residual::with_shortcut(body, Conv2d::new(2, 2, 1, 1, 0, &mut rng)));
        net.push(Flatten::new());
        net.push(Linear::new(2 * 4 * 4, 3, &mut rng));
        let mut m = Model::new("all-layers", net);

        let mut mutable = Vec::new();
        m.visit_params(&mut |p| mutable.push((p.name().to_string(), p.value().clone())));
        let mut immutable = Vec::new();
        m.visit_params_ref(&mut |p| immutable.push((p.name().to_string(), p.value().clone())));
        assert!(!mutable.is_empty());
        assert_eq!(mutable, immutable, "ref visitor must mirror the mutable visitor exactly");

        // The tree walk must descend into the residual body and shortcut.
        let mut types = Vec::new();
        m.visit_layers(&mut |l| types.push(l.layer_type()));
        assert_eq!(types.iter().filter(|t| **t == "Conv2d").count(), 3);
        assert_eq!(types.iter().filter(|t| **t == "Sequential").count(), 2);
    }
}
