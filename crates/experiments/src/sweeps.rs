//! Experiment-side glue for the durable sweep orchestrator
//! ([`bitrobust_core::sweep`]): store locations under `target/sweeps/`,
//! zoo-spec → [`SweepModel`] wiring, and shared progress output.
//!
//! Binaries that run multi-model campaigns (`tab4_randbet`,
//! `tab5_profiled`, `fig7_summary`) open their store with
//! [`open_sweep_store`] — honoring `--fresh`/`--resume` — and hand it to
//! [`bitrobust_core::run_sweep`]; a killed run continues where it left
//! off on the next invocation, byte-identically.

use std::path::PathBuf;

use bitrobust_core::{EvalResult, SweepCell, SweepModel, SweepStore, TrainReport};
use bitrobust_nn::Model;

use crate::cli::ExpOptions;
use crate::zoo::ZooSpec;

/// Directory holding the experiment binaries' sweep stores
/// (`$BITROBUST_SWEEPS`, or `target/sweeps/` in the workspace).
pub fn sweep_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BITROBUST_SWEEPS") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/sweeps")
}

/// Opens the named sweep store (`<sweep_dir>/<name>.jsonl`), deleting it
/// first under `--fresh`. Reports the resume position on stderr so a
/// rerun after an interruption is visible.
///
/// # Panics
///
/// Panics if the store cannot be opened or parsed — a corrupt store must
/// be inspected or deleted, never silently recomputed over.
pub fn open_sweep_store(name: &str, opts: &ExpOptions) -> SweepStore {
    let path = sweep_dir().join(format!("{name}.jsonl"));
    if opts.fresh && path.exists() {
        std::fs::remove_file(&path).expect("remove sweep store for --fresh");
    }
    let store = SweepStore::open(&path).expect("open sweep store");
    if !store.is_empty() {
        eprintln!(
            "sweep store {}: resuming past {} stored cells (use --fresh to recompute)",
            store.path().display(),
            store.len()
        );
    }
    store
}

/// Pairs warmed zoo models with their specs as sweep entries: the spec's
/// cache key is the model identity and its training scheme is the
/// evaluation scheme.
///
/// # Panics
///
/// Panics if a spec trains in float (`scheme: None`) — the evaluation
/// scheme would be ambiguous — or if `specs` and `warmed` differ in
/// length.
pub fn sweep_models<'a>(
    specs: &[ZooSpec],
    warmed: &'a [(Model, TrainReport)],
) -> Vec<SweepModel<'a>> {
    assert_eq!(specs.len(), warmed.len(), "one warmed model per spec");
    specs
        .iter()
        .zip(warmed)
        .map(|(spec, (model, _))| {
            let scheme = spec
                .scheme
                .expect("sweep entries need a quantization scheme (float specs are ambiguous)");
            SweepModel::new(spec.key(), scheme, model)
        })
        .collect()
}

/// The shared progress style for orchestrated sweeps: one dot per cell
/// (`.` evaluated, `,` replayed from the store), a newline after the last
/// cell.
pub fn sweep_progress(total_cells: usize) -> impl FnMut(&SweepCell, &EvalResult) {
    use std::io::Write;
    let mut done = 0usize;
    move |cell, _result| {
        done += 1;
        let mut err = std::io::stderr();
        let _ = write!(err, "{}", if cell.resumed { ',' } else { '.' });
        if done == total_cells {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}
