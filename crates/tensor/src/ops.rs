//! Matrix products and related 2-D kernels.
//!
//! Three matmul variants cover the needs of forward and backward passes
//! without materializing transposes:
//!
//! * [`matmul`]      — `C = A·B`     with `A: [M,K]`, `B: [K,N]`
//! * [`matmul_nt`]   — `C = A·Bᵀ`    with `A: [M,K]`, `B: [N,K]`
//! * [`matmul_tn`]   — `C = Aᵀ·B`    with `A: [K,M]`, `B: [K,N]`
//!
//! All three route through the packed, cache-blocked kernel in [`crate::gemm`]:
//! transposition is absorbed when the operand panels are packed, so there is a
//! single register-tiled inner loop to keep fast and a single reduction shape
//! to keep deterministic (see the `gemm` module docs for the blocking layout
//! and the determinism contract). The original saxpy/dot formulations survive
//! as [`matmul_reference`], [`matmul_nt_reference`], and
//! [`matmul_tn_reference`] — slow paths used by tests and benchmarks to pin
//! the packed kernel.
//!
//! Batch-level parallelism lives in the layer implementations (see
//! `bitrobust-nn`), so these kernels stay single-threaded and allocation-free
//! via the `*_into` forms.

use crate::gemm::{gemm, GemmOperand};
use crate::Tensor;

/// `C = A·B`. See the module docs for shapes.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _k, n) = mm_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    matmul_into(&mut c, a, b);
    c
}

/// `C = A·B`, writing into a pre-allocated `c` (overwritten, not accumulated).
///
/// # Panics
///
/// Panics on any shape mismatch between `c`, `a`, and `b`.
pub fn matmul_into(c: &mut Tensor, a: &Tensor, b: &Tensor) {
    let (m, k, n) = mm_dims(a, b);
    assert_eq!(c.shape(), &[m, n], "output shape mismatch");
    c.fill(0.0);
    matmul_accumulate(c.data_mut(), a.data(), b.data(), m, k, n);
}

/// `c += A·B` on raw row-major buffers. Exposed for layer kernels that
/// operate on sub-slices of batched tensors.
///
/// # Panics
///
/// Panics if the buffer lengths do not match `m*k`, `k*n`, `m*n`.
pub fn matmul_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(c.len(), m * n, "out buffer length");
    gemm(c, n, GemmOperand::row_major(a, k), GemmOperand::row_major(b, n), m, k, n);
}

/// `C = A·Bᵀ` with `A: [M,K]`, `B: [N,K]`.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the K dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _k, n) = nt_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    matmul_nt_into(&mut c, a, b);
    c
}

/// `C = A·Bᵀ`, writing into a pre-allocated `c` (overwritten, not
/// accumulated).
///
/// # Panics
///
/// Panics on any shape mismatch between `c`, `a`, and `b`.
pub fn matmul_nt_into(c: &mut Tensor, a: &Tensor, b: &Tensor) {
    let (m, k, n) = nt_dims(a, b);
    assert_eq!(c.shape(), &[m, n], "output shape mismatch");
    c.fill(0.0);
    matmul_nt_accumulate(c.data_mut(), a.data(), b.data(), m, k, n);
}

/// `c += A·Bᵀ` on raw buffers; see [`matmul_nt`].
///
/// # Panics
///
/// Panics if the buffer lengths do not match `m*k`, `n*k`, `m*n`.
pub fn matmul_nt_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), n * k, "rhs buffer length");
    assert_eq!(c.len(), m * n, "out buffer length");
    // B is stored [N, K]; the packed kernel reads it as its transpose [K, N].
    gemm(c, n, GemmOperand::row_major(a, k), GemmOperand::transposed(b, k), m, k, n);
}

/// `C = Aᵀ·B` with `A: [K,M]`, `B: [K,N]`.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the K dimensions differ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _k, n) = tn_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    matmul_tn_into(&mut c, a, b);
    c
}

/// `C = Aᵀ·B`, writing into a pre-allocated `c` (overwritten, not
/// accumulated).
///
/// # Panics
///
/// Panics on any shape mismatch between `c`, `a`, and `b`.
pub fn matmul_tn_into(c: &mut Tensor, a: &Tensor, b: &Tensor) {
    let (m, k, n) = tn_dims(a, b);
    assert_eq!(c.shape(), &[m, n], "output shape mismatch");
    c.fill(0.0);
    matmul_tn_accumulate(c.data_mut(), a.data(), b.data(), m, k, n);
}

/// `c += Aᵀ·B` on raw buffers; see [`matmul_tn`].
///
/// # Panics
///
/// Panics if the buffer lengths do not match `k*m`, `k*n`, `m*n`.
pub fn matmul_tn_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    assert_eq!(c.len(), m * n, "out buffer length");
    // A is stored [K, M]; the packed kernel reads it as its transpose [M, K].
    gemm(c, n, GemmOperand::transposed(a, m), GemmOperand::row_major(b, n), m, k, n);
}

/// Reference `C = A·B`: the original saxpy triple loop (with its
/// vectorization-hostile zero-skip branch), kept for pinning the packed
/// kernel in tests and benchmarks.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions differ.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = mm_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    let (cd, ad, bd) = (c.data_mut(), a.data(), b.data());
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let c_row = &mut cd[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
    c
}

/// Reference `C = A·Bᵀ`: the original dot-product formulation.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the K dimensions differ.
pub fn matmul_nt_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = nt_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    let (cd, ad, bd) = (c.data_mut(), a.data(), b.data());
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let c_row = &mut cd[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            *c_v += dot(a_row, b_row);
        }
    }
    c
}

/// Reference `C = Aᵀ·B`: the original rank-1-update formulation.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the K dimensions differ.
pub fn matmul_tn_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = tn_dims(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    let (cd, ad, bd) = (c.data_mut(), a.data(), b.data());
    for i in 0..m {
        let c_row = &mut cd[i * n..(i + 1) * n];
        for p in 0..k {
            let a_pi = ad[p * m + i];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_pi * b_v;
            }
        }
    }
    c
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Four-way unrolled accumulation: keeps the FP dependency chain short so
    // LLVM vectorizes without -ffast-math.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        acc[0] += ai[0] * bi[0];
        acc[1] += ai[1] * bi[1];
        acc[2] += ai[2] * bi[2];
        acc[3] += ai[3] * bi[3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Transpose of a 2-D tensor.
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
pub fn transpose(t: &Tensor) -> Tensor {
    assert_eq!(t.ndim(), 2, "transpose requires a 2-D tensor");
    let (m, n) = (t.dim(0), t.dim(1));
    let src = t.data();
    let mut out = Tensor::zeros(&[n, m]);
    let dst = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
    out
}

/// Row-wise softmax of a 2-D tensor of logits.
///
/// Numerically stable (subtracts each row's max before exponentiation).
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax_rows requires a 2-D tensor");
    let (rows, cols) = (logits.dim(0), logits.dim(1));
    let mut out = logits.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

fn mm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.ndim(), 2, "lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "rhs must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "inner dimension mismatch: [{m},{k}] x [{kb},{n}]");
    (m, k, n)
}

fn nt_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.ndim(), 2, "lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "rhs must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, kb) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "inner dimension mismatch: [{m},{k}] x [{n},{kb}]^T");
    (m, k, n)
}

fn tn_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.ndim(), 2, "lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "rhs must be 2-D");
    let (k, m) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "inner dimension mismatch: [{k},{m}]^T x [{kb},{n}]");
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 16, 4), (17, 9, 13)] {
            let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_is_bit_identical_to_sequential_reduction() {
        // The packed kernel's contract: every output element is accumulated
        // in ascending-k order with a single accumulator — i.e. exactly the
        // naive ijk loop.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let a = Tensor::rand_uniform(&[17, 300], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[300, 13], -1.0, 1.0, &mut rng);
        let (packed, naive) = (matmul(&a, &b), naive_matmul(&a, &b));
        let pb: Vec<u32> = packed.data().iter().map(|v| v.to_bits()).collect();
        let nb: Vec<u32> = naive.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, nb);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let a = Tensor::rand_uniform(&[6, 11], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[9, 11], -1.0, 1.0, &mut rng);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &transpose(&b)), 1e-4);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let a = Tensor::rand_uniform(&[11, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[11, 9], -1.0, 1.0, &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&transpose(&a), &b), 1e-4);
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(10);
        let a = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 7], -1.0, 1.0, &mut rng);
        let mut c = Tensor::full(&[5, 4], 123.0);
        matmul_nt_into(&mut c, &a, &b);
        assert_eq!(c, matmul_nt(&a, &b), "matmul_nt_into must overwrite");
        let at = transpose(&a); // [7, 5]
        let bt = transpose(&b); // [7, 4]
        let mut c2 = Tensor::full(&[5, 4], -7.0);
        matmul_tn_into(&mut c2, &at, &bt);
        assert_eq!(c2, matmul_tn(&at, &bt), "matmul_tn_into must overwrite");
    }

    #[test]
    fn reference_kernels_agree_with_packed_path() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[9, 21], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[21, 6], -1.0, 1.0, &mut rng);
        assert_close(&matmul_reference(&a, &b), &matmul(&a, &b), 1e-4);
        let bt = transpose(&b); // [6, 21]
        assert_close(&matmul_nt_reference(&a, &bt), &matmul_nt(&a, &bt), 1e-4);
        let at = transpose(&a); // [21, 9]
        assert_close(&matmul_tn_reference(&at, &b), &matmul_tn(&at, &b), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 5]));
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..7).map(|i| (i * 2) as f32).collect();
        let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), expected);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
        let t = Tensor::rand_uniform(&[5, 8], -1.0, 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&t)), t);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let s = softmax_rows(&t);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Monotone in logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1, 3], vec![1000.0, 1001.0, 999.0]);
        let s = softmax_rows(&t);
        assert!(s.data().iter().all(|p| p.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }
}
