//! `bitrobust-analyze`: the workspace's own static-analysis pass.
//!
//! The reproduction's credibility rests on invariants no compiler checks:
//! byte-identical results across thread counts, fixed-shape serial
//! reductions, pointer disjointness in the hand-rolled thread pool, and
//! exactness of the quantization boundary. This crate walks every `.rs`
//! source in the workspace with a small hand-rolled lexer
//! ([`lexer`] — strings/comments/attributes aware, zero dependencies) and
//! enforces a rule engine ([`rules`]) of repo-specific lints, with inline
//! [`// analyze:allow(rule, reason)`](context::Suppression) suppressions
//! and a committed content-hash [`baseline`] so the pass runs strict
//! (`--deny`) in CI from day one.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p bitrobust-analyze -- --deny --json ANALYZE_report.json
//! ```
//!
//! See the README "Static analysis" section for the rule catalogue and
//! the workflow around allows and the baseline.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use context::FileContext;
use report::Report;
use rules::Finding;

/// Directory names never descended into: build output, vendored stubs
/// (third-party conventions, not ours), VCS internals, and the analyzer's
/// own rule fixtures (which *deliberately* violate every rule).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Top-level entries scanned for `.rs` sources, relative to the workspace
/// root.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Recursively collects the workspace's `.rs` files, sorted for
/// deterministic report and baseline ordering.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every source under `root`, applies the baseline (empty slice
/// for none), and assembles the [`Report`].
pub fn analyze_workspace(
    root: &Path,
    baseline_entries: &[baseline::BaselineEntry],
    baseline_errors: Vec<baseline::BaselineError>,
) -> std::io::Result<Report> {
    let files = collect_sources(root)?;
    let files_scanned = files.len();
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let ctx = FileContext::new(rel, &src);
        let (file_findings, file_suppressed) = rules::analyze_file(&ctx);
        findings.extend(file_findings);
        suppressed += file_suppressed;
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let (fresh, baselined, stale) = baseline::apply(findings, baseline_entries);
    Ok(Report { fresh, baselined, stale, baseline_errors, suppressed, files_scanned })
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
