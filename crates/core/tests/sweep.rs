//! Integration suite for the durable sweep orchestrator: multi-model
//! campaigns must match per-model grids byte-for-byte, resume must skip
//! stored cells without changing a single bit, and a run killed without
//! warning (`abort`, the `SIGKILL` analogue) must leave a store that a
//! rerun completes into a byte-identical final state.

use std::path::PathBuf;

use bitrobust_biterror::{ChipKind, ProfiledAxis};
use bitrobust_core::{
    run_grid, run_sweep, Campaign, CampaignGrid, ChipAxis, QuantizedModel, SweepAxis, SweepModel,
    SweepOptions, SweepStore, EVAL_BATCH,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

mod common;
// The canonical kill-and-resume plan (2 models × profiled + uniform axes
// = 16 cells) lives in `common` so the determinism thread matrix pins the
// exact same cells this suite kills and resumes.
use common::{run_sweep_fixture as run_plan, sweep_fixture_models as two_models};

/// Env var pointing the abort worker at its store file.
const KILL_STORE_ENV: &str = "BITROBUST_SWEEP_KILL_STORE";

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitrobust-sweep-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn multi_model_sweep_matches_per_model_grids_bit_for_bit() {
    let (a, b, test) = two_models();
    let scheme = QuantScheme::rquant(8);
    let rates = vec![0.001, 0.01];
    let axes = vec![SweepAxis::new("uniform", ChipAxis::uniform(rates.clone(), 3, 1000))];
    let models = vec![SweepModel::new("mlp-a", scheme, &a), SweepModel::new("mlp-b", scheme, &b)];
    let results = run_sweep(&models, &axes, &test, &SweepOptions::default(), None, |_, _| {});

    let grid = CampaignGrid::uniform(scheme, rates, 3, 1000);
    for (mi, model) in [&a, &b].into_iter().enumerate() {
        let alone = run_grid(model, &grid, &test, EVAL_BATCH, Mode::Eval).remove(0);
        assert_eq!(results.robust(mi, 0), alone, "model {mi} must match its standalone grid");
    }
}

#[test]
fn profiled_sweep_matches_manual_tab5_loop_bit_for_bit() {
    let (a, _, test) = two_models();
    let scheme = QuantScheme::rquant(8);
    let axis = ProfiledAxis::tab5(ChipKind::Chip1, 0, vec![0.01, 0.02], 2);
    let models = vec![SweepModel::new("mlp-a", scheme, &a)];
    let axes = vec![SweepAxis::new("chip1", ChipAxis::Profiled(axis.clone()))];
    let results = run_sweep(&models, &axes, &test, &SweepOptions::default(), None, |_, _| {});

    // The pre-orchestrator tab5 path: materialize every (rate, offset)
    // image up front and run one eager campaign.
    let chip = axis.synthesize();
    let q0 = QuantizedModel::quantize(&a, scheme);
    let mut images = Vec::new();
    for &rate in &axis.rates {
        let v = chip.voltage_for_rate(rate);
        for k in 0..axis.n_offsets {
            let mut q = q0.clone();
            q.inject(&chip.at_voltage(v, k * axis.offset_stride, false));
            images.push(q);
        }
    }
    let legacy = Campaign::new(&a, &test).batch_size(EVAL_BATCH).mode(Mode::Eval).run(&images);
    assert_eq!(results.cells(), &legacy[..], "sweep cells must equal the legacy tab5 loop");
}

/// A whole `RobustEval` survives the store: aggregating replayed cells
/// yields bit-identical means/stds/errors to aggregating the originals.
#[test]
fn robust_eval_round_trips_through_stored_cells() {
    use bitrobust_core::{CellRecord, RobustEval};
    let (a, _, test) = two_models();
    let scheme = QuantScheme::rquant(8);
    let axis = ChipAxis::uniform(vec![0.02], 4, 1000);
    let models = vec![SweepModel::new("mlp-a", scheme, &a)];
    let axes = vec![SweepAxis::new("u", axis)];
    let results = run_sweep(&models, &axes, &test, &SweepOptions::default(), None, |_, _| {});
    let direct = RobustEval::from_results(results.cells());

    let path = temp_path("robust-roundtrip");
    let _ = std::fs::remove_file(&path);
    {
        let mut store = SweepStore::open(&path).unwrap();
        for (i, cell) in results.cells().iter().enumerate() {
            store
                .append(&CellRecord {
                    key: i as u64,
                    model: "mlp-a",
                    scheme: "q8laun",
                    axis: "u",
                    point: i,
                    result: *cell,
                })
                .unwrap();
        }
    }
    let store = SweepStore::open(&path).unwrap();
    let replayed: Vec<_> =
        (0..results.cells().len() as u64).map(|key| store.get(key).expect("stored cell")).collect();
    assert_eq!(RobustEval::from_results(&replayed), direct);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_skips_stored_cells_and_reproduces_bits() {
    let (a, b, test) = two_models();
    let single_path = temp_path("resume-single");
    let partial_path = temp_path("resume-partial");
    for p in [&single_path, &partial_path] {
        let _ = std::fs::remove_file(p);
    }

    // Single-shot reference.
    let mut single = SweepStore::open(&single_path).unwrap();
    let reference = run_plan((&a, &b), &test, Some(&mut single), |_| {});
    assert_eq!(reference.evaluated, 16);
    assert_eq!(single.len(), 16);

    // Re-running against the full store evaluates nothing and replays
    // identical bits.
    let mut single = SweepStore::open(&single_path).unwrap();
    let replayed = run_plan((&a, &b), &test, Some(&mut single), |_| {});
    assert_eq!(replayed.evaluated, 0);
    assert_eq!(replayed.resumed, 16);
    assert_eq!(replayed.cells(), reference.cells());

    // A prefix of the store (an interrupted run's file) resumes to the
    // same bits and the same store fingerprint.
    let text = std::fs::read_to_string(&single_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let prefix: String = lines[..5].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&partial_path, prefix).unwrap();
    let mut partial = SweepStore::open(&partial_path).unwrap();
    let resumed = run_plan((&a, &b), &test, Some(&mut partial), |_| {});
    assert_eq!(resumed.evaluated, 11);
    assert_eq!(resumed.resumed, 5);
    assert_eq!(resumed.cells(), reference.cells(), "resumed results must be byte-identical");
    let single = SweepStore::open(&single_path).unwrap();
    assert_eq!(partial.fingerprint(), single.fingerprint());

    for p in [&single_path, &partial_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// Hidden worker for [`killed_sweep_resumes_byte_identically`]: starts the
/// canonical plan against the store named by [`KILL_STORE_ENV`] and
/// `abort()`s after three cells have been evaluated and appended —
/// no unwinding, no destructors, no flushes, exactly like `SIGKILL`.
#[test]
#[ignore = "abort worker for killed_sweep_resumes_byte_identically"]
fn sweep_kill_worker() {
    let path = std::env::var(KILL_STORE_ENV).expect("worker needs the store path env var");
    let (a, b, test) = two_models();
    let mut store = SweepStore::open(path).unwrap();
    run_plan((&a, &b), &test, Some(&mut store), |evaluated| {
        if evaluated == 3 {
            std::process::abort();
        }
    });
    unreachable!("worker must die mid-sweep");
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    let kill_path = temp_path("killed");
    let single_path = temp_path("killed-reference");
    for p in [&kill_path, &single_path] {
        let _ = std::fs::remove_file(p);
    }

    // Run the worker subprocess and let it die mid-sweep.
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(&exe)
        .args(["sweep_kill_worker", "--exact", "--ignored", "--nocapture"])
        .env(KILL_STORE_ENV, &kill_path)
        .output()
        .expect("spawn kill worker");
    assert!(
        !output.status.success(),
        "worker must die mid-sweep, got: {}",
        String::from_utf8_lossy(&output.stdout)
    );

    // The store survives with a prefix of completed cells.
    let mut store = SweepStore::open(&kill_path).expect("killed store must reopen cleanly");
    assert!(store.len() >= 3, "3 cells were appended before the abort");
    assert!(store.len() < 16, "the sweep must not have finished");
    let killed_at = store.len();

    // Resume in this process; compare against an uninterrupted run.
    let (a, b, test) = two_models();
    let resumed = run_plan((&a, &b), &test, Some(&mut store), |_| {});
    assert_eq!(resumed.resumed, killed_at);
    assert_eq!(resumed.evaluated, 16 - killed_at);

    let mut single = SweepStore::open(&single_path).unwrap();
    let reference = run_plan((&a, &b), &test, Some(&mut single), |_| {});
    assert_eq!(resumed.cells(), reference.cells(), "resumed results must be byte-identical");
    assert_eq!(
        store.fingerprint(),
        single.fingerprint(),
        "killed-and-resumed store must fingerprint identically to a single-shot run"
    );

    for p in [&kill_path, &single_path] {
        let _ = std::fs::remove_file(p);
    }
}
