//! Scaled-down versions of the paper's architectures.
//!
//! The paper uses SimpleNet (5.5 M weights on CIFAR10, halved channels on
//! MNIST), a Wide ResNet on CIFAR100, and ResNet-20/50 for the architecture
//! ablation. Training here runs on CPU, so every architecture keeps its
//! *shape* (conv+norm+ReLU stacks with the same pooling schedule, residual
//! blocks with projection shortcuts) at reduced width; `DESIGN.md` records
//! the substitution. Group normalization is the default, matching the
//! paper's finding that BatchNorm is fragile under weight bit errors
//! (Tab. 10).

use bitrobust_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, GroupNorm, Linear, MaxPool2d, Model, Relu,
    Residual, Sequential,
};
use rand::Rng;

use crate::{ActivationProbe, ProbeHandle};

/// Which normalization layers an architecture uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormKind {
    /// Group normalization (the paper's robust default; App. G.1).
    Group,
    /// Batch normalization (fragile under weight bit errors; Tab. 10).
    Batch,
}

/// Architecture families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// SimpleNet-style plain conv stack (the paper's main model).
    SimpleNet,
    /// A wider SimpleNet used for the CIFAR100 stand-in (WRN substitute).
    WideSimpleNet,
    /// A small residual network (ResNet-20/50 stand-in; App. G.7).
    ResNetMini,
    /// A two-layer MLP baseline (sanity checks and fast tests).
    Mlp,
}

/// A built model together with its activation-probe handle.
pub struct BuiltModel {
    /// The trainable model.
    pub model: Model,
    /// Statistics of the activations entering the classifier head.
    pub probe: ProbeHandle,
}

impl std::fmt::Debug for BuiltModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltModel").finish_non_exhaustive()
    }
}

/// Builds an architecture for images of shape `[channels, size, size]`.
///
/// # Panics
///
/// Panics if the spatial size is too small for the pooling schedule
/// (minimum 8 for conv nets).
pub fn build(
    arch: ArchKind,
    image_shape: [usize; 3],
    n_classes: usize,
    norm: NormKind,
    rng: &mut impl Rng,
) -> BuiltModel {
    match arch {
        // The final width matters for weight clipping: logits are bounded by
        // roughly `wmax * Σ|features|`, so the classifier head keeps a wide
        // feature vector (the paper's SimpleNet feeds 256 features into the
        // classifier for the same reason).
        ArchKind::SimpleNet => {
            simplenet(image_shape, n_classes, norm, &[16, 16, 32, 32, 64, 96], rng)
        }
        ArchKind::WideSimpleNet => {
            simplenet(image_shape, n_classes, norm, &[24, 24, 48, 48, 96, 128], rng)
        }
        ArchKind::ResNetMini => resnet_mini(image_shape, n_classes, norm, rng),
        ArchKind::Mlp => mlp(image_shape, n_classes, rng),
    }
}

fn norm_layer(norm: NormKind, channels: usize, net: &mut Sequential) {
    match norm {
        NormKind::Group => net.push(GroupNorm::new(channels, group_count(channels))),
        NormKind::Batch => net.push(BatchNorm2d::new(channels)),
    }
}

fn group_count(channels: usize) -> usize {
    // Largest divisor of `channels` not exceeding 8 (GroupNorm default
    // spirit at our widths).
    (1..=8.min(channels)).rev().find(|&g| channels.is_multiple_of(g)).unwrap_or(1)
}

/// Conv + Norm + ReLU block.
fn conv_block(
    net: &mut Sequential,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    norm: NormKind,
    rng: &mut impl Rng,
) {
    net.push(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng));
    norm_layer(norm, out_ch, net);
    net.push(Relu::new());
}

/// The SimpleNet-style stack: pairs of 3×3 convolutions with 2×2 pooling,
/// global average pooling, then a linear classifier. A probe sits after the
/// last ReLU.
fn simplenet(
    image_shape: [usize; 3],
    n_classes: usize,
    norm: NormKind,
    widths: &[usize; 6],
    rng: &mut impl Rng,
) -> BuiltModel {
    let [c, h, _] = image_shape;
    assert!(h >= 8, "SimpleNet requires spatial size >= 8, got {h}");
    let mut net = Sequential::new();
    conv_block(&mut net, c, widths[0], 1, norm, rng);
    conv_block(&mut net, widths[0], widths[1], 1, norm, rng);
    net.push(MaxPool2d::new(2, 2));
    conv_block(&mut net, widths[1], widths[2], 1, norm, rng);
    conv_block(&mut net, widths[2], widths[3], 1, norm, rng);
    net.push(MaxPool2d::new(2, 2));
    conv_block(&mut net, widths[3], widths[4], 1, norm, rng);
    conv_block(&mut net, widths[4], widths[5], 1, norm, rng);
    let (probe_layer, probe) = ActivationProbe::new();
    net.push(probe_layer);
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(widths[5], n_classes, rng));
    BuiltModel { model: Model::new("simplenet", net), probe }
}

/// A small pre-activation-free residual network (stem + three stages with a
/// strided projection block each), standing in for ResNet-20/50.
fn resnet_mini(
    image_shape: [usize; 3],
    n_classes: usize,
    norm: NormKind,
    rng: &mut impl Rng,
) -> BuiltModel {
    let [c, h, _] = image_shape;
    assert!(h >= 8, "ResNetMini requires spatial size >= 8, got {h}");
    let widths = [16usize, 32, 48];
    let mut net = Sequential::new();
    conv_block(&mut net, c, widths[0], 1, norm, rng);

    // Stage 1: identity residual block.
    let mut body = Sequential::new();
    conv_block(&mut body, widths[0], widths[0], 1, norm, rng);
    body.push(Conv2d::new(widths[0], widths[0], 3, 1, 1, rng));
    match norm {
        NormKind::Group => body.push(GroupNorm::new(widths[0], group_count(widths[0]))),
        NormKind::Batch => body.push(BatchNorm2d::new(widths[0])),
    }
    net.push(Residual::new(body));
    net.push(Relu::new());

    // Stages 2 and 3: strided projection blocks.
    for s in 0..2 {
        let (in_ch, out_ch) = (widths[s], widths[s + 1]);
        let mut body = Sequential::new();
        conv_block(&mut body, in_ch, out_ch, 2, norm, rng);
        body.push(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng));
        match norm {
            NormKind::Group => body.push(GroupNorm::new(out_ch, group_count(out_ch))),
            NormKind::Batch => body.push(BatchNorm2d::new(out_ch)),
        }
        let shortcut = Conv2d::new(in_ch, out_ch, 1, 2, 0, rng);
        net.push(Residual::with_shortcut(body, shortcut));
        net.push(Relu::new());
    }

    let (probe_layer, probe) = ActivationProbe::new();
    net.push(probe_layer);
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(widths[2], n_classes, rng));
    BuiltModel { model: Model::new("resnet-mini", net), probe }
}

/// Flatten → 128 → classifier.
fn mlp(image_shape: [usize; 3], n_classes: usize, rng: &mut impl Rng) -> BuiltModel {
    let [c, h, w] = image_shape;
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Linear::new(c * h * w, 128, rng));
    net.push(Relu::new());
    let (probe_layer, probe) = ActivationProbe::new();
    net.push(probe_layer);
    net.push(Linear::new(128, n_classes, rng));
    BuiltModel { model: Model::new("mlp", net), probe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_nn::Mode;
    use bitrobust_tensor::Tensor;
    use rand::SeedableRng;

    fn check_forward(arch: ArchKind, shape: [usize; 3], classes: usize) -> usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut built = build(arch, shape, classes, NormKind::Group, &mut rng);
        let x = Tensor::randn(&[2, shape[0], shape[1], shape[2]], 1.0, &mut rng);
        let y = built.model.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, classes]);
        assert!(y.data().iter().all(|v| v.is_finite()));
        built.model.num_params()
    }

    #[test]
    fn simplenet_shapes_and_size() {
        let n = check_forward(ArchKind::SimpleNet, [3, 16, 16], 10);
        assert!(n > 30_000 && n < 120_000, "unexpected parameter count {n}");
    }

    #[test]
    fn wide_simplenet_is_bigger() {
        let slim = check_forward(ArchKind::SimpleNet, [3, 16, 16], 100);
        let wide = check_forward(ArchKind::WideSimpleNet, [3, 16, 16], 100);
        assert!(wide > slim);
    }

    #[test]
    fn resnet_mini_forward_and_gradients_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut built = build(ArchKind::ResNetMini, [3, 16, 16], 10, NormKind::Group, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let y = built.model.forward(&x, Mode::Train);
        let g = Tensor::full(y.shape(), 0.1);
        built.model.backward(&g);
        let mut any_grad = false;
        built.model.visit_params(&mut |p| {
            if p.grad().abs_max() > 0.0 {
                any_grad = true;
            }
        });
        assert!(any_grad, "gradients must reach parameters through residual blocks");
    }

    #[test]
    fn mnist_shape_works() {
        check_forward(ArchKind::SimpleNet, [1, 14, 14], 10);
    }

    #[test]
    fn mlp_builds() {
        let n = check_forward(ArchKind::Mlp, [1, 14, 14], 10);
        assert_eq!(n, 14 * 14 * 128 + 128 + 128 * 10 + 10);
    }

    #[test]
    fn batch_norm_variant_builds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut built = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Batch, &mut rng);
        let x = Tensor::randn(&[4, 3, 16, 16], 1.0, &mut rng);
        let y = built.model.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 10]);
    }

    #[test]
    fn probe_reports_after_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let built = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let _ = model.forward(&x, Mode::Eval);
        let stats = *built.probe.lock().unwrap();
        assert!(stats.count > 0);
        assert!(stats.fraction_positive > 0.0);
    }

    #[test]
    fn group_count_divides() {
        for ch in [3, 12, 16, 24, 48, 72] {
            assert_eq!(ch % group_count(ch), 0);
        }
    }
}
