//! Golden pinning tests: committed bit-exact values for a short RandBET
//! training trajectory (loss + RErr per epoch) and one campaign grid cell.
//!
//! Purpose: parallelization refactors keep claiming "byte-identical
//! results" — these tests pin the actual bytes, so a refactor that
//! silently drifts numerics (different reduction order, a changed seed
//! path, a lost clip) fails here even if parallel and serial paths still
//! agree with *each other*.
//!
//! If a change intentionally alters numerics, regenerate the constants
//! with:
//!
//! ```text
//! cargo test -p bitrobust-core --test golden print_golden_values \
//!     -- --exact --ignored --nocapture
//! ```
//!
//! and update this file, explaining in the commit why the numbers moved.

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    build, run_grid, train, ArchKind, Campaign, CampaignGrid, DataParallel, NormKind,
    QuantizedModel, RErrProbe, RandBetVariant, ReplicaStrategy, TrainConfig, TrainMethod,
    TrainReport, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

mod common;
use common::weights_fingerprint;

// ---------------------------------------------------------------------------
// Pinned values (f32 bit patterns; see the module docs to regenerate).
// ---------------------------------------------------------------------------

/// Per-epoch mean clean training loss of the pinned RandBET run.
///
/// Regenerated when `MultiStepLr::paper_schedule` dropped duplicate
/// milestones: a 3-epoch run previously hit milestones `[1, 1, 2]` and
/// trained epochs 1–2 at 0.01×/0.001× the base LR; the fixed `[1, 2]`
/// staircase trains them at 0.1×/0.01×, so epochs 1–2 (and everything
/// downstream of the weights) moved.
const GOLDEN_EPOCH_LOSSES: [u32; 3] = [0x3fe6_6185, 0x3f40_9cdd, 0x3f2e_1af3];

/// Per-epoch probe `mean_error` of the pinned RandBET run.
const GOLDEN_EPOCH_RERR_MEANS: [u32; 3] = [0x3e08_8888, 0x3dae_147b, 0x3daa_aaab];

/// Per-chip probe errors of the final epoch.
const GOLDEN_FINAL_EPOCH_CHIP_ERRORS: [u32; 2] = [0x3daa_aaab, 0x3daa_aaab];

/// Clean quantized test error after training.
const GOLDEN_CLEAN_ERROR: u32 = 0x3d9d_036a;

/// Per-epoch mean clean training loss of the same run trained
/// data-parallel (4 shards): its own pinned trajectory, byte-identical
/// across machines and thread counts. (For this short quantized run it
/// happens to coincide with the single-model bits — the 8-bit weight grid
/// absorbs the last-ulp gradient-summation differences — but the two
/// constants are separate contracts and may diverge independently.)
const GOLDEN_DP_EPOCH_LOSSES: [u32; 3] = [0x3fe6_6185, 0x3f40_9cdd, 0x3f2e_1af3];

/// Clean quantized test error of the data-parallel run.
const GOLDEN_DP_CLEAN_ERROR: u32 = 0x3d9d_036a;

/// FNV-1a fingerprint of the data-parallel run's final float weights.
///
/// Regenerated when the matmul variants moved onto the packed GEMM
/// (`bitrobust_tensor::gemm`): `matmul_nt` dropped its 4-accumulator dot
/// for the canonical sequential-k reduction and the linear/conv backward
/// passes now accumulate gradients in pack-order, shifting float weights
/// by last-ulp amounts. Every *quantized* metric (losses, RErr, clean
/// error, campaign cells) stayed bit-identical — the 8-bit weight grid
/// absorbs the drift — so only this raw-float fingerprint moved.
const GOLDEN_DP_WEIGHTS_HASH: u64 = 0xb666_dc7a_6762_818f;

/// Per-chip errors of the pinned campaign grid cell (rate 1%, 3 chips).
const GOLDEN_CELL_ERRORS: [u32; 3] = [0x3f55_c28f, 0x3f57_4bc7, 0x3f63_53f8];

/// Mean and sample-std of the pinned cell.
const GOLDEN_CELL_MEAN: u32 = 0x3f5a_cb6f;
const GOLDEN_CELL_STD: u32 = 0x3ced_c19e;

// ---------------------------------------------------------------------------

fn golden_training_report(data_parallel: Option<DataParallel>) -> (TrainReport, Model) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (train_src, test_src) = SynthDataset::Mnist.generate(1);
    let train_idx: Vec<usize> = (0..600).collect();
    let test_idx: Vec<usize> = (0..300).collect();
    let (xt, yt) = train_src.batch(&train_idx);
    let (xe, ye) = test_src.batch(&test_idx);
    let train_ds = Dataset::new("train", xt, yt, 10);
    let test_ds = Dataset::new("test", xe, ye, 10);

    let mut cfg = TrainConfig::new(
        Some(QuantScheme::rquant(8)),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 3;
    cfg.batch_size = 128;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 100.0;
    cfg.rerr_probe = Some(RErrProbe::new(0.01, 2));
    cfg.data_parallel = data_parallel;
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    (report, model)
}

fn golden_grid_cell() -> (Model, Vec<f32>, f32, f32) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let (_, test) = SynthDataset::Mnist.generate(0);
    let grid = CampaignGrid::uniform(QuantScheme::rquant(8), vec![0.01], 3, 1000);
    let cell = run_grid(&model, &grid, &test, EVAL_BATCH, Mode::Eval).remove(0).remove(0);
    (model, cell.errors.clone(), cell.mean_error, cell.std_error)
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn hex(values: &[u32]) -> String {
    let items: Vec<String> = values.iter().map(|b| format!("0x{b:08x}")).collect();
    format!("[{}]", items.join(", "))
}

#[test]
fn golden_randbet_trajectory_is_pinned() {
    let (report, _) = golden_training_report(None);
    assert_eq!(
        bits(&report.epoch_losses),
        GOLDEN_EPOCH_LOSSES,
        "epoch losses drifted; actual {} (see module docs to regenerate)",
        hex(&bits(&report.epoch_losses))
    );
    let rerr_means: Vec<f32> = report.epoch_rerr.iter().map(|r| r.mean_error).collect();
    assert_eq!(
        bits(&rerr_means),
        GOLDEN_EPOCH_RERR_MEANS,
        "per-epoch RErr drifted; actual {}",
        hex(&bits(&rerr_means))
    );
    let final_chips = &report.epoch_rerr.last().expect("probe ran").errors;
    assert_eq!(
        bits(final_chips),
        GOLDEN_FINAL_EPOCH_CHIP_ERRORS,
        "final-epoch per-chip RErr drifted; actual {}",
        hex(&bits(final_chips))
    );
    assert_eq!(
        report.clean_error.to_bits(),
        GOLDEN_CLEAN_ERROR,
        "clean error drifted; actual 0x{:08x}",
        report.clean_error.to_bits()
    );
}

/// The data-parallel trajectory is its own pinned contract: the 4-shard
/// gradient split is a different float path than the single-model one, but
/// it must never drift across machines, thread counts, or refactors.
#[test]
fn golden_data_parallel_trajectory_is_pinned() {
    let (report, model) = golden_training_report(Some(DataParallel::new(4)));
    assert_eq!(
        bits(&report.epoch_losses),
        GOLDEN_DP_EPOCH_LOSSES,
        "data-parallel epoch losses drifted; actual {}",
        hex(&bits(&report.epoch_losses))
    );
    assert_eq!(
        report.clean_error.to_bits(),
        GOLDEN_DP_CLEAN_ERROR,
        "data-parallel clean error drifted; actual 0x{:08x}",
        report.clean_error.to_bits()
    );
    assert_eq!(
        weights_fingerprint(&model),
        GOLDEN_DP_WEIGHTS_HASH,
        "data-parallel final weights drifted; actual 0x{:016x}",
        weights_fingerprint(&model)
    );
}

#[test]
fn golden_campaign_cell_is_pinned() {
    let (_, errors, mean, std) = golden_grid_cell();
    assert_eq!(
        bits(&errors),
        GOLDEN_CELL_ERRORS,
        "per-chip cell errors drifted; actual {}",
        hex(&bits(&errors))
    );
    assert_eq!(
        mean.to_bits(),
        GOLDEN_CELL_MEAN,
        "cell mean drifted; actual 0x{:08x}",
        mean.to_bits()
    );
    assert_eq!(std.to_bits(), GOLDEN_CELL_STD, "cell std drifted; actual 0x{:08x}", std.to_bits());
}

/// Both replica strategies must reproduce the pinned cell bit-for-bit:
/// the shared-image path holds patterns as quantized integer images (no
/// per-pattern dequantized `f32` replica), yet its RErr bytes must equal
/// the per-pattern path *and* the committed golden constants.
#[test]
fn golden_cell_is_replica_strategy_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
    let (_, test) = SynthDataset::Mnist.generate(0);
    // The exact images `run_grid` builds for the pinned cell: rquant(8)
    // at rate 1%, chips seeded `1000 + c`.
    let q0 = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
    let images: Vec<QuantizedModel> = (0..3)
        .map(|c| {
            let mut q = q0.clone();
            q.inject(&UniformChip::new(1000 + c).at_rate(0.01));
            q
        })
        .collect();
    for strategy in [ReplicaStrategy::SharedImage, ReplicaStrategy::PerPattern] {
        let results = Campaign::new(&model, &test).replicas(strategy).run(&images);
        let errors: Vec<f32> = results.iter().map(|r| r.error).collect();
        assert_eq!(
            bits(&errors),
            GOLDEN_CELL_ERRORS,
            "{strategy:?} per-chip errors drifted; actual {}",
            hex(&bits(&errors))
        );
    }
}

/// Full tracing must not move a single golden bit: observability reads
/// clocks but never feeds results. Enabling it process-wide here is safe
/// for the sibling tests for exactly that reason — and doing so means the
/// whole golden suite runs instrumented whenever this test is scheduled
/// first.
#[test]
fn golden_cell_is_pinned_with_tracing_on() {
    bitrobust_obs::init(&bitrobust_obs::ObsConfig {
        level: bitrobust_obs::ObsLevel::Trace,
        ..Default::default()
    });
    let (_, errors, mean, std) = golden_grid_cell();
    assert_eq!(
        bits(&errors),
        GOLDEN_CELL_ERRORS,
        "BITROBUST_OBS=trace changed per-chip cell errors; actual {}",
        hex(&bits(&errors))
    );
    assert_eq!(mean.to_bits(), GOLDEN_CELL_MEAN);
    assert_eq!(std.to_bits(), GOLDEN_CELL_STD);
    // The instrumentation itself must have observed the run.
    let snap = bitrobust_obs::snapshot();
    assert!(snap.counter("scheduler.items") > 0, "campaign ran uninstrumented");
}

/// Generator for the pinned constants above (see module docs).
#[test]
#[ignore = "generator: prints current golden values"]
fn print_golden_values() {
    let (report, _) = golden_training_report(None);
    println!("GOLDEN_EPOCH_LOSSES: {}", hex(&bits(&report.epoch_losses)));
    let rerr_means: Vec<f32> = report.epoch_rerr.iter().map(|r| r.mean_error).collect();
    println!("GOLDEN_EPOCH_RERR_MEANS: {}", hex(&bits(&rerr_means)));
    let final_chips = &report.epoch_rerr.last().expect("probe ran").errors;
    println!("GOLDEN_FINAL_EPOCH_CHIP_ERRORS: {}", hex(&bits(final_chips)));
    println!("GOLDEN_CLEAN_ERROR: 0x{:08x}", report.clean_error.to_bits());

    let (dp_report, dp_model) = golden_training_report(Some(DataParallel::new(4)));
    println!("GOLDEN_DP_EPOCH_LOSSES: {}", hex(&bits(&dp_report.epoch_losses)));
    println!("GOLDEN_DP_CLEAN_ERROR: 0x{:08x}", dp_report.clean_error.to_bits());
    println!("GOLDEN_DP_WEIGHTS_HASH: 0x{:016x}", weights_fingerprint(&dp_model));

    let (_, errors, mean, std) = golden_grid_cell();
    println!("GOLDEN_CELL_ERRORS: {}", hex(&bits(&errors)));
    println!("GOLDEN_CELL_MEAN: 0x{:08x}", mean.to_bits());
    println!("GOLDEN_CELL_STD: 0x{:08x}", std.to_bits());
}
