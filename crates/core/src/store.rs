//! Durable, append-only storage for sweep campaign cells.
//!
//! A [`SweepStore`] is a JSONL file: one self-describing line per
//! completed campaign cell, keyed by a 64-bit content hash of the cell's
//! full identity (model key, quantization scheme, injection-axis key,
//! axis point, evaluation dataset and batch size — see
//! [`crate::sweep::run_sweep`]). The orchestrator appends each cell as
//! soon as it completes and *skips* any cell whose key is already stored,
//! which is what makes long sweeps resumable: a killed process loses at
//! most the cells that had not yet been appended.
//!
//! # Durability and exactness
//!
//! * Every append is a single `write(2)` of one newline-terminated line;
//!   data written before a `SIGKILL` survives in the page cache, so a
//!   killed sweep's store is valid up to (at worst) one truncated trailing
//!   line, which [`SweepStore::open`] detects and discards.
//! * Results are stored twice: as human-readable decimal floats *and* as
//!   exact `f32` bit patterns (`error_bits` / `confidence_bits`). The bit
//!   fields are authoritative on load, so a resumed sweep's assembled
//!   results are **byte-identical** to an uninterrupted run's.
//! * [`SweepStore::fingerprint`] hashes cells in key order, independent of
//!   append order — an interrupted-and-resumed store fingerprints equal to
//!   a single-shot one.
//!
//! The format is hand-rolled (the workspace's vendored `serde` is an
//! offline marker stub with no data model): a flat JSON object per line,
//! string values restricted to a quote-and-backslash-free subset so no
//! escaping is ever needed.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::eval::EvalResult;

/// FNV-1a over a byte string: the store's content hash. 64 bits is plenty
/// for sweep-sized key spaces (collisions are *detected*, not assumed
/// absent: see [`SweepStore::append`]).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from [`SweepStore`] operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A non-trailing line failed to parse (trailing partial lines from a
    /// killed writer are silently discarded instead).
    Corrupt {
        /// 1-based line number in the store file.
        line: usize,
        /// What failed to parse.
        reason: String,
    },
    /// Two different cell payloads under one key: either a genuine 64-bit
    /// hash collision or (far more likely) a non-deterministic evaluation
    /// writing to an existing store. Never silently overwritten.
    Collision {
        /// The contested cell key.
        key: u64,
    },
    /// A metadata string contains characters the escape-free line format
    /// cannot carry (`"`, `\`, or control characters).
    Metadata(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "sweep store I/O error: {e}"),
            StoreError::Corrupt { line, reason } => {
                write!(f, "sweep store corrupt at line {line}: {reason}")
            }
            StoreError::Collision { key } => {
                write!(f, "sweep store key collision on {key:016x}: differing cell payloads")
            }
            StoreError::Metadata(s) => {
                write!(f, "sweep store metadata not representable without escaping: {s:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One completed cell, ready to append: the content-hash key, the
/// human-readable identity it was derived from, and the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRecord<'a> {
    /// Content-hash key (see [`crate::sweep::run_sweep`] for the recipe).
    pub key: u64,
    /// Model identity (e.g. a zoo cache key).
    pub model: &'a str,
    /// Quantization scheme key (`QuantScheme::key`).
    pub scheme: &'a str,
    /// Injection axis key (`ChipAxis::key`).
    pub axis: &'a str,
    /// Point index within the axis.
    pub point: usize,
    /// The cell's evaluation result.
    pub result: EvalResult,
}

/// A stored cell: its canonical serialized line plus the exact result
/// bits.
#[derive(Debug, Clone, PartialEq)]
struct StoredCell {
    line: String,
    error_bits: u32,
    confidence_bits: u32,
}

/// An append-only, key-addressed on-disk store of sweep cells. See the
/// [module docs](self) for the format and durability contract.
#[derive(Debug)]
pub struct SweepStore {
    path: PathBuf,
    file: fs::File,
    cells: BTreeMap<u64, StoredCell>,
}

impl SweepStore {
    /// Opens (creating if absent) the store at `path`, loading every
    /// stored cell. Parent directories are created. A truncated trailing
    /// line — the signature of a killed writer — is discarded and the file
    /// is trimmed back to its last complete line.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if a non-trailing line is malformed,
    /// [`StoreError::Collision`] if one key appears with two different
    /// payloads, or [`StoreError::Io`] on filesystem failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };

        let mut cells = BTreeMap::new();
        let mut valid_len = 0usize;
        let mut unterminated_tail = false;
        let mut rest = text.as_str();
        let mut line_no = 0usize;
        while !rest.is_empty() {
            line_no += 1;
            let (line, complete, consumed) = match rest.find('\n') {
                Some(at) => (&rest[..at], true, at + 1),
                None => (rest, false, rest.len()),
            };
            match parse_line(line) {
                Ok((key, cell)) => {
                    if let Some(existing) = cells.get(&key) {
                        if *existing != cell {
                            return Err(StoreError::Collision { key });
                        }
                        // Identical duplicate lines are tolerated (they can
                        // only carry the same result); keep one.
                    } else {
                        cells.insert(key, cell);
                    }
                    // A parseable final line with no newline: the writer
                    // died between the record bytes and the terminator.
                    // Keep the cell, but remember to re-terminate the file
                    // before anything is appended after it.
                    unterminated_tail = !complete;
                }
                Err(reason) if !complete => {
                    // A partial trailing line from a killed writer: drop it
                    // and trim the file so later appends start cleanly.
                    let _ = reason;
                    break;
                }
                Err(reason) => return Err(StoreError::Corrupt { line: line_no, reason }),
            }
            valid_len += consumed;
            rest = &text[valid_len..];
        }

        if valid_len < text.len() {
            let file = fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid_len as u64)?;
        }
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&path)?;
        if unterminated_tail {
            // Re-terminate the surviving record so the next append starts
            // on its own line instead of gluing two records together.
            file.write_all(b"\n")?;
        }
        Ok(Self { path, file, cells })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The stored result under `key`, exact to the bit, if present.
    pub fn get(&self, key: u64) -> Option<EvalResult> {
        self.cells.get(&key).map(|c| EvalResult {
            error: f32::from_bits(c.error_bits),
            confidence: f32::from_bits(c.confidence_bits),
        })
    }

    /// Appends one completed cell and flushes it to the file in a single
    /// write. Appending a key that is already stored with the **same**
    /// payload is an idempotent no-op; a differing payload is rejected
    /// ([`StoreError::Collision`]) — the store never rewrites history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Metadata`] if an identity string cannot be stored
    /// without escaping, [`StoreError::Collision`] as above, or
    /// [`StoreError::Io`].
    pub fn append(&mut self, record: &CellRecord<'_>) -> Result<(), StoreError> {
        for s in [record.model, record.scheme, record.axis] {
            if s.chars().any(|c| c == '"' || c == '\\' || c.is_control()) {
                return Err(StoreError::Metadata(s.to_string()));
            }
        }
        let cell = StoredCell {
            line: serialize_line(record),
            error_bits: record.result.error.to_bits(),
            confidence_bits: record.result.confidence.to_bits(),
        };
        if let Some(existing) = self.cells.get(&record.key) {
            if *existing == cell {
                return Ok(());
            }
            return Err(StoreError::Collision { key: record.key });
        }
        {
            // Time only the durable write, not key validation above.
            bitrobust_obs::span!("store.append");
            self.file.write_all(format!("{}\n", cell.line).as_bytes())?;
        }
        bitrobust_obs::counter_add("store.appends", 1);
        bitrobust_obs::counter_add("store.bytes_appended", cell.line.len() as u64 + 1);
        self.cells.insert(record.key, cell);
        Ok(())
    }

    /// A 64-bit fingerprint over all stored cells in **key order** —
    /// independent of append order, so an interrupted-and-resumed store
    /// fingerprints identically to a single-shot one iff they hold the
    /// same cells with the same results.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for cell in self.cells.values() {
            bytes.extend_from_slice(cell.line.as_bytes());
            bytes.push(b'\n');
        }
        fnv1a64(&bytes)
    }
}

/// Serializes one cell line. The format is intentionally flat and
/// escape-free; [`parse_line`] is its exact inverse.
fn serialize_line(r: &CellRecord<'_>) -> String {
    format!(
        "{{\"key\":\"{:016x}\",\"model\":\"{}\",\"scheme\":\"{}\",\"axis\":\"{}\",\
         \"point\":{},\"error\":{:e},\"confidence\":{:e},\"error_bits\":\"{:08x}\",\
         \"confidence_bits\":\"{:08x}\"}}",
        r.key,
        r.model,
        r.scheme,
        r.axis,
        r.point,
        r.result.error,
        r.result.confidence,
        r.result.error.to_bits(),
        r.result.confidence.to_bits(),
    )
}

/// Extracts the raw value of `"name":` from a flat, escape-free JSON
/// object line: the text between the following `:` and the next `,` or
/// closing `}`, with surrounding quotes stripped for string values.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let value = if let Some(inner) = rest.strip_prefix('"') {
        &inner[..inner.find('"')?]
    } else {
        let end = rest.find([',', '}'])?;
        &rest[..end]
    };
    Some(value)
}

/// Parses one stored line back into `(key, cell)`. Returns a reason string
/// on malformed input (the caller decides whether the position makes it
/// corruption or a truncated tail).
fn parse_line(line: &str) -> Result<(u64, StoredCell), String> {
    if !(line.starts_with('{') && line.ends_with('}')) {
        return Err("not a JSON object line".into());
    }
    let key = u64::from_str_radix(field(line, "key").ok_or("missing key")?, 16)
        .map_err(|e| format!("bad key: {e}"))?;
    let error_bits =
        u32::from_str_radix(field(line, "error_bits").ok_or("missing error_bits")?, 16)
            .map_err(|e| format!("bad error_bits: {e}"))?;
    let confidence_bits =
        u32::from_str_radix(field(line, "confidence_bits").ok_or("missing confidence_bits")?, 16)
            .map_err(|e| format!("bad confidence_bits: {e}"))?;
    for required in ["model", "scheme", "axis", "point"] {
        field(line, required).ok_or_else(|| format!("missing {required}"))?;
    }
    Ok((key, StoredCell { line: line.to_string(), error_bits, confidence_bits }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bitrobust-store-{}-{name}.jsonl", std::process::id()))
    }

    fn record(key: u64, error: f32, confidence: f32) -> CellRecord<'static> {
        CellRecord {
            key,
            model: "mlp-s0",
            scheme: "q8laun",
            axis: "uniform-s1000-c2-r[1e-2]",
            point: (key % 7) as usize,
            result: EvalResult { error, confidence },
        }
    }

    #[test]
    fn round_trips_exact_bits_through_reopen() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        // Values chosen to stress the decimal text path: subnormal,
        // last-ulp-odd, and an exactly representable fraction.
        let cases =
            [(1u64, f32::from_bits(0x0000_0001), 0.25f32), (2, 0.1, 0.999_999_94), (3, 0.0, 1.0)];
        {
            let mut store = SweepStore::open(&path).unwrap();
            for (key, e, c) in cases {
                store.append(&record(key, e, c)).unwrap();
            }
        }
        let store = SweepStore::open(&path).unwrap();
        assert_eq!(store.len(), cases.len());
        for (key, e, c) in cases {
            let got = store.get(key).unwrap();
            assert_eq!(got.error.to_bits(), e.to_bits());
            assert_eq!(got.confidence.to_bits(), c.to_bits());
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_collisions_and_tolerates_idempotent_appends() {
        let path = temp_path("collision");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path).unwrap();
        store.append(&record(7, 0.5, 0.9)).unwrap();
        // Same key, same payload: idempotent.
        store.append(&record(7, 0.5, 0.9)).unwrap();
        assert_eq!(store.len(), 1);
        // Same key, different payload: rejected, store unchanged.
        let err = store.append(&record(7, 0.25, 0.9)).unwrap_err();
        assert!(matches!(err, StoreError::Collision { key: 7 }), "{err}");
        assert_eq!(store.get(7).unwrap().error, 0.5);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn discards_truncated_trailing_line_and_keeps_appending() {
        let path = temp_path("truncated");
        let _ = fs::remove_file(&path);
        {
            let mut store = SweepStore::open(&path).unwrap();
            store.append(&record(1, 0.5, 0.9)).unwrap();
            store.append(&record(2, 0.25, 0.8)).unwrap();
        }
        // Simulate a writer killed mid-append: a partial line, no newline.
        {
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\":\"00000000000000").unwrap();
        }
        let mut store = SweepStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "complete lines must survive");
        store.append(&record(3, 0.125, 0.7)).unwrap();
        drop(store);
        let reread = SweepStore::open(&path).unwrap();
        assert_eq!(reread.len(), 3, "append after trim must produce a clean line");
        assert_eq!(reread.get(3).unwrap().error, 0.125);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reterminates_complete_line_missing_its_newline() {
        // A writer killed between the record bytes and the '\n' leaves a
        // fully parseable unterminated line; the cell must survive and the
        // next append must not glue onto it.
        let path = temp_path("unterminated");
        let _ = fs::remove_file(&path);
        {
            let mut store = SweepStore::open(&path).unwrap();
            store.append(&record(1, 0.5, 0.9)).unwrap();
            store.append(&record(2, 0.25, 0.8)).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.strip_suffix('\n').unwrap()).unwrap();

        let mut store = SweepStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "the unterminated record must survive");
        store.append(&record(3, 0.125, 0.7)).unwrap();
        let fp = store.fingerprint();
        drop(store);
        let reread = SweepStore::open(&path).unwrap();
        assert_eq!(reread.len(), 3, "append after re-termination must stay on its own line");
        assert_eq!(reread.get(2).unwrap().error, 0.25);
        assert_eq!(reread.get(3).unwrap().error, 0.125);
        assert_eq!(reread.fingerprint(), fp);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_corrupt_interior_line() {
        let path = temp_path("corrupt");
        let _ = fs::remove_file(&path);
        {
            let mut store = SweepStore::open(&path).unwrap();
            store.append(&record(1, 0.5, 0.9)).unwrap();
        }
        {
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
        }
        let err = SweepStore::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { line: 2, .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_unescapable_metadata() {
        let path = temp_path("metadata");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path).unwrap();
        let bad = CellRecord { model: "quo\"te", ..record(1, 0.5, 0.9) };
        assert!(matches!(store.append(&bad).unwrap_err(), StoreError::Metadata(_)));
        assert!(store.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_is_append_order_independent() {
        let a_path = temp_path("fp-a");
        let b_path = temp_path("fp-b");
        let _ = fs::remove_file(&a_path);
        let _ = fs::remove_file(&b_path);
        let mut a = SweepStore::open(&a_path).unwrap();
        let mut b = SweepStore::open(&b_path).unwrap();
        let records = [record(1, 0.5, 0.9), record(2, 0.25, 0.8), record(3, 0.75, 0.7)];
        for r in &records {
            a.append(r).unwrap();
        }
        for r in records.iter().rev() {
            b.append(r).unwrap();
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        // And the fingerprint reacts to content.
        let mut c = SweepStore::open(&a_path).unwrap();
        c.append(&record(4, 0.1, 0.6)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let _ = fs::remove_file(&a_path);
        let _ = fs::remove_file(&b_path);
    }
}
