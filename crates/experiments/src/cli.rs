//! Minimal command-line options shared by all experiment binaries.

/// Options parsed from the command line.
///
/// Every experiment binary accepts:
///
/// * `--quick` — fewer epochs and chips (smoke-test mode);
/// * `--chips N` — number of random chips for RErr averaging;
/// * `--seed S` — base RNG seed;
/// * `--no-cache` — ignore the model zoo cache and retrain.
///
/// Binaries that drive the sweep orchestrator additionally accept:
///
/// * `--resume` — reuse the on-disk sweep store, skipping completed cells
///   (the default: resuming is always byte-safe because cells are keyed by
///   a content hash of their full identity);
/// * `--fresh` — delete the binary's sweep store first and recompute every
///   cell.
///
/// All binaries also accept `--obs <spec>` (`off|counters|trace` or
/// `trace:<path>`), which overrides the `BITROBUST_OBS` environment
/// variable; see `bitrobust_obs` for the full schema. Observability is
/// bit-neutral — results are identical with it on or off.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Reduced-effort mode for smoke tests.
    pub quick: bool,
    /// Number of random chips per RErr estimate.
    pub chips: usize,
    /// Base seed.
    pub seed: u64,
    /// Skip the on-disk model cache.
    pub no_cache: bool,
    /// Delete the sweep store before running (`--fresh`); the default is
    /// to resume from it.
    pub fresh: bool,
    /// `--obs` spec, if given (applied by [`ExpOptions::from_args`];
    /// `parse` stays a pure function for tests).
    pub obs: Option<String>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self { quick: false, chips: 20, seed: 0, no_cache: false, fresh: false, obs: None }
    }
}

impl ExpOptions {
    /// Parses `std::env::args`, ignoring unknown flags, and applies the
    /// `--obs` spec (if any) to the global observability config. A bad
    /// spec aborts with a usage message rather than silently recording
    /// nothing.
    pub fn from_args() -> Self {
        let opts = Self::parse(&std::env::args().skip(1).collect::<Vec<String>>());
        if let Some(spec) = &opts.obs {
            match bitrobust_obs::ObsConfig::parse(spec) {
                Ok(cfg) => bitrobust_obs::init(&cfg.with_env_paths()),
                Err(e) => {
                    eprintln!("--obs: {e}");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Parses an argument list (exposed separately so flag handling is
    /// unit-testable; later flags win).
    pub fn parse(args: &[String]) -> Self {
        let mut opts = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.chips = opts.chips.min(5);
                }
                "--no-cache" => opts.no_cache = true,
                "--fresh" => opts.fresh = true,
                "--resume" => opts.fresh = false,
                "--chips" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.chips = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--obs" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.obs = Some(v.clone());
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Scales an epoch budget down in quick mode.
    pub fn epochs(&self, full: usize) -> usize {
        if self.quick {
            (full / 3).max(2)
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpOptions {
        ExpOptions::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_are_sane() {
        let o = ExpOptions::default();
        assert!(!o.quick);
        assert_eq!(o.chips, 20);
        assert!(!o.fresh, "sweeps resume by default");
    }

    #[test]
    fn quick_reduces_epochs() {
        let mut o = ExpOptions::default();
        assert_eq!(o.epochs(30), 30);
        o.quick = true;
        assert_eq!(o.epochs(30), 10);
        assert_eq!(o.epochs(3), 2);
    }

    #[test]
    fn parses_flags_and_values() {
        let o = parse(&["--quick", "--chips", "3", "--seed", "7", "--no-cache"]);
        assert!(o.quick);
        assert_eq!(o.chips, 3);
        assert_eq!(o.seed, 7);
        assert!(o.no_cache);
        // Unknown flags are ignored, missing values leave defaults.
        let o = parse(&["--wat", "--chips"]);
        assert_eq!(o.chips, 20);
    }

    #[test]
    fn obs_spec_is_captured_not_applied_by_parse() {
        assert_eq!(parse(&[]).obs, None);
        assert_eq!(
            parse(&["--obs", "trace:/tmp/t.json"]).obs.as_deref(),
            Some("trace:/tmp/t.json")
        );
        // parse() never validates or installs the spec — that happens in
        // from_args, keeping this function pure for tests.
        assert_eq!(parse(&["--obs", "not-a-level"]).obs.as_deref(), Some("not-a-level"));
        assert_eq!(parse(&["--obs"]).obs, None);
    }

    #[test]
    fn fresh_and_resume_toggle_with_last_flag_winning() {
        assert!(parse(&["--fresh"]).fresh);
        assert!(!parse(&["--resume"]).fresh);
        assert!(!parse(&["--fresh", "--resume"]).fresh);
        assert!(parse(&["--resume", "--fresh"]).fresh);
    }
}
