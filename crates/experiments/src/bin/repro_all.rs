//! Master driver: runs every experiment binary in sequence, teeing each
//! one's stdout into `results/<name>.txt` at the workspace root.
//!
//! ```text
//! cargo run --release -p bitrobust-experiments --bin repro_all [-- --quick]
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig1_energy_voltage",
    "fig3_chip_patterns",
    "tab6_architectures",
    "calibrate",
    "tab1_robust_quant",
    "tab2_clipping",
    "tab3_pattbet",
    "tab4_randbet",
    "tab5_profiled",
    "tab7_accuracy",
    "tab10_batchnorm",
    "tab11_scaling",
    "tab13_variants",
    "tab14_resnets",
    "tab17_guarantees",
    "fig2_headline",
    "fig4_quant_errors",
    "fig6_redundancy",
    "fig9_linf",
    "exp_ecc_secded",
    "exp_layer_vulnerability",
    "exp_ablations",
    "fig7_summary",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bin_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();
    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&results_dir).expect("create results dir");

    let total_start = Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let start = Instant::now();
        print!("== {name} ... ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        let output = Command::new(bin_dir.join(name))
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let text = String::from_utf8_lossy(&output.stdout);
        fs::write(results_dir.join(format!("{name}.txt")), text.as_bytes())
            .expect("write result file");
        if output.status.success() {
            println!("ok ({:.1}s)", start.elapsed().as_secs_f64());
        } else {
            println!("FAILED ({:.1}s)", start.elapsed().as_secs_f64());
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
            failures.push(*name);
        }
    }
    println!(
        "\nDone in {:.1} min; results under {}",
        total_start.elapsed().as_secs_f64() / 60.0,
        results_dir.display()
    );
    if !failures.is_empty() {
        eprintln!("failures: {failures:?}");
        std::process::exit(1);
    }
}
