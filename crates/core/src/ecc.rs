//! SECDED error correction over the weight memory — the baseline the paper
//! argues against.
//!
//! The paper's introduction dismisses classic ECC: *"Common error
//! correcting codes (ECCs such as SECDED) cannot correct multiple bit
//! errors per word (containing multiple DNN weights). However, for p = 1%,
//! the probability of two or more bit errors in a 64-bit word is 13.5%."*
//! This module makes that argument quantitative: it models a
//! single-error-correct / double-error-detect code over 64-bit data words
//! (8 × 8-bit weights) and applies it to an injected weight image, so the
//! residual robust error with ECC can be measured and compared against
//! RandBET.
//!
//! Modeling notes: correction operates on the data bits; parity-bit
//! overhead (8 bits per 64-bit word for SECDED(72,64)) is accounted for in
//! the analytic error probabilities but parity-cell faults are not
//! injected — this *favors* ECC, strengthening the paper's argument when
//! ECC still loses at high `p`.

use bitrobust_quant::QuantizedTensor;

use crate::QuantizedModel;

/// What to do with a word where SECDED detects an uncorrectable
/// (double-or-more) error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoubleErrorPolicy {
    /// Leave the erroneous bits in place (correction simply fails).
    Leave,
    /// Set all weights of the word to the representation of 0.0 — the
    /// fault-masking policy of Reagen et al., 2016 (Minerva).
    ZeroWord,
}

/// SECDED configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecdedConfig {
    /// Weights per protected word (64-bit words hold 8 × 8-bit weights).
    pub weights_per_word: usize,
    /// Policy for uncorrectable words.
    pub policy: DoubleErrorPolicy,
}

impl Default for SecdedConfig {
    fn default() -> Self {
        Self { weights_per_word: 8, policy: DoubleErrorPolicy::Leave }
    }
}

/// Outcome statistics of one SECDED pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Words scanned.
    pub total_words: usize,
    /// Words with exactly one bit error (corrected).
    pub corrected_words: usize,
    /// Words with two or more bit errors (uncorrectable).
    pub uncorrectable_words: usize,
    /// Bit errors remaining after correction.
    pub residual_bit_errors: usize,
}

/// Applies SECDED correction to `dirty`, given the `clean` reference image
/// (the decoder knows the true data via its parity bits; the simulation
/// uses the clean image for the same purpose).
///
/// # Panics
///
/// Panics if the two models have different structure or
/// `cfg.weights_per_word == 0`.
pub fn apply_secded(
    clean: &QuantizedModel,
    dirty: &mut QuantizedModel,
    cfg: &SecdedConfig,
) -> EccStats {
    assert!(cfg.weights_per_word > 0, "weights_per_word must be positive");
    assert_eq!(clean.tensors().len(), dirty.tensors().len(), "model structure mismatch");
    let mut stats = EccStats::default();
    for (ct, dt) in clean.tensors().iter().zip(dirty.tensors_mut()) {
        correct_tensor(ct, dt, cfg, &mut stats);
    }
    stats
}

fn correct_tensor(
    clean: &QuantizedTensor,
    dirty: &mut QuantizedTensor,
    cfg: &SecdedConfig,
    stats: &mut EccStats,
) {
    assert_eq!(clean.len(), dirty.len(), "tensor length mismatch");
    let mask = clean.live_mask();
    let zero_word_level = zero_level(clean);
    let n = clean.len();
    let step = cfg.weights_per_word;
    let clean_words: Vec<u8> = clean.words().to_vec();
    let words = dirty.words_mut();
    let mut start = 0;
    while start < n {
        let end = (start + step).min(n);
        stats.total_words += 1;
        // Count bit errors in this word.
        let mut errors = 0u32;
        for i in start..end {
            errors += ((words[i] ^ clean_words[i]) & mask).count_ones();
        }
        match errors {
            0 => {}
            1 => {
                // Single error: SECDED corrects it exactly.
                words[start..end].copy_from_slice(&clean_words[start..end]);
                stats.corrected_words += 1;
            }
            _ => {
                stats.uncorrectable_words += 1;
                match cfg.policy {
                    DoubleErrorPolicy::Leave => {
                        stats.residual_bit_errors += errors as usize;
                    }
                    DoubleErrorPolicy::ZeroWord => {
                        words[start..end].fill(zero_word_level);
                        // Zeroing is not "errors" but it is information loss;
                        // count the bits that differ from clean.
                        for i in start..end {
                            stats.residual_bit_errors +=
                                ((words[i] ^ clean_words[i]) & mask).count_ones() as usize;
                        }
                    }
                }
            }
        }
        start = end;
    }
}

/// The stored word whose decoded value is closest to 0.0.
fn zero_level(t: &QuantizedTensor) -> u8 {
    let scheme = *t.scheme();
    let range = t.range();
    let mask = t.live_mask();
    let mut best = 0u8;
    let mut best_abs = f32::INFINITY;
    for word in 0..=mask {
        let v = scheme.dequantize_word(word, range).abs();
        if v < best_abs {
            best_abs = v;
            best = word;
        }
    }
    best
}

/// Probability that a word of `word_bits` cells has two or more bit errors
/// at rate `p` — the quantity behind the paper's "13.5% at p = 1%" claim
/// (64 data bits; 72 with parity).
///
/// # Panics
///
/// Panics unless `0 <= p <= 1` and `word_bits > 0`.
pub fn multi_error_probability(p: f64, word_bits: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
    assert!(word_bits > 0, "word must have bits");
    let q = 1.0 - p;
    let none = q.powi(word_bits as i32);
    let one = word_bits as f64 * p * q.powi(word_bits as i32 - 1);
    (1.0 - none - one).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_biterror::UniformChip;
    use bitrobust_nn::{Linear, Model, Sequential};
    use bitrobust_quant::QuantScheme;
    use rand::SeedableRng;

    fn quantized_toy(seed: u64) -> (Model, QuantizedModel) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Linear::new(32, 16, &mut rng));
        let model = Model::new("toy", net);
        let q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
        (model, q)
    }

    #[test]
    fn paper_claim_13_5_percent_at_p_1() {
        let p = multi_error_probability(0.01, 64);
        assert!((p - 0.135).abs() < 0.002, "got {p}");
    }

    #[test]
    fn single_errors_are_fully_corrected() {
        let (_, q0) = quantized_toy(1);
        let mut dirty = q0.clone();
        // Flip exactly one bit in the first word group.
        dirty.tensors_mut()[0].words_mut()[3] ^= 0x04;
        let stats = apply_secded(&q0, &mut dirty, &SecdedConfig::default());
        assert_eq!(stats.corrected_words, 1);
        assert_eq!(stats.uncorrectable_words, 0);
        assert_eq!(q0.hamming_distance(&dirty), 0);
    }

    #[test]
    fn double_errors_in_one_word_are_not_corrected() {
        let (_, q0) = quantized_toy(2);
        let mut dirty = q0.clone();
        dirty.tensors_mut()[0].words_mut()[0] ^= 0x01;
        dirty.tensors_mut()[0].words_mut()[1] ^= 0x80; // same 8-weight word
        let stats = apply_secded(&q0, &mut dirty, &SecdedConfig::default());
        assert_eq!(stats.corrected_words, 0);
        assert_eq!(stats.uncorrectable_words, 1);
        assert_eq!(q0.hamming_distance(&dirty), 2);
    }

    #[test]
    fn zero_word_policy_replaces_uncorrectable_words() {
        let (_, q0) = quantized_toy(3);
        let mut dirty = q0.clone();
        dirty.tensors_mut()[0].words_mut()[0] ^= 0x03; // two errors, one weight
        let cfg = SecdedConfig { policy: DoubleErrorPolicy::ZeroWord, ..Default::default() };
        let _ = apply_secded(&q0, &mut dirty, &cfg);
        // The whole first word (8 weights) decodes to ~0.
        let decoded = dirty.tensors()[0].dequantize();
        let range = dirty.tensors()[0].range();
        let delta = range.span() / 254.0;
        for v in decoded.iter().take(8) {
            assert!(v.abs() <= delta, "{v} should be ~0");
        }
    }

    #[test]
    fn ecc_removes_most_errors_at_low_rate_but_not_high() {
        let (_, q0) = quantized_toy(4);
        for (p, expect_good) in [(0.001, true), (0.15, false)] {
            let mut dirty = q0.clone();
            dirty.inject(&UniformChip::new(9).at_rate(p));
            let before = q0.hamming_distance(&dirty);
            let _ = apply_secded(&q0, &mut dirty, &SecdedConfig::default());
            let after = q0.hamming_distance(&dirty);
            if expect_good {
                assert!(after * 10 <= before.max(1), "low rate: {before} -> {after}");
            } else {
                assert!(after * 2 >= before, "high rate: {before} -> {after}");
            }
        }
    }

    #[test]
    fn multi_error_probability_is_monotone() {
        let mut last = 0.0;
        for p in [1e-4, 1e-3, 1e-2, 0.1] {
            let v = multi_error_probability(p, 72);
            assert!(v >= last);
            last = v;
        }
    }
}
