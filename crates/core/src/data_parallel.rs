//! Deterministic data-parallel training backend.
//!
//! Alg. 1 training was the last exclusive-access hot path: evaluation went
//! batch-parallel over `&Model` in the campaign engine, but every training
//! forward/backward still serialized through `&mut Model`. This module
//! shards each mini-batch over **backward-capable replicas** and combines
//! their gradients deterministically, so RandBET/PattBET training scales
//! the same way evaluation does.
//!
//! # Execution model
//!
//! Per forward/backward pass, the mini-batch's rows are split into
//! [`DataParallel::shards`] contiguous shards (sizes differing by at most
//! one). Shards run as a `shards × 1` grid on the shared
//! [`crate::scheduler`] executor, each against a **persistent replica**
//! from a [`crate::scheduler::ShardReplicas`] pool: the structural clone
//! ([`Model::clone`] — parameters and normalization state; caches and
//! probes start detached) happens once per training run, and every pass
//! merely re-syncs the parameter bits. Each shard worker:
//!
//! 1. copies the current parameters onto its replica
//!    ([`Model::set_param_tensors`] — an exact bit copy) and zeroes the
//!    replica's gradients,
//! 2. runs `forward(Mode::Train)` + `backward` on its shard, with the
//!    loss normalized by the *full* batch size
//!    ([`CrossEntropyLoss::compute_scaled`]), and
//! 3. hands back `(loss_sum, grad_tensors)`.
//!
//! Replica reuse is byte-identical to cloning fresh every pass: parameter
//! sync is exact, forward overwrites every activation cache
//! unconditionally, and each pass starts from zeroed gradients. Shard
//! results land in per-shard scheduler slots, then the gradient buffers
//! are combined with the fixed-shape serial [`tree_reduce_grads`] and the
//! loss sums are added in shard order.
//!
//! # Determinism contract
//!
//! The combined gradient and loss are **bit-identical regardless of thread
//! count** (`BITROBUST_THREADS=1`, `2`, max — pinned by the core
//! determinism suite), because each shard's computation is independent and
//! itself thread-count-deterministic, and everything that mixes shards is
//! serial with a fixed shape. [`DataParallel::serial`] routes the shard
//! loop through an in-order serial execution of the *same* shard
//! computations so tests can prove exactly that. The shard **count** is
//! part of the numerical contract (it decides where float sums split), so
//! it lives in the config — deliberately not derived from the pool size —
//! and experiment protocols fix it at [`TRAIN_SHARDS`].
//!
//! BatchNorm models are rejected: training-mode BatchNorm couples rows
//! through whole-batch statistics and updates running state, which
//! per-shard replicas would silently compute per-shard and then discard.

use bitrobust_nn::{tree_reduce_grads, CrossEntropyLoss, Mode, Model};
use bitrobust_tensor::Tensor;

use crate::scheduler::{self, ItemSizing, ShardReplicas};

/// Shard count fixed by the experiment protocol (zoo training, paper
/// reproduction binaries): enough to keep typical core counts busy, small
/// enough that per-shard batches stay substantial, and — because the shard
/// count decides where float sums split — constant so published numbers
/// are identical on every machine.
pub const TRAIN_SHARDS: usize = 8;

/// Configuration of data-parallel training (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataParallel {
    /// Number of contiguous shards each mini-batch is split into. Part of
    /// the numerical contract: changing it changes where float gradient
    /// sums split (thread count, by design, does not).
    pub shards: usize,
    /// Route the shard loop through an in-order serial execution instead of
    /// the thread pool. Results are bit-identical either way — this exists
    /// so the determinism suite can prove exactly that.
    pub serial: bool,
}

impl DataParallel {
    /// Data-parallel training over `shards` shards on the thread pool.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "data-parallel training needs at least one shard");
        Self { shards, serial: false }
    }

    /// The experiment-protocol configuration: [`TRAIN_SHARDS`] shards.
    pub fn protocol() -> Self {
        Self::new(TRAIN_SHARDS)
    }
}

/// The result of one sharded pass over a mini-batch.
pub(crate) struct ShardedPass {
    /// Batch-mean loss (shard loss sums reduced in shard order, f64).
    pub loss: f32,
    /// Gradient of the batch-mean loss, in parameter visit order, already
    /// tree-reduced across shards; `None` for a forward-only pass.
    pub grads: Option<Vec<Tensor>>,
}

/// Balanced contiguous shard boundaries: `rows` rows into `n` ranges whose
/// sizes differ by at most one, earlier shards taking the remainder.
fn shard_bounds(rows: usize, n: usize) -> Vec<(usize, usize)> {
    let base = rows / n;
    let rem = rows % n;
    (0..n)
        .map(|s| {
            let start = s * base + s.min(rem);
            let end = start + base + usize::from(s < rem);
            (start, end)
        })
        .collect()
}

/// Copies rows `start..end` of a batched tensor into a new tensor.
fn slice_rows(x: &Tensor, start: usize, end: usize) -> Tensor {
    let rows = x.dim(0);
    // Full assert, not debug_assert: shard disjointness is what lets the
    // per-shard buffers be merged without aliasing; check it in release too.
    assert!(start < end && end <= rows, "shard rows {start}..{end} out of 0..{rows}");
    let sample = x.numel() / rows;
    let mut shape = x.shape().to_vec();
    shape[0] = end - start;
    Tensor::from_vec(shape, x.data()[start * sample..end * sample].to_vec())
}

/// One data-parallel forward (and, with `need_grads`, backward) over
/// `(x, labels)` against the current state of `model` (which is only read;
/// gradients come back in the returned buffers and are merged by the
/// caller). `need_grads: false` skips the per-shard backward, gradient
/// extraction, and reduction entirely — the warm-up latch only needs the
/// loss when the clean gradient is about to be discarded (the
/// PerturbedOnly ablation past warm-up).
///
/// `replicas` is the pass's persistent shard-replica pool: callers keep it
/// alive across passes (one per training run) so replicas are cloned once
/// and merely re-synced afterwards. A fresh pool per call is always
/// correct — just slower — and byte-identical either way.
///
/// Empty shards cannot occur: the effective shard count is capped at the
/// row count, so a final partial mini-batch smaller than the configured
/// shard count simply uses fewer shards.
pub(crate) fn sharded_forward_backward(
    model: &Model,
    x: &Tensor,
    labels: &[usize],
    loss_fn: &CrossEntropyLoss,
    dp: &DataParallel,
    need_grads: bool,
    replicas: &mut ShardReplicas,
) -> ShardedPass {
    let rows = x.dim(0);
    assert!(rows > 0, "cannot train on an empty mini-batch");
    assert_eq!(labels.len(), rows, "labels/batch size mismatch");
    // `DataParallel`'s fields are public; re-establish the `new` invariant
    // here so a literal `shards: 0` fails with intent, not a divide-by-zero.
    assert!(dp.shards > 0, "data-parallel training needs at least one shard");

    let n_shards = dp.shards.min(rows);
    let bounds = shard_bounds(rows, n_shards);
    replicas.ensure(model, n_shards);
    let replicas: &ShardReplicas = replicas;
    let params = model.param_tensors();
    let run_shard = |s: usize| {
        bitrobust_obs::span!("train.shard");
        let (start, end) = bounds[s];
        let shard_x = slice_rows(x, start, end);
        replicas.with(s, |replica| {
            // Re-sync the persistent replica to the current model state:
            // exact parameter bits, gradients from zero (replicas keep
            // whatever the previous pass accumulated).
            replica.set_param_tensors(&params);
            replica.zero_grads();
            let out = {
                bitrobust_obs::span!("train.forward");
                let logits = replica.forward(&shard_x, Mode::Train);
                loss_fn.compute_scaled(&logits, &labels[start..end], rows)
            };
            if !need_grads {
                return (out.loss_sum, Vec::new());
            }
            bitrobust_obs::span!("train.backward");
            replica.backward(&out.grad);
            (out.loss_sum, replica.grad_tensors())
        })
    };

    let parts: Vec<(f64, Vec<Tensor>)> = if dp.serial {
        scheduler::execute_serial(n_shards, 1, |s, _| run_shard(s))
    } else {
        scheduler::execute(n_shards, 1, ItemSizing::PerBatch, |s, _| run_shard(s))
    };

    let mut loss_sum = 0f64;
    let mut buffers = Vec::with_capacity(n_shards);
    for (shard_loss, shard_grads) in parts {
        loss_sum += shard_loss;
        buffers.push(shard_grads);
    }
    bitrobust_obs::counter_add("train.shards", n_shards as u64);
    ShardedPass {
        loss: (loss_sum / rows as f64) as f32,
        grads: need_grads.then(|| {
            bitrobust_obs::span!("train.reduce");
            tree_reduce_grads(buffers)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn setup(batch: usize) -> (Model, Tensor, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let (train_ds, _) = SynthDataset::Mnist.generate(0);
        let (x, labels) = train_ds.batch_range(0, batch);
        (model, x, labels)
    }

    fn grad_bits(grads: &[Tensor]) -> Vec<u32> {
        grads.iter().flat_map(|t| t.data().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn shard_bounds_are_balanced_and_cover_all_rows() {
        for rows in [1usize, 5, 8, 17, 128] {
            for n in 1..=rows.min(9) {
                let bounds = shard_bounds(rows, n);
                assert_eq!(bounds.len(), n);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[n - 1].1, rows);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
                }
                let sizes: Vec<usize> = bounds.iter().map(|(s, e)| e - s).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "rows {rows} shards {n}: {sizes:?}");
                assert!(*min >= 1);
            }
        }
    }

    #[test]
    fn slice_rows_matches_dataset_range() {
        let (_, x, _) = setup(12);
        let s = slice_rows(&x, 3, 7);
        assert_eq!(s.shape(), &[4, 1, 14, 14]);
        let sample = 14 * 14;
        assert_eq!(s.data(), &x.data()[3 * sample..7 * sample]);
    }

    /// A single shard is exactly the direct forward/backward on the model:
    /// same loss bits, same gradient bits.
    #[test]
    fn one_shard_matches_direct_backward_bit_for_bit() {
        let (mut model, x, labels) = setup(32);
        let loss_fn = CrossEntropyLoss::new();

        let pass = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(1),
            true,
            &mut ShardReplicas::new(),
        );

        model.zero_grads();
        let logits = model.forward(&x, Mode::Train);
        let out = loss_fn.compute(&logits, &labels);
        model.backward(&out.grad);

        assert_eq!(pass.loss.to_bits(), out.loss.to_bits());
        let grads = pass.grads.expect("gradients were requested");
        assert_eq!(grad_bits(&grads), grad_bits(&model.grad_tensors()));
    }

    /// Parallel and serial shard execution must be byte-identical for every
    /// shard count, including counts exceeding the row count.
    #[test]
    fn parallel_matches_serial_reference_for_all_shard_counts() {
        let (model, x, labels) = setup(19);
        let loss_fn = CrossEntropyLoss::new();
        for shards in [1usize, 2, 3, 8, 64] {
            let parallel = sharded_forward_backward(
                &model,
                &x,
                &labels,
                &loss_fn,
                &DataParallel { shards, serial: false },
                true,
                &mut ShardReplicas::new(),
            );
            let serial = sharded_forward_backward(
                &model,
                &x,
                &labels,
                &loss_fn,
                &DataParallel { shards, serial: true },
                true,
                &mut ShardReplicas::new(),
            );
            assert_eq!(parallel.loss.to_bits(), serial.loss.to_bits(), "shards {shards}");
            assert_eq!(
                grad_bits(&parallel.grads.expect("requested")),
                grad_bits(&serial.grads.expect("requested")),
                "shards {shards}"
            );
        }
    }

    /// Sharding approximates the direct gradient to float tolerance (the
    /// exact bits legitimately differ: the split changes summation order).
    #[test]
    fn sharded_gradient_is_numerically_the_batch_gradient() {
        let (mut model, x, labels) = setup(40);
        let loss_fn = CrossEntropyLoss::new();
        let pass = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(4),
            true,
            &mut ShardReplicas::new(),
        );

        model.zero_grads();
        let logits = model.forward(&x, Mode::Train);
        let out = loss_fn.compute(&logits, &labels);
        model.backward(&out.grad);

        assert!((pass.loss - out.loss).abs() < 1e-5);
        let direct = model.grad_tensors();
        for (s, d) in pass.grads.expect("requested").iter().zip(&direct) {
            for (sv, dv) in s.data().iter().zip(d.data()) {
                assert!((sv - dv).abs() < 1e-5, "{sv} vs {dv}");
            }
        }
    }

    /// The primary model is untouched: no gradient, parameter, or cache
    /// changes leak out of a sharded pass.
    #[test]
    fn model_state_is_untouched() {
        let (mut model, x, labels) = setup(16);
        model.zero_grads();
        let params_before = model.param_tensors();
        let grads_before = model.grad_tensors();
        let _ = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &CrossEntropyLoss::new(),
            &DataParallel::protocol(),
            true,
            &mut ShardReplicas::new(),
        );
        assert_eq!(model.param_tensors(), params_before);
        assert_eq!(model.grad_tensors(), grads_before);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = DataParallel::new(0);
    }

    /// The public fields can bypass `DataParallel::new`; the pass itself
    /// must still reject a zero shard count with the intended message.
    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_literal_is_rejected_by_the_pass() {
        let (model, x, labels) = setup(8);
        let _ = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &CrossEntropyLoss::new(),
            &DataParallel { shards: 0, serial: false },
            true,
            &mut ShardReplicas::new(),
        );
    }

    /// A forward-only pass (the PerturbedOnly warm-up latch) yields the
    /// same loss bits as the full pass and skips gradient work entirely.
    #[test]
    fn forward_only_pass_matches_loss_and_skips_grads() {
        let (model, x, labels) = setup(24);
        let loss_fn = CrossEntropyLoss::new();
        let full = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(4),
            true,
            &mut ShardReplicas::new(),
        );
        let loss_only = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(4),
            false,
            &mut ShardReplicas::new(),
        );
        assert_eq!(loss_only.loss.to_bits(), full.loss.to_bits());
        assert!(loss_only.grads.is_none());
    }

    /// Different shard counts split the float gradient sums differently:
    /// the bits must actually depend on the configured count (this is what
    /// makes the count part of the numerical contract).
    #[test]
    fn shard_count_changes_gradient_summation() {
        let (model, x, labels) = setup(128);
        let loss_fn = CrossEntropyLoss::new();
        let two = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(2),
            true,
            &mut ShardReplicas::new(),
        );
        let four = sharded_forward_backward(
            &model,
            &x,
            &labels,
            &loss_fn,
            &DataParallel::new(4),
            true,
            &mut ShardReplicas::new(),
        );
        assert_ne!(
            grad_bits(&two.grads.expect("requested")),
            grad_bits(&four.grads.expect("requested")),
            "gradient bits must depend on the shard count"
        );
    }

    /// Persistent shard replicas must be byte-identical to fresh clones on
    /// every pass, including after the model's parameters change between
    /// passes (as every optimizer step does).
    #[test]
    fn persistent_replicas_match_fresh_clones_across_passes() {
        let (model, x, labels) = setup(32);
        let loss_fn = CrossEntropyLoss::new();
        let dp = DataParallel::new(4);
        let mut pool = ShardReplicas::new();

        let pass = |model: &Model, pool: &mut ShardReplicas| {
            sharded_forward_backward(model, &x, &labels, &loss_fn, &dp, true, pool)
        };

        let first_pooled = pass(&model, &mut pool);
        let first_fresh = pass(&model, &mut ShardReplicas::new());
        assert_eq!(first_pooled.loss.to_bits(), first_fresh.loss.to_bits());
        assert_eq!(
            grad_bits(&first_pooled.grads.expect("requested")),
            grad_bits(&first_fresh.grads.expect("requested"))
        );

        // Step the model as an optimizer would, then re-run with the same
        // (now stale-parameter) pool vs a fresh one.
        let mut stepped = model.clone();
        let updated: Vec<Tensor> = stepped
            .param_tensors()
            .iter()
            .map(|t| {
                Tensor::from_vec(t.shape().to_vec(), t.data().iter().map(|v| v * 0.9).collect())
            })
            .collect();
        stepped.set_param_tensors(&updated);

        let second_pooled = pass(&stepped, &mut pool);
        let second_fresh = pass(&stepped, &mut ShardReplicas::new());
        assert_eq!(second_pooled.loss.to_bits(), second_fresh.loss.to_bits());
        assert_eq!(
            grad_bits(&second_pooled.grads.expect("requested")),
            grad_bits(&second_fresh.grads.expect("requested"))
        );
        assert_ne!(
            first_pooled.loss.to_bits(),
            second_pooled.loss.to_bits(),
            "the parameter step must actually change the pass"
        );
    }
}
