//! Per-file analysis context: structure recovered from the token stream.
//!
//! Rules don't want raw tokens — they want questions answered: *which
//! function encloses this cast? is this token inside `#[cfg(test)]` code?
//! is there a `SAFETY:` comment immediately above this `unsafe`? does an
//! `analyze:allow` cover this line?* This module does the one structural
//! prepass that answers all of them, using brace matching over the token
//! stream (no parser; the sources are assumed to compile, which every
//! scanned file does by construction — CI builds them first).

use crate::lexer::{lex, Doc, Token, TokenKind};

/// A function item recovered from the token stream.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index range of the body (the tokens strictly inside the
    /// braces); empty for bodyless declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the item is declared `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Whether the item is an `unsafe fn`.
    pub is_unsafe: bool,
    /// Whether a `#[target_feature(...)]` attribute precedes the item.
    pub has_target_feature: bool,
    /// Concatenated text of the outer doc comments preceding the item.
    pub doc_text: String,
    /// Whether a plain (non-doc) comment containing `SAFETY:` immediately
    /// precedes the item (above its attributes/docs or between them).
    pub safety_comment: bool,
}

/// An inline suppression: `// analyze:allow(rule, reason)`.
#[derive(Debug)]
pub struct Suppression {
    /// The rule id being suppressed.
    pub rule: String,
    /// The justification (required; its absence is itself a finding).
    pub reason: String,
    /// Line of the comment.
    pub comment_line: usize,
    /// Lines the suppression covers: the comment's own line and the first
    /// code line at or below it.
    pub covers: [usize; 2],
    /// Set by the engine when the suppression actually masked a finding.
    pub used: std::cell::Cell<bool>,
}

/// A `#[...]` / `#![...]` attribute occurrence.
#[derive(Debug)]
pub struct Attribute {
    /// Token index of the `#`.
    pub hash_idx: usize,
    /// Token index range of the content between the brackets.
    pub content: std::ops::Range<usize>,
    /// Line of the `#`.
    pub line: usize,
}

/// Everything the rules need to know about one source file.
pub struct FileContext<'s> {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// The raw source.
    pub src: &'s str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Recovered function items.
    pub fns: Vec<FnItem>,
    /// Token-index ranges of `unsafe { ... }` block bodies.
    pub unsafe_blocks: Vec<std::ops::Range<usize>>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<std::ops::Range<usize>>,
    /// All attributes, in source order.
    pub attrs: Vec<Attribute>,
    /// Inline `analyze:allow` suppressions.
    pub suppressions: Vec<Suppression>,
}

impl<'s> FileContext<'s> {
    /// Lexes and structurally indexes one file.
    pub fn new(path: String, src: &'s str) -> Self {
        let tokens = lex(src);
        let attrs = collect_attrs(src, &tokens);
        let fns = collect_fns(src, &tokens, &attrs);
        let unsafe_blocks = collect_unsafe_blocks(src, &tokens);
        let test_spans = collect_test_spans(src, &tokens, &attrs);
        let suppressions = collect_suppressions(src, &tokens);
        Self { path, src, tokens, fns, unsafe_blocks, test_spans, attrs, suppressions }
    }

    /// Whether byte offset `pos` lies inside `#[cfg(test)]` / `#[test]`
    /// code.
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(&pos))
    }

    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns.iter().filter(|f| f.body.contains(&idx)).min_by_key(|f| f.body.end - f.body.start)
    }

    /// Whether token index `idx` lies inside an `unsafe { ... }` block.
    pub fn in_unsafe_block(&self, idx: usize) -> bool {
        self.unsafe_blocks.iter().any(|s| s.contains(&idx))
    }

    /// Returns the matching suppression for (`rule`, `line`) and marks it
    /// used.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Suppression> {
        let s = self.suppressions.iter().find(|s| s.rule == rule && s.covers.contains(&line))?;
        s.used.set(true);
        Some(s)
    }

    /// The trimmed source text of 1-based line `line`.
    pub fn line_text(&self, line: usize) -> &'s str {
        self.src.lines().nth(line.saturating_sub(1)).unwrap_or("").trim()
    }

    /// Index of the next non-comment token at or after `idx`.
    pub fn next_significant(&self, idx: usize) -> Option<usize> {
        (idx..self.tokens.len()).find(|&i| !self.tokens[i].is_comment())
    }

    /// Whether the token at `idx` sits inside a `use` declaration (between
    /// a `use` keyword and its terminating `;`).
    pub fn in_use_decl(&self, idx: usize) -> bool {
        // Walk back until the nearest statement/item boundary: a `use`
        // keyword first means we're inside an import (use trees contain
        // only `::`, braces, commas and idents, so no other keyword can
        // intervene); a `;` or an item-header keyword first means we're not.
        for i in (0..idx).rev() {
            let t = &self.tokens[i];
            if t.is_comment() {
                continue;
            }
            match t.text(self.src) {
                "use" if t.kind == TokenKind::Ident => return true,
                ";" => return false,
                "fn" | "mod" | "impl" | "struct" | "enum" | "trait" | "let" | "static"
                | "const" => return false,
                _ => {}
            }
        }
        false
    }
}

/// Finds the token index of the brace matching the `{` at `open`.
fn match_brace(src: &str, tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(src, '{') {
            depth += 1;
        } else if t.is_punct(src, '}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len() // unbalanced (mid-edit file): treat as running to EOF
}

fn collect_attrs(src: &str, tokens: &[Token]) -> Vec<Attribute> {
    let mut attrs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct(src, '#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct(src, '!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct(src, '[') {
                // Match the bracket.
                let mut depth = 0i32;
                let mut close = None;
                for (k, t) in tokens.iter().enumerate().skip(j) {
                    if t.is_punct(src, '[') {
                        depth += 1;
                    } else if t.is_punct(src, ']') {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(k);
                            break;
                        }
                    }
                }
                if let Some(close) = close {
                    attrs.push(Attribute {
                        hash_idx: i,
                        content: j + 1..close,
                        line: tokens[i].line,
                    });
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    attrs
}

/// Scans backwards from a `fn` keyword over its qualifiers, attributes and
/// doc comments, collecting everything [`FnItem`] records.
fn scan_fn_prefix(
    src: &str,
    tokens: &[Token],
    attrs: &[Attribute],
    fn_idx: usize,
) -> (bool, bool, bool, String, bool) {
    let mut is_pub = false;
    let mut is_unsafe = false;
    let mut has_target_feature = false;
    let mut docs_rev: Vec<&str> = Vec::new();
    let mut safety_comment = false;

    let mut i = fn_idx;
    while i > 0 {
        let prev = i - 1;
        let t = &tokens[prev];
        if let TokenKind::Comment { doc, .. } = t.kind {
            match doc {
                Doc::Outer => docs_rev.push(t.text(src)),
                Doc::Inner => break, // inner docs belong to an enclosing item
                Doc::No => {
                    if t.text(src).contains("SAFETY:") {
                        safety_comment = true;
                    }
                }
            }
            i = prev;
            continue;
        }
        match t.text(src) {
            "pub" | "crate" | "super" | "self" | "in" | "(" | ")" => {
                if t.text(src) == "pub" {
                    is_pub = true;
                }
                i = prev;
            }
            "unsafe" => {
                is_unsafe = true;
                i = prev;
            }
            "const" | "async" | "extern" => i = prev,
            _ if t.kind == TokenKind::Literal => i = prev, // extern "C" ABI string
            "]" => {
                // An attribute group: jump to its `#` if one ends here.
                match attrs.iter().find(|a| a.content.end == prev) {
                    Some(a) => {
                        let text: String = tokens[a.content.clone()]
                            .iter()
                            .map(|t| t.text(src))
                            .collect::<Vec<_>>()
                            .join(" ");
                        if text.contains("target_feature") {
                            has_target_feature = true;
                        }
                        i = a.hash_idx;
                    }
                    None => break,
                }
            }
            _ => break,
        }
    }
    let doc_text = docs_rev.iter().rev().copied().collect::<Vec<_>>().join("\n");
    (is_pub, is_unsafe, has_target_feature, doc_text, safety_comment)
}

fn collect_fns(src: &str, tokens: &[Token], attrs: &[Attribute]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident(src, "fn") {
            continue;
        }
        // `fn(usize)` in type position has no name; skip it.
        let Some(name_idx) = ((i + 1)..tokens.len()).find(|&j| !tokens[j].is_comment()) else {
            continue;
        };
        if tokens[name_idx].kind != TokenKind::Ident {
            continue;
        }
        let name = tokens[name_idx].text(src).to_string();
        // The body is the first `{` after the signature at paren/bracket
        // depth 0 (skipping generics is implicit: `<` `>` never enclose
        // braces in a signature). A `;` first means a bodyless declaration.
        let mut body = 0..0;
        let mut depth = 0i32;
        for (j, tj) in tokens.iter().enumerate().skip(name_idx + 1) {
            match tj.text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    let close = match_brace(src, tokens, j);
                    body = j + 1..close;
                    break;
                }
                _ => {}
            }
        }
        let (is_pub, is_unsafe, has_target_feature, doc_text, safety_comment) =
            scan_fn_prefix(src, tokens, attrs, i);
        fns.push(FnItem {
            name,
            fn_idx: i,
            body,
            is_pub,
            is_unsafe,
            has_target_feature,
            doc_text,
            safety_comment,
        });
    }
    fns
}

fn collect_unsafe_blocks(src: &str, tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident(src, "unsafe") {
            continue;
        }
        let Some(next) = ((i + 1)..tokens.len()).find(|&j| !tokens[j].is_comment()) else {
            continue;
        };
        if tokens[next].is_punct(src, '{') {
            let close = match_brace(src, tokens, next);
            spans.push(next + 1..close);
        }
    }
    spans
}

fn collect_test_spans(
    src: &str,
    tokens: &[Token],
    attrs: &[Attribute],
) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for attr in attrs {
        let content: Vec<&str> = tokens[attr.content.clone()].iter().map(|t| t.text(src)).collect();
        let is_test_attr = match content.first() {
            Some(&"test") => content.len() == 1,
            Some(&"cfg") => content.contains(&"test"),
            _ => false,
        };
        if !is_test_attr {
            continue;
        }
        // The attribute gates the next item: skip further attributes and
        // doc comments, then span to the matching `}` (or the `;`).
        let mut i = attr.content.end + 1; // past the `]`
        loop {
            let Some(j) = ((i)..tokens.len()).find(|&k| !tokens[k].is_comment()) else {
                return spans;
            };
            if tokens[j].is_punct(src, '#') {
                // Another attribute: skip its bracket group.
                match attrs.iter().find(|a| a.hash_idx == j) {
                    Some(a) => i = a.content.end + 1,
                    None => break,
                }
            } else {
                i = j;
                break;
            }
        }
        // Find the item's body brace or terminating semicolon.
        let mut depth = 0i32;
        for (j, tj) in tokens.iter().enumerate().skip(i) {
            match tj.text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    spans.push(tokens[i].start..tokens[j].end);
                    break;
                }
                "{" if depth == 0 => {
                    let close = match_brace(src, tokens, j);
                    let end = tokens.get(close).map_or(src.len(), |t| t.end);
                    spans.push(tokens[i].start..end);
                    break;
                }
                _ => {}
            }
        }
    }
    spans
}

fn collect_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        // Only plain comments carry directives — doc comments merely
        // *document* the syntax (the analyzer's own rustdoc would otherwise
        // self-trigger unknown-rule findings).
        let TokenKind::Comment { doc: Doc::No, .. } = t.kind else {
            continue;
        };
        let text = t.text(src);
        let Some(at) = text.find("analyze:allow(") else {
            continue;
        };
        let inner = &text[at + "analyze:allow(".len()..];
        let Some(close) = inner.find(')') else {
            // Malformed; record with empty rule so the hygiene rule flags it.
            out.push(Suppression {
                rule: String::new(),
                reason: String::new(),
                comment_line: t.line,
                covers: [t.line, t.line],
                used: std::cell::Cell::new(false),
            });
            continue;
        };
        let inner = &inner[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        // The suppression covers its own line and the first code line at or
        // below the comment (so it can sit above the flagged line or at its
        // end).
        let next_code_line =
            tokens.iter().skip(i + 1).find(|t| !t.is_comment()).map_or(t.end_line, |t| t.line);
        out.push(Suppression {
            rule,
            reason,
            comment_line: t.line,
            covers: [t.line, next_code_line],
            used: std::cell::Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext<'_> {
        FileContext::new("test.rs".into(), src)
    }

    #[test]
    fn recovers_fn_items_with_qualifiers_attrs_and_docs() {
        let src = "\
/// Does things.\n\
///\n\
/// # Safety\n\
/// Caller must hold the lock.\n\
#[target_feature(enable = \"avx\")]\n\
pub unsafe fn shim(x: usize) -> usize { x + 1 }\n\
fn plain() {}\n";
        let c = ctx(src);
        assert_eq!(c.fns.len(), 2);
        let shim = &c.fns[0];
        assert_eq!(shim.name, "shim");
        assert!(shim.is_pub && shim.is_unsafe && shim.has_target_feature);
        assert!(shim.doc_text.contains("# Safety"));
        let plain = &c.fns[1];
        assert!(!plain.is_pub && !plain.is_unsafe && !plain.has_target_feature);
    }

    #[test]
    fn safety_comment_above_attrs_is_attached_to_the_fn() {
        let src = "// SAFETY: callers checked the feature.\n#[inline]\nunsafe fn f() {}\n";
        let c = ctx(src);
        assert!(c.fns[0].safety_comment);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(f: fn(usize) -> usize) -> fn() { unimplemented!() }";
        let c = ctx(src);
        assert_eq!(c.fns.len(), 1);
        assert_eq!(c.fns[0].name, "real");
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let c = ctx(src);
        let x_idx = c.tokens.iter().position(|t| t.is_ident(src, "x")).expect("x token");
        assert_eq!(c.enclosing_fn(x_idx).unwrap().name, "inner");
    }

    #[test]
    fn unsafe_blocks_are_spanned_and_queried() {
        let src = "fn f() { let a = 1; unsafe { danger(); } let b = 2; }";
        let c = ctx(src);
        let danger = c.tokens.iter().position(|t| t.is_ident(src, "danger")).expect("danger");
        let a = c.tokens.iter().position(|t| t.is_ident(src, "a")).expect("a");
        assert!(c.in_unsafe_block(danger));
        assert!(!c.in_unsafe_block(a));
    }

    #[test]
    fn cfg_test_mod_span_covers_its_contents_only() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn prod2() {}\n";
        let c = ctx(src);
        let helper = c.tokens.iter().find(|t| t.is_ident(src, "helper")).expect("helper");
        let prod2 = c.tokens.iter().find(|t| t.is_ident(src, "prod2")).expect("prod2");
        assert!(c.in_test_code(helper.start));
        assert!(!c.in_test_code(prod2.start));
    }

    #[test]
    fn test_attr_on_fn_is_a_test_span() {
        let src = "#[test]\nfn a_test() { body(); }\nfn not_test() {}\n";
        let c = ctx(src);
        let body = c.tokens.iter().find(|t| t.is_ident(src, "body")).expect("body");
        let nt = c.tokens.iter().find(|t| t.is_ident(src, "not_test")).expect("nt");
        assert!(c.in_test_code(body.start));
        assert!(!c.in_test_code(nt.start));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(target_arch = \"x86_64\")]\nfn simd() { x(); }\n";
        let c = ctx(src);
        let x = c.tokens.iter().find(|t| t.is_ident(src, "x")).expect("x");
        assert!(!c.in_test_code(x.start));
    }

    #[test]
    fn suppressions_cover_their_line_and_the_next_code_line() {
        let src = "\
// analyze:allow(det-thread-count, sizing only, bytes unaffected)\n\
let n = pool_parallelism();\n\
let m = 2;\n";
        let c = ctx(src);
        assert_eq!(c.suppressions.len(), 1);
        let s = &c.suppressions[0];
        assert_eq!(s.rule, "det-thread-count");
        assert!(s.reason.contains("sizing only"));
        assert!(c.suppression_for("det-thread-count", 2).is_some());
        assert!(c.suppression_for("det-thread-count", 3).is_none());
        assert!(c.suppressions[0].used.get());
    }

    #[test]
    fn suppression_without_reason_parses_with_empty_reason() {
        let src = "// analyze:allow(cast-boundary)\nlet x = 1;\n";
        let c = ctx(src);
        assert_eq!(c.suppressions[0].rule, "cast-boundary");
        assert!(c.suppressions[0].reason.is_empty());
    }

    #[test]
    fn use_decl_detection() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f() { let m = HashMap::new(); }";
        let c = ctx(src);
        let first = c.tokens.iter().position(|t| t.is_ident(src, "HashMap")).unwrap();
        let last = c.tokens.iter().rposition(|t| t.is_ident(src, "HashMap")).unwrap();
        assert!(c.in_use_decl(first));
        assert!(!c.in_use_decl(last));
    }
}
