//! Property-based tests of NN invariants.

use bitrobust_nn::{
    Conv2d, CrossEntropyLoss, Flatten, GroupNorm, Layer, Linear, MaxPool2d, Mode, Relu, Sequential,
};
use bitrobust_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Cross-entropy logit gradients sum to zero per example (softmax
    /// shift invariance), with or without label smoothing.
    #[test]
    fn ce_grad_rows_sum_to_zero(logits in prop::collection::vec(-5.0f32..5.0, 12),
                                smooth in prop::bool::ANY) {
        let t = Tensor::from_vec(vec![3, 4], logits);
        let loss = if smooth {
            CrossEntropyLoss::with_label_smoothing(0.9)
        } else {
            CrossEntropyLoss::new()
        };
        let out = loss.compute(&t, &[0, 1, 3]);
        for r in 0..3 {
            let s: f32 = out.grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} sums to {}", r, s);
        }
    }

    /// Loss is shift-invariant: adding a constant to all logits of an
    /// example changes nothing.
    #[test]
    fn ce_loss_shift_invariant(base in prop::collection::vec(-3.0f32..3.0, 5),
                               shift in -10.0f32..10.0) {
        let loss = CrossEntropyLoss::new();
        let t1 = Tensor::from_vec(vec![1, 5], base.clone());
        let shifted: Vec<f32> = base.iter().map(|v| v + shift).collect();
        let t2 = Tensor::from_vec(vec![1, 5], shifted);
        let l1 = loss.compute(&t1, &[2]).loss;
        let l2 = loss.compute(&t2, &[2]).loss;
        prop_assert!((l1 - l2).abs() < 1e-4);
    }

    /// ReLU is idempotent: relu(relu(x)) = relu(x).
    #[test]
    fn relu_idempotent(data in prop::collection::vec(-2.0f32..2.0, 16)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4, 4], data);
        let once = relu.forward(&x, Mode::Eval);
        let twice = relu.forward(&once, Mode::Eval);
        prop_assert_eq!(once, twice);
    }

    /// A linear network is homogeneous: scaling the input scales the
    /// pre-bias output linearly. (Checks the matmul path through layers.)
    #[test]
    fn linear_scales_with_input(scale in 0.1f32..3.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut net = Sequential::new();
        let mut fc = Linear::new(6, 4, &mut rng);
        // Zero the bias so homogeneity is exact.
        fc.visit_params(&mut |p| {
            if p.name() == "bias" {
                p.value_mut().fill(0.0);
            }
        });
        net.push(fc);
        let x = Tensor::rand_uniform(&[2, 6], -1.0, 1.0, &mut rng);
        let y1 = net.forward(&x, Mode::Eval);
        let xs = x.map(|v| v * scale);
        let y2 = net.forward(&xs, Mode::Eval);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + a.abs() * scale));
        }
    }

    /// The immutable `infer` path is bit-identical to an eval-mode
    /// `forward` through a full layer stack (conv, norm, pooling, linear),
    /// for both eval modes and arbitrary inputs/seeds — even right after a
    /// training forward populated the caches.
    #[test]
    fn infer_matches_eval_forward(seed in 0u64..1000,
                                  data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 8 * 8),
                                  batch_stats in prop::bool::ANY) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, &mut rng));
        net.push(GroupNorm::new(4, 2));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Linear::new(4 * 4 * 4, 3, &mut rng));
        let x = Tensor::from_vec(vec![2, 2, 8, 8], data);
        // A training pass first: stale caches must not leak into infer.
        let _ = net.forward(&x, Mode::Train);
        let mode = if batch_stats { Mode::EvalBatchStats } else { Mode::Eval };
        let via_forward = net.forward(&x, mode);
        let via_infer = net.infer(&x, mode);
        prop_assert_eq!(via_forward, via_infer);
    }
}
