//! # bitrobust-experiments
//!
//! Shared infrastructure for the per-table / per-figure reproduction
//! binaries (see `DESIGN.md` §5 for the experiment index): a disk-backed
//! zoo of trained models, glue for the durable sweep orchestrator
//! ([`sweeps`]), table formatting helpers, and the common command-line
//! options.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod protocol;
pub mod sweeps;
pub mod table;
pub mod zoo;

pub use cli::ExpOptions;
pub use protocol::{
    p_grid_cifar, p_grid_cifar100, p_grid_mnist, progress_dots, protocol_axis, protocol_grid,
    rerr_sweep, rerr_sweep_streaming, CHIP_SEED,
};
pub use sweeps::{open_sweep_store, sweep_dir, sweep_models, sweep_progress};
pub use table::{pct, pct_pm, Table};
pub use zoo::{dataset_pair, warm_zoo, zoo_model, DatasetKind, ZooSpec};
