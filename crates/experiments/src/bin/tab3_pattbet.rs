//! **Tab. 3 / Tab. 16** — Fixed-pattern bit error training (`PATTBET`)
//! does not generalize.
//!
//! Trains on one fixed bit error pattern (the co-design approach of
//! Kim et al., 2018 / Koppula et al., 2019) and evaluates:
//!
//! * on the *same* pattern at the trained rate and at a lower rate (the
//!   lower-rate errors are a subset of the trained ones — and still break
//!   the model);
//! * on completely random patterns (catastrophic).
//!
//! The `RANDBET` row shows the contrast: trained on fresh random errors,
//! it generalizes to both.

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    robust_eval, robust_eval_uniform, PattPattern, RandBetVariant, TrainMethod, EVAL_BATCH,
};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

const FIXED_CHIP_SEED: u64 = 777_777;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let (p_train, p_low) = (0.025, 0.01);

    let configs: Vec<(String, TrainMethod)> = vec![
        (
            format!("PATTBET p={:.1}%", 100.0 * p_train),
            TrainMethod::PattBet {
                wmax: None,
                pattern: PattPattern::Uniform { seed: FIXED_CHIP_SEED, p: p_train },
            },
        ),
        (
            format!("PATTBET 0.15 p={:.1}%", 100.0 * p_train),
            TrainMethod::PattBet {
                wmax: Some(0.15),
                pattern: PattPattern::Uniform { seed: FIXED_CHIP_SEED, p: p_train },
            },
        ),
        (
            format!("RANDBET 0.15 p={:.1}%", 100.0 * p_train),
            TrainMethod::RandBet {
                wmax: Some(0.15),
                p: p_train,
                variant: RandBetVariant::Standard,
            },
        ),
    ];

    let mut table = Table::new(&[
        "model",
        "Err %",
        "same patt p=1%",
        "same patt p=2.5%",
        "random p=1%",
        "random p=2.5%",
    ]);
    for (name, method) in configs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);

        // Evaluation on the exact trained pattern: same chip seed. Lower
        // rates are subsets of the trained pattern by construction.
        let fixed = UniformChip::new(FIXED_CHIP_SEED);
        let same_low =
            robust_eval(&model, scheme, &test_ds, &[fixed.at_rate(p_low)], EVAL_BATCH, Mode::Eval);
        let same_train = robust_eval(
            &model,
            scheme,
            &test_ds,
            &[fixed.at_rate(p_train)],
            EVAL_BATCH,
            Mode::Eval,
        );
        // Evaluation on unseen random patterns.
        let rand_low = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            p_low,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        let rand_train = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            p_train,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        table.row_owned(vec![
            name,
            pct(report.clean_error as f64),
            pct(same_low.mean_error as f64),
            pct(same_train.mean_error as f64),
            pct(rand_low.mean_error as f64),
            pct(rand_train.mean_error as f64),
        ]);
    }
    println!(
        "Tab. 3 (CIFAR10 stand-in, m = 8 bit, fixed pattern seed {FIXED_CHIP_SEED}):\n{}",
        table.render()
    );
    println!("Expected shape (paper): PATTBET is good on its trained pattern but degrades on the");
    println!("same pattern at lower rate and fails on random patterns; RANDBET handles all.");
}
