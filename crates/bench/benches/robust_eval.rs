//! End-to-end robust evaluation cost: quantize → inject → dequantize →
//! forward over a test set, per simulated chip — comparing the serial
//! reference path against the parallel fault-injection campaign engine,
//! plus clean (single-pattern) evaluation through the same engine,
//! single-model vs data-parallel RandBET training, and per-model
//! `run_grid` loops vs the orchestrated multi-model sweep (`run_sweep`).
//!
//! Besides the criterion benchmarks, running this bench writes a
//! machine-readable `BENCH_robust_eval.json` at the workspace root with
//! serial vs parallel wall-clock and the resulting speedups. CI uploads
//! the file as an artifact and **fails the build if the campaign path or
//! data-parallel training regresses to slower than serial** on multi-core
//! runners (`speedup < 1.0`), with a graded floor for the orchestrated
//! sweep (its baseline is already parallel).

use std::time::Instant;

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    build, evaluate, evaluate_serial, robust_eval_uniform, run_grid, run_sweep, train, ArchKind,
    Campaign, CampaignGrid, ChipAxis, DataParallel, NormKind, QuantizedModel, RandBetVariant,
    ReplicaStrategy, RobustEval, SweepAxis, SweepModel, SweepOptions, TrainConfig, TrainMethod,
    TrainReport,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use criterion::{criterion_group, Criterion};
use rand::SeedableRng;

const N_CHIPS: usize = 8;
const RATE: f64 = 0.01;
const BATCH: usize = 256;
const TRAIN_EPOCHS: usize = 2;
const TRAIN_BATCH: usize = 128;
/// Models in the orchestrated-sweep comparison.
const SWEEP_MODELS: usize = 2;
/// Chips per rate of the per-model grids the sweep orchestrates.
const SWEEP_CHIPS: usize = 4;

fn setup() -> (Model, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let (_, test_ds) = SynthDataset::Mnist.generate(0);
    (built.model, test_ds)
}

/// A short RandBET training run, single-model (`data_parallel: None`) or
/// sharded; returns the report so callers can sanity-check determinism.
fn train_once(data_parallel: Option<DataParallel>) -> TrainReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (train_src, test_src) = SynthDataset::Mnist.generate(0);
    let (xt, yt) = train_src.batch_range(0, 600);
    let (xe, ye) = test_src.batch_range(0, 300);
    let train_ds = Dataset::new("train", xt, yt, 10);
    let test_ds = Dataset::new("test", xe, ye, 10);
    let mut cfg = TrainConfig::new(
        Some(QuantScheme::rquant(8)),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
    );
    cfg.epochs = TRAIN_EPOCHS;
    cfg.batch_size = TRAIN_BATCH;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 100.0;
    cfg.data_parallel = data_parallel;
    train(&mut model, &train_ds, &test_ds, &cfg)
}

/// The multi-model sweep comparison setup: `SWEEP_MODELS` distinct models
/// plus the shared rate grid their cells span.
fn sweep_setup() -> (Vec<Model>, Vec<f64>, Dataset) {
    let (_, test_ds) = SynthDataset::Mnist.generate(0);
    let models: Vec<Model> = (0..SWEEP_MODELS as u64)
        .map(|seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model
        })
        .collect();
    (models, vec![0.005, RATE], test_ds)
}

/// The baseline the orchestrator replaces: one (already parallel)
/// `run_grid` campaign per model, in sequence.
fn per_model_grids(models: &[Model], rates: &[f64], test_ds: &Dataset) -> Vec<Vec<RobustEval>> {
    let grid = CampaignGrid::uniform(QuantScheme::rquant(8), rates.to_vec(), SWEEP_CHIPS, 42);
    models.iter().map(|m| run_grid(m, &grid, test_ds, BATCH, Mode::Eval).remove(0)).collect()
}

/// The orchestrated path: every model's cells in one fan-out (no store —
/// this measures pure compute).
fn orchestrated_sweep(models: &[Model], rates: &[f64], test_ds: &Dataset) -> Vec<Vec<RobustEval>> {
    let entries: Vec<SweepModel> = models
        .iter()
        .enumerate()
        .map(|(i, m)| SweepModel::new(format!("bench-{i}"), QuantScheme::rquant(8), m))
        .collect();
    let axes = vec![SweepAxis::new("uniform", ChipAxis::uniform(rates.to_vec(), SWEEP_CHIPS, 42))];
    let opts = SweepOptions { batch_size: BATCH, mode: Mode::Eval };
    let results = run_sweep(&entries, &axes, test_ds, &opts, None, |_, _| {});
    (0..models.len()).map(|mi| results.robust(mi, 0)).collect()
}

/// The native integer-domain path: compile each chip image to a `QNet`
/// once, then forward the whole test set through it batch by batch —
/// single-threaded, like the serial campaign reference it is compared to.
fn native_int8_forward(model: &Model, images: &[QuantizedModel], test_ds: &Dataset) -> usize {
    let n = test_ds.len();
    let mut correct = 0;
    for image in images {
        let net = image.compile(model).expect("bench MLP must lower to a QNet");
        let mut start = 0;
        while start < n {
            let end = (start + BATCH).min(n);
            let (x, labels) = test_ds.batch_range(start, end);
            let logits = net.infer(&x);
            let classes = logits.dim(1);
            for (row, &label) in labels.iter().enumerate() {
                let row = &logits.data()[row * classes..(row + 1) * classes];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                correct += (pred == label) as usize;
            }
            start = end;
        }
    }
    correct
}

fn chip_images(model: &Model) -> Vec<QuantizedModel> {
    let q0 = QuantizedModel::quantize(model, QuantScheme::rquant(8));
    (0..N_CHIPS)
        .map(|c| {
            let mut q = q0.clone();
            q.inject(&UniformChip::new(42 + c as u64).at_rate(RATE));
            q
        })
        .collect()
}

fn bench_robust_eval(c: &mut Criterion) {
    let (model, test_ds) = setup();
    let images = chip_images(&model);

    let mut group = c.benchmark_group("robust_eval");
    group.sample_size(10);
    group.bench_function("serial_8chip_1000ex", |b| {
        b.iter(|| Campaign::new(&model, &test_ds).batch_size(BATCH).serial().run(&images))
    });
    group.bench_function("campaign_8chip_1000ex", |b| {
        b.iter(|| Campaign::new(&model, &test_ds).batch_size(BATCH).run(&images))
    });
    group.bench_function("campaign_per_pattern_8chip_1000ex", |b| {
        b.iter(|| {
            Campaign::new(&model, &test_ds)
                .batch_size(BATCH)
                .replicas(ReplicaStrategy::PerPattern)
                .run(&images)
        })
    });
    group.bench_function("native_int8_8chip_1000ex", |b| {
        b.iter(|| native_int8_forward(&model, &images, &test_ds))
    });
    group.bench_function("clean_serial_1000ex", |b| {
        b.iter(|| evaluate_serial(&model, &test_ds, BATCH, Mode::Eval))
    });
    group.bench_function("clean_campaign_1000ex", |b| {
        b.iter(|| evaluate(&model, &test_ds, BATCH, Mode::Eval))
    });
    group.bench_function("wrapper_1chip_1000ex", |b| {
        b.iter(|| {
            robust_eval_uniform(
                &model,
                QuantScheme::rquant(8),
                &test_ds,
                RATE,
                1,
                42,
                BATCH,
                Mode::Eval,
            )
        })
    });
    group.bench_function("quantize_model", |b| {
        b.iter(|| QuantizedModel::quantize(&model, QuantScheme::rquant(8)))
    });
    group.bench_function("train_serial_2ep_600ex", |b| b.iter(|| train_once(None)));
    group.bench_function("train_parallel_2ep_600ex", |b| {
        b.iter(|| train_once(Some(DataParallel::protocol())))
    });
    let (models, rates, sweep_ds) = sweep_setup();
    group.bench_function("per_model_grids_2model", |b| {
        b.iter(|| per_model_grids(&models, &rates, &sweep_ds))
    });
    group.bench_function("orchestrated_sweep_2model", |b| {
        b.iter(|| orchestrated_sweep(&models, &rates, &sweep_ds))
    });
    group.finish();
}

criterion_group!(benches, bench_robust_eval);

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_of<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measures serial vs parallel throughput (robust evaluation, clean
/// evaluation, and single-model vs data-parallel training) and writes the
/// comparison to `BENCH_robust_eval.json` at the workspace root.
fn emit_json_comparison() {
    let (model, test_ds) = setup();
    let images = chip_images(&model);

    // Warm up the thread pool and verify the determinism guarantees once.
    let serial_ref = Campaign::new(&model, &test_ds).batch_size(BATCH).serial().run(&images);
    let campaign_ref = Campaign::new(&model, &test_ds).batch_size(BATCH).run(&images);
    assert_eq!(serial_ref, campaign_ref, "engine must be bit-identical to the serial path");
    let per_pattern_ref = Campaign::new(&model, &test_ds)
        .batch_size(BATCH)
        .replicas(ReplicaStrategy::PerPattern)
        .run(&images);
    assert_eq!(
        serial_ref, per_pattern_ref,
        "per-pattern replicas must be bit-identical to the serial path"
    );
    let clean_serial_ref = evaluate_serial(&model, &test_ds, BATCH, Mode::Eval);
    let clean_campaign_ref = evaluate(&model, &test_ds, BATCH, Mode::Eval);
    assert_eq!(
        clean_serial_ref, clean_campaign_ref,
        "clean evaluate must be bit-identical to its serial reference"
    );

    // Data-parallel training must be bit-identical to its serial shard
    // reference; the shard count, not the thread count, defines the bits.
    let train_parallel_ref = train_once(Some(DataParallel::protocol()));
    let train_shard_serial_ref =
        train_once(Some(DataParallel { serial: true, ..DataParallel::protocol() }));
    assert_eq!(
        train_parallel_ref, train_shard_serial_ref,
        "data-parallel training must be bit-identical to its serial shard reference"
    );

    let reps = 3;
    let serial_secs = best_of(
        || drop(Campaign::new(&model, &test_ds).batch_size(BATCH).serial().run(&images)),
        reps,
    );
    let campaign_secs =
        best_of(|| drop(Campaign::new(&model, &test_ds).batch_size(BATCH).run(&images)), reps);
    // `campaign_secs` above already measures the shared-image default
    // (patterns held as integer images, f32 scratch bounded by the pool);
    // it is re-emitted as `int8_shared_image_secs` next to the legacy
    // per-pattern strategy and the fully native int8 forward.
    let int8_per_pattern_secs = best_of(
        || {
            drop(
                Campaign::new(&model, &test_ds)
                    .batch_size(BATCH)
                    .replicas(ReplicaStrategy::PerPattern)
                    .run(&images),
            )
        },
        reps,
    );
    let int8_native_infer_secs = best_of(
        || {
            native_int8_forward(&model, &images, &test_ds);
        },
        reps,
    );
    let clean_serial_secs = best_of(
        || {
            evaluate_serial(&model, &test_ds, BATCH, Mode::Eval);
        },
        reps,
    );
    let clean_campaign_secs = best_of(
        || {
            evaluate(&model, &test_ds, BATCH, Mode::Eval);
        },
        reps,
    );
    let train_serial_secs = best_of(|| drop(train_once(None)), reps);
    let train_parallel_secs = best_of(|| drop(train_once(Some(DataParallel::protocol()))), reps);

    // Orchestrated multi-model sweep vs sequential per-model grids: the
    // cells must be byte-identical, the fused fan-out at least as fast.
    let (sweep_models, sweep_rates, sweep_ds) = sweep_setup();
    let per_model_ref = per_model_grids(&sweep_models, &sweep_rates, &sweep_ds);
    let sweep_ref = orchestrated_sweep(&sweep_models, &sweep_rates, &sweep_ds);
    assert_eq!(
        per_model_ref, sweep_ref,
        "orchestrated sweep must be bit-identical to per-model grids"
    );
    let per_model_secs =
        best_of(|| drop(per_model_grids(&sweep_models, &sweep_rates, &sweep_ds)), reps);
    let sweep_secs =
        best_of(|| drop(orchestrated_sweep(&sweep_models, &sweep_rates, &sweep_ds)), reps);

    // `threads` is the pool's *own* accounting of what it actually used
    // (`pool_parallelism()`), not the raw environment request:
    // BITROBUST_THREADS is clamped to the supported range and unset means
    // auto-detect, so only the pool knows the real worker count.
    // `threads_env` records the raw request (or null) so a `threads: 1`
    // row on a multi-core runner is attributable to its override instead
    // of reading like a regression.
    let threads = bitrobust_tensor::pool_parallelism();
    let threads_env = std::env::var("BITROBUST_THREADS")
        .map(|v| format!("\"{}\"", v.replace(['"', '\\'], "_")))
        .unwrap_or_else(|_| "null".to_string());
    let json = format!(
        "{{\n  \"bench\": \"robust_eval\",\n  \"arch\": \"mlp\",\n  \"dataset\": \"{}\",\n  \
         \"examples\": {},\n  \"n_chips\": {},\n  \"rate\": {},\n  \"batch_size\": {},\n  \
         \"threads\": {},\n  \"threads_env\": {},\n  \
         \"serial_secs\": {:.6},\n  \"campaign_secs\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"int8_shared_image_secs\": {:.6},\n  \
         \"int8_per_pattern_secs\": {:.6},\n  \"int8_native_infer_secs\": {:.6},\n  \
         \"int8_native_speedup\": {:.3},\n  \"clean_serial_secs\": {:.6},\n  \
         \"clean_campaign_secs\": {:.6},\n  \"clean_speedup\": {:.3},\n  \
         \"train_serial_secs\": {:.6},\n  \"train_parallel_secs\": {:.6},\n  \
         \"train_speedup\": {:.3},\n  \"train_shards\": {},\n  \
         \"sweep_models\": {},\n  \"per_model_secs\": {:.6},\n  \
         \"sweep_secs\": {:.6},\n  \"sweep_speedup\": {:.3},\n  \
         \"bit_identical\": true\n}}\n",
        test_ds.name(),
        test_ds.len(),
        N_CHIPS,
        RATE,
        BATCH,
        threads,
        threads_env,
        serial_secs,
        campaign_secs,
        serial_secs / campaign_secs,
        campaign_secs,
        int8_per_pattern_secs,
        int8_native_infer_secs,
        serial_secs / int8_native_infer_secs,
        clean_serial_secs,
        clean_campaign_secs,
        clean_serial_secs / clean_campaign_secs,
        train_serial_secs,
        train_parallel_secs,
        train_serial_secs / train_parallel_secs,
        bitrobust_core::TRAIN_SHARDS,
        SWEEP_MODELS,
        per_model_secs,
        sweep_secs,
        per_model_secs / sweep_secs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robust_eval.json");
    std::fs::write(path, &json).expect("write BENCH_robust_eval.json");
    println!("serial vs campaign comparison written to {path}:\n{json}");
}

fn main() {
    benches();
    emit_json_comparison();
}
