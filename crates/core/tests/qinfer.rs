//! Tolerance pinning for the native integer-domain forward pass.
//!
//! `QuantizedModel::infer` stays in i8/i32 end-to-end (words → i8 panels
//! → i32 accumulate → requantize), while the reference path dequantizes
//! the same snapshot into an `f32` replica and runs the float kernels.
//! Both see *identical* quantized weights, so the only divergence is the
//! dynamic 8-bit activation quantization plus f32-vs-i32 rounding — a
//! bounded, scheme-independent error. These tests pin that bound with
//! proptest over shapes × the full quantization-scheme lattice, and pin
//! run-to-run byte determinism (the ISSUE's thread-matrix case lives in
//! `determinism.rs`, where the native-infer fingerprint joins the
//! 1/2/max-thread worker).

use bitrobust_core::QuantizedModel;
use bitrobust_nn::{
    Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Mode, Model, Relu, Sequential,
};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

/// The scheme lattice: every named construction at 8 bits plus the
/// low-precision corner (`rquant` uses proper rounding + asymmetric
/// unsigned; `symmetric`/`eq1_global` exercise the signed and global
/// branches of the i8 decode).
fn scheme(index: usize) -> QuantScheme {
    match index % 8 {
        0 => QuantScheme::rquant(8),
        1 => QuantScheme::eq1_global(8),
        2 => QuantScheme::normal(8),
        3 => QuantScheme::asymmetric_signed(8),
        4 => QuantScheme::asymmetric_unsigned(8),
        5 => QuantScheme::symmetric(8),
        6 => QuantScheme::rquant(4),
        _ => QuantScheme::symmetric(4),
    }
}

/// Dequantize-then-float reference: the exact forward campaigns run
/// through `write_to` scratch replicas.
fn float_reference(model: &Model, q: &QuantizedModel, x: &Tensor) -> Tensor {
    let mut replica = model.clone();
    q.write_to(&mut replica);
    replica.infer(x, Mode::Eval)
}

/// Asserts `y_int` tracks `y_ref` within the activation-quantization
/// tolerance: both paths share quantized weights, so the divergence is
/// bounded by the dynamic i8 activation grid, not the weight scheme.
fn assert_within_tolerance(y_ref: &Tensor, y_int: &Tensor, context: &str) {
    assert_eq!(y_ref.shape(), y_int.shape(), "{context}: output shape diverged");
    let amax = y_ref.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let tol = 0.1 * amax.max(1.0);
    for (i, (a, b)) in y_ref.data().iter().zip(y_int.data()).enumerate() {
        assert!(
            (a - b).abs() <= tol,
            "{context}: logit {i} diverged beyond quantization tolerance: \
             float {a} vs int {b} (tol {tol})"
        );
    }
}

fn mlp_case(batch: usize, in_f: usize, hidden: usize, out_f: usize, seed: u64) -> (Model, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut root = Sequential::new();
    root.push(Linear::new(in_f, hidden, &mut rng));
    root.push(Relu::new());
    root.push(Linear::new(hidden, out_f, &mut rng));
    let model = Model::new("qinfer-mlp", root);
    let x = Tensor::randn(&[batch, in_f], 1.0, &mut rng);
    (model, x)
}

proptest! {
    /// Linear nets: random shapes × the scheme lattice. The int path must
    /// track the float reference within quantization tolerance, and two
    /// native runs must be byte-identical.
    #[test]
    fn native_infer_tracks_float_reference_on_mlps(
        batch in 1usize..5,
        in_f in 1usize..24,
        hidden in 1usize..24,
        out_f in 1usize..10,
        scheme_index in 0usize..8,
        seed in 0u64..1024,
    ) {
        let (model, x) = mlp_case(batch, in_f, hidden, out_f, seed);
        let q = QuantizedModel::quantize(&model, scheme(scheme_index));
        let y_ref = float_reference(&model, &q, &x);
        let y_int = q.infer(&model, &x).expect("MLP must lower to a QNet");
        assert_within_tolerance(&y_ref, &y_int, &format!("scheme {scheme_index}"));

        let again = q.infer(&model, &x).expect("MLP must lower to a QNet");
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&y_int), bits(&again), "native infer must be run-to-run deterministic");
    }

    /// Conv pipelines (conv → relu → maxpool → flatten → linear, plus a
    /// global-average-pool variant) over random spatial shapes.
    #[test]
    fn native_infer_tracks_float_reference_on_convnets(
        batch in 1usize..3,
        in_ch in 1usize..4,
        out_ch in 1usize..6,
        side in 5usize..10,
        scheme_index in 0usize..8,
        global_pool in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut root = Sequential::new();
        root.push(Conv2d::new(in_ch, out_ch, 3, 1, 1, &mut rng));
        root.push(Relu::new());
        if global_pool {
            root.push(GlobalAvgPool::new());
            root.push(Flatten::new());
            root.push(Linear::new(out_ch, 4, &mut rng));
        } else {
            root.push(MaxPool2d::new(2, 2));
            root.push(Flatten::new());
            let flat = out_ch * (side / 2) * (side / 2);
            root.push(Linear::new(flat, 4, &mut rng));
        }
        let model = Model::new("qinfer-conv", root);
        let x = Tensor::randn(&[batch, in_ch, side, side], 1.0, &mut rng);

        let q = QuantizedModel::quantize(&model, scheme(scheme_index));
        let y_ref = float_reference(&model, &q, &x);
        let y_int = q.infer(&model, &x).expect("convnet must lower to a QNet");
        assert_within_tolerance(&y_ref, &y_int, &format!("scheme {scheme_index}"));
    }
}

/// Bit errors injected into the shared integer image flow through the
/// native path exactly as through the float path: both must move off the
/// clean output, and stay within tolerance of *each other* (they decode
/// the same corrupted words).
#[test]
fn native_infer_sees_injected_errors_like_the_float_path() {
    use bitrobust_biterror::UniformChip;
    let (model, x) = mlp_case(4, 16, 20, 6, 7);
    let mut q = QuantizedModel::quantize(&model, QuantScheme::rquant(8));
    let clean_int = q.infer(&model, &x).expect("lowers");
    q.inject(&UniformChip::new(3).at_rate(0.05));
    let y_ref = float_reference(&model, &q, &x);
    let y_int = q.infer(&model, &x).expect("lowers");
    assert_within_tolerance(&y_ref, &y_int, "post-injection");
    assert_ne!(
        clean_int.data(),
        y_int.data(),
        "a 5% bit-error image must perturb the native forward"
    );
}
