//! **Fig. 1** — Bit error rate and normalized energy per SRAM access vs
//! supply voltage (normalized by `Vmin`).
//!
//! Reproduces the measurement protocol of the paper's App. A: 32 SRAM
//! arrays of 512×64 bit cells are sampled from the per-cell failure model,
//! characterized at each voltage, and compared against the analytic
//! voltage→rate model; the energy column is the `c + (1-c)V²` model.

use bitrobust_experiments::{ExpOptions, Table};
use bitrobust_sram::{characterize, CellProfile, EnergyModel, SramArray, VoltageErrorModel};
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::from_args();
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();

    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let n_arrays = if opts.quick { 4 } else { 32 };
    let arrays: Vec<SramArray> = (0..n_arrays)
        .map(|_| SramArray::sample(512, 64, &volts, &CellProfile::uniform(), &mut rng))
        .collect();

    println!("Fig. 1: bit error rate p and normalized energy vs voltage");
    println!(
        "({} arrays of 512x64 bit cells, {} cells total)\n",
        arrays.len(),
        arrays.len() * 512 * 64
    );

    let voltages: Vec<f64> = (0..=10).map(|i| 0.75 + i as f64 * 0.025).collect();
    let measured = characterize(&arrays, &voltages);

    let mut table = Table::new(&["V/Vmin", "p measured %", "p model %", "energy E/E(Vmin)"]);
    for (v, p_meas) in measured {
        table.row_owned(vec![
            format!("{v:.3}"),
            format!("{:.4}", 100.0 * p_meas),
            format!("{:.4}", 100.0 * volts.rate_at(v)),
            format!("{:.3}", energy.energy_at(v)),
        ]);
    }
    println!("{}", table.render());

    println!("Operating points for headline error rates:");
    let mut table = Table::new(&["tolerated p %", "V/Vmin", "energy saving %"]);
    for p in [1e-4, 1e-3, 0.005, 0.01, 0.025] {
        let v = volts.voltage_for_rate(p);
        table.row_owned(vec![
            format!("{:.2}", 100.0 * p),
            format!("{v:.3}"),
            format!("{:.1}", 100.0 * energy.saving_at(v)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: p = 1% tolerance -> roughly 30% SRAM energy saving (Fig. 1).");
}
