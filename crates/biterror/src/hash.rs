//! Counter-based hashing for storage-free random bit error patterns.
//!
//! The paper's error model (Sec. 3) draws `u ~ U(0,1)^(W×m)` per simulated
//! chip and flips bit `j` of weight `i` iff `u_ij <= p`. Materializing that
//! tensor for every chip is wasteful; instead we define
//! `u_ij = hash(seed, i, j) ∈ [0,1)` with a strong 64-bit mixer. Because
//! `u_ij` is a pure function of `(seed, i, j)`, the flipped set at a lower
//! rate `p' <= p` is automatically a subset of the flipped set at `p` — the
//! persistence-across-voltages axiom holds by construction.

/// Mixes a seed and two indices into a uniform 64-bit value.
///
/// SplitMix64-style finalization over a Weyl-sequence combination of the
/// inputs; passes the usual avalanche sanity checks for this use case
/// (distinct `(seed, a, b)` triples decorrelate).
pub fn hash_u64(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps the hash to a double in `[0, 1)`.
pub fn hash_unit(seed: u64, a: u64, b: u64) -> f64 {
    // 53 high-quality bits -> [0, 1).
    (hash_u64(seed, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(1, 2, 3), hash_u64(1, 2, 3));
        assert_eq!(hash_unit(9, 8, 7), hash_unit(9, 8, 7));
    }

    #[test]
    fn distinct_inputs_decorrelate() {
        let h0 = hash_u64(1, 0, 0);
        assert_ne!(h0, hash_u64(1, 1, 0));
        assert_ne!(h0, hash_u64(1, 0, 1));
        assert_ne!(h0, hash_u64(2, 0, 0));
    }

    #[test]
    fn unit_values_are_uniform_in_aggregate() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| hash_unit(42, i, i % 8)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let below: usize = (0..n).filter(|&i| hash_unit(42, i, 0) < 0.01).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn unit_values_in_range() {
        for i in 0..1000 {
            let u = hash_unit(7, i, i / 3);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
