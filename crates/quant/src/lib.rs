//! # bitrobust-quant
//!
//! Bit-exact fixed-point quantization for DNN weights, reproducing the
//! scheme lattice of *"Bit Error Robustness for Energy-Efficient DNN
//! Accelerators"* (Stutz et al., MLSys 2021), Sec. 4.1 / App. D.
//!
//! A [`QuantScheme`] is a point in the four-dimensional lattice
//! `granularity × range × representation × rounding`; the paper's named
//! schemes are provided as constructors:
//!
//! | Constructor | Paper name | Tab. 1 row |
//! |---|---|---|
//! | [`QuantScheme::eq1_global`] | Eq. (1), global | 1 |
//! | [`QuantScheme::normal`] | `NORMAL` | 2 |
//! | [`QuantScheme::asymmetric_signed`] | +asymmetric | 3 |
//! | [`QuantScheme::asymmetric_unsigned`] | +unsigned | 4 |
//! | [`QuantScheme::rquant`] | `RQUANT` (+rounding) | 5 |
//!
//! Quantized weights are stored as one `u8` word per weight with only the
//! low `m` bits live ([`QuantizedTensor`]), exactly mirroring the paper's
//! implementation (App. D): bit errors XOR those words, and dequantization
//! decodes whatever the errors produced.
//!
//! # Examples
//!
//! ```
//! use bitrobust_quant::QuantScheme;
//!
//! // Quantize, flip the most significant bit of one weight, observe the
//! // characteristic large error.
//! let scheme = QuantScheme::rquant(8);
//! let mut q = scheme.quantize(&[0.02f32, -0.07, 0.11]);
//! let clean = q.dequantize();
//! q.words_mut()[1] ^= 0x80;
//! let dirty = q.dequantize();
//! assert!((dirty[1] - clean[1]).abs() > 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod quantized;
mod scheme;

pub use quantized::{DecodedI8, QuantRange, QuantizedTensor};
pub use scheme::{Granularity, IntegerRepr, QuantScheme, RangeMode, Rounding};
