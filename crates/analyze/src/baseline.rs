//! The committed findings baseline.
//!
//! A baseline lets the analyzer land *strict* (`--deny`) on day one even
//! if some findings were still open: each grandfathered finding is one
//! line in `ANALYZE_baseline.txt`, and anything not in the file fails CI.
//! Two properties keep the mechanism honest:
//!
//! * Entries match on a **content hash** of the offending source line
//!   (FNV-1a of the trimmed text, same hash family as the sweep store),
//!   not on line numbers — unrelated edits above a baselined line don't
//!   invalidate it, but *touching the offending line itself* does, which
//!   forces a fix at the natural moment.
//! * **Stale entries are violations**: when the underlying finding
//!   disappears, the entry must be deleted in the same PR, so the file
//!   only ever shrinks (the repo currently carries an empty baseline —
//!   every finding the analyzer ever raised has been fixed or inline-
//!   justified).
//!
//! Format, one entry per line (tab-separated):
//!
//! ```text
//! <rule-id> \t <path> \t <16-hex content hash> \t <reason>
//! ```
//!
//! `#`-prefixed lines and blank lines are comments. The reason column is
//! mandatory: a baseline entry is a *documented debt*, not an exemption.

use crate::rules::Finding;

/// FNV-1a over the trimmed snippet text: the per-line content hash.
pub fn snippet_hash(snippet: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in snippet.trim().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id the entry grandfathers.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// [`snippet_hash`] of the offending line's trimmed text.
    pub hash: u64,
    /// Why the finding is allowed to stand (mandatory).
    pub reason: String,
    /// 1-based line in the baseline file (for stale-entry reporting).
    pub file_line: usize,
}

/// Parse errors are violations too: a baseline that cannot be read
/// strictly must not silently allow anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in the baseline file.
    pub file_line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// Parses the baseline text into entries and per-line errors.
pub fn parse(text: &str) -> (Vec<BaselineEntry>, Vec<BaselineError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let file_line = i + 1;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        // Split the raw line (not a trimmed copy): trimming would eat the
        // tab in front of an empty reason column and misreport the error.
        let fields: Vec<&str> = line.splitn(4, '\t').collect();
        if fields.len() != 4 {
            errors.push(BaselineError {
                file_line,
                message: format!(
                    "expected 4 tab-separated fields (rule, path, hash, reason), got {}",
                    fields.len()
                ),
            });
            continue;
        }
        let Ok(hash) = u64::from_str_radix(fields[2], 16) else {
            errors.push(BaselineError {
                file_line,
                message: format!("bad content hash `{}` (expected hex)", fields[2]),
            });
            continue;
        };
        if fields[3].trim().is_empty() {
            errors.push(BaselineError {
                file_line,
                message: "baseline entries require a reason".to_string(),
            });
            continue;
        }
        entries.push(BaselineEntry {
            rule: fields[0].to_string(),
            path: fields[1].to_string(),
            hash,
            reason: fields[3].trim().to_string(),
            file_line,
        });
    }
    (entries, errors)
}

/// Splits `findings` into (new, baselined) against `entries`, and returns
/// the entries that matched nothing (stale).
pub fn apply(
    findings: Vec<Finding>,
    entries: &[BaselineEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<BaselineEntry>) {
    let mut used = vec![false; entries.len()];
    let mut fresh = Vec::new();
    let mut grandfathered = Vec::new();
    for f in findings {
        let hash = snippet_hash(&f.snippet);
        let hit =
            entries.iter().position(|e| e.rule == f.rule && e.path == f.path && e.hash == hash);
        match hit {
            Some(i) => {
                used[i] = true;
                grandfathered.push(f);
            }
            None => fresh.push(f),
        }
    }
    let stale = entries.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
    (fresh, grandfathered, stale)
}

/// Formats a finding as the baseline line that would grandfather it
/// (printed by `--print-baseline` so entries are never hand-hashed).
pub fn format_entry(f: &Finding, reason: &str) -> String {
    format!("{}\t{}\t{:016x}\t{}", f.rule, f.path, snippet_hash(&f.snippet), reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 7,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn round_trips_through_format_and_parse() {
        let f = finding("det-rng", "crates/nn/src/a.rs", "let r = thread_rng();");
        let line = format_entry(&f, "migrating in PR 10");
        let (entries, errors) = parse(&format!("# header\n\n{line}\n"));
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 1);
        let (fresh, grandfathered, stale) = apply(vec![f], &entries);
        assert!(fresh.is_empty() && stale.is_empty());
        assert_eq!(grandfathered.len(), 1);
    }

    #[test]
    fn hash_is_of_trimmed_content_so_reindenting_keeps_the_entry() {
        assert_eq!(snippet_hash("  a as f32  "), snippet_hash("a as f32"));
        assert_ne!(snippet_hash("a as f32"), snippet_hash("a as f64"));
    }

    #[test]
    fn editing_the_offending_line_invalidates_the_entry() {
        let f = finding("cast-boundary", "p.rs", "x as f32");
        let (entries, _) = parse(&format_entry(&f, "ok"));
        let edited = finding("cast-boundary", "p.rs", "x as f32 + 1.0");
        let (fresh, grandfathered, stale) = apply(vec![edited], &entries);
        assert_eq!(fresh.len(), 1);
        assert!(grandfathered.is_empty());
        assert_eq!(stale.len(), 1, "the untouched entry is now stale");
    }

    #[test]
    fn malformed_lines_are_errors_not_silent_skips() {
        let (entries, errors) =
            parse("only two\tfields\nrule\tpath\tnothex\treason\nrule\tpath\tdeadbeef\t\n");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 3);
        assert_eq!(errors[0].file_line, 1);
        assert!(errors[1].message.contains("bad content hash"));
        assert!(errors[2].message.contains("require a reason"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let (entries, errors) = parse("# a comment\n\n   \n# another\n");
        assert!(entries.is_empty() && errors.is_empty());
    }
}
