//! Deterministic combination of per-worker gradient buffers.
//!
//! Data-parallel training computes the gradient of one mini-batch on
//! several model replicas, one contiguous shard of the batch each, and
//! must then sum the per-shard gradient buffers. Floating-point addition
//! is not associative, so the *shape* of that reduction is part of the
//! numerical contract: as long as the shard partials themselves are
//! deterministic, reducing them in a fixed shape makes the summed
//! gradient bit-identical regardless of how many threads computed the
//! partials — the same slot-then-serial-reduce discipline the evaluation
//! campaign engine uses for its statistics.

use bitrobust_tensor::Tensor;

/// Sums per-shard gradient buffers with a fixed-shape pairwise tree.
///
/// `buffers[s]` is shard `s`'s gradient tensors in parameter visit order
/// (see `Model::grad_tensors`). The reduction runs serially on the calling
/// thread and always pairs `(0,1), (2,3), …` level by level, an odd
/// leftover passing through unchanged, so for a given shard count the
/// float summation order is a pure function of the input — independent of
/// thread count and scheduling. The first buffer is reused as the
/// accumulator, so no extra allocations are made.
///
/// # Panics
///
/// Panics if `buffers` is empty, or if the buffers disagree in arity or
/// tensor shapes.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::tree_reduce_grads;
/// use bitrobust_tensor::Tensor;
///
/// let shard = |v: f32| vec![Tensor::full(&[2], v)];
/// let total = tree_reduce_grads(vec![shard(1.0), shard(2.0), shard(3.0)]);
/// assert_eq!(total[0].data(), &[6.0, 6.0]);
/// ```
pub fn tree_reduce_grads(mut buffers: Vec<Vec<Tensor>>) -> Vec<Tensor> {
    assert!(!buffers.is_empty(), "tree_reduce_grads needs at least one gradient buffer");
    while buffers.len() > 1 {
        let mut next = Vec::with_capacity(buffers.len().div_ceil(2));
        let mut pairs = buffers.into_iter();
        while let Some(mut left) = pairs.next() {
            if let Some(right) = pairs.next() {
                assert_eq!(left.len(), right.len(), "gradient buffer arity mismatch");
                for (l, r) in left.iter_mut().zip(&right) {
                    l.axpy(1.0, r);
                }
            }
            next.push(left);
        }
        buffers = next;
    }
    buffers.pop().expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(values: &[f32]) -> Vec<Tensor> {
        values.iter().map(|&v| Tensor::full(&[3], v)).collect()
    }

    #[test]
    fn single_buffer_passes_through_unchanged() {
        let out = tree_reduce_grads(vec![buffer(&[1.5, -2.0])]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data(), &[1.5, 1.5, 1.5]);
        assert_eq!(out[1].data(), &[-2.0, -2.0, -2.0]);
    }

    #[test]
    fn sums_all_shards_for_every_count() {
        for n in 1..=9usize {
            let buffers: Vec<Vec<Tensor>> = (0..n).map(|s| buffer(&[s as f32 + 1.0])).collect();
            let out = tree_reduce_grads(buffers);
            let expected = (n * (n + 1) / 2) as f32;
            assert_eq!(out[0].data(), &[expected, expected, expected], "n = {n}");
        }
    }

    /// The reduction shape is fixed: re-running with the same inputs must
    /// produce the same bits, including for values where float addition
    /// order matters.
    #[test]
    fn reduction_is_reproducible_bit_for_bit() {
        let make = || {
            (0..7).map(|s| vec![Tensor::full(&[4], 0.1f32 + s as f32 * 1e-7)]).collect::<Vec<_>>()
        };
        let a = tree_reduce_grads(make());
        let b = tree_reduce_grads(make());
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&a[0]), bits(&b[0]));
    }

    #[test]
    #[should_panic(expected = "at least one gradient buffer")]
    fn rejects_empty_input() {
        let _ = tree_reduce_grads(Vec::new());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_mismatched_arity() {
        let _ = tree_reduce_grads(vec![buffer(&[1.0, 2.0]), buffer(&[1.0])]);
    }
}
