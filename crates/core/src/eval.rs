//! Clean and robust evaluation (`Err` and `RErr`, Sec. 5 "Metrics").
//!
//! Every entry point here takes `&Model`: evaluation is read-only, runs on
//! the immutable [`Model::infer`](bitrobust_nn::Model::infer) path, and
//! fans out over the thread pool through the campaign engine
//! ([`crate::campaign`]). Clean evaluation is a single-pattern campaign
//! (batches are the work items); robust evaluation is a multi-pattern one
//! (chips × batches) driven through the axis surface
//! ([`crate::run_axis`] over a [`crate::ChipAxis`]). Results are
//! byte-identical to the serial reference paths ([`evaluate_serial`],
//! [`crate::Campaign::serial`]) at any thread count.
//!
//! The only deliberately-serial paths are the probe-recording ones
//! ([`evaluate_probed`], [`quantized_error_probed`]): activation probes
//! record "most recent batch" statistics, which stay deterministic only
//! when batches run in order on the probed model itself.

use bitrobust_biterror::{ErrorInjector, UniformChip};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::softmax_rows;

use crate::probe::has_attached_probes;
use crate::QuantizedModel;

/// Default evaluation batch size.
pub const EVAL_BATCH: usize = 128;

/// Result of a single (clean or perturbed) evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Classification error in `[0, 1]`.
    pub error: f32,
    /// Mean confidence (softmax probability of the predicted class).
    pub confidence: f32,
}

/// Evaluates the model as-is on a dataset, batch-parallel.
///
/// Batches fan out over the thread pool as a single-pattern campaign
/// ([`crate::campaign`]); the result is byte-identical to
/// [`evaluate_serial`] at any thread count. Probe state is never touched:
/// if the model carries attached activation probes, evaluation runs on a
/// detached replica (use [`evaluate_probed`] when you *want* probe stats).
///
/// # Panics
///
/// Panics if `batch_size == 0`, `dataset` is empty, or `mode` is
/// [`Mode::Train`].
pub fn evaluate(model: &Model, dataset: &Dataset, batch_size: usize, mode: Mode) -> EvalResult {
    if has_attached_probes(model) {
        // Cloning detaches probes, so concurrent batches can't race on the
        // shared stats handles.
        let detached = model.clone();
        crate::campaign::eval_model(&detached, dataset, batch_size, mode)
    } else {
        crate::campaign::eval_model(model, dataset, batch_size, mode)
    }
}

/// The serial reference implementation of [`evaluate`]: one batch at a
/// time on the calling thread, bit-identical results. Exists for the
/// determinism suite and the clean-eval benchmark; real callers should use
/// [`evaluate`]. Like [`evaluate`], it never records probe statistics.
///
/// # Panics
///
/// As [`evaluate`].
pub fn evaluate_serial(
    model: &Model,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    if has_attached_probes(model) {
        serial_pass(&model.clone(), dataset, batch_size, mode)
    } else {
        serial_pass(model, dataset, batch_size, mode)
    }
}

/// Evaluates the model serially, recording activation-probe statistics.
///
/// This is the explicit probe-populating pass: batches run in dataset
/// order on `model` itself, so each probe's "most recent batch" stats are
/// deterministic (the final batch). The returned [`EvalResult`] is
/// byte-identical to [`evaluate`]'s.
///
/// # Panics
///
/// Panics if `model` has no attached [`crate::ActivationProbe`] — a
/// detached replica (e.g. a campaign clone) cannot silently skip
/// recording — and on the [`evaluate`] conditions.
pub fn evaluate_probed(
    model: &Model,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    assert!(
        has_attached_probes(model),
        "evaluate_probed requires attached activation probes \
         (clones/replicas carry detached probes; probe the original model)"
    );
    serial_pass(model, dataset, batch_size, mode)
}

/// One serial batch loop over `infer`, accumulating in dataset order.
fn serial_pass(model: &Model, dataset: &Dataset, batch_size: usize, mode: Mode) -> EvalResult {
    assert!(batch_size > 0, "batch size must be positive");
    mode.assert_inference();
    assert!(!dataset.is_empty(), "dataset must not be empty");
    let mut wrong = 0usize;
    let mut conf_sum = 0f64;
    let n = dataset.len();
    let mut index = 0;
    while index < n {
        let end = (index + batch_size).min(n);
        let (x, labels) = dataset.batch_range(index, end);
        let logits = model.infer(&x, mode);
        let probs = softmax_rows(&logits);
        let preds = probs.argmax_rows();
        for (row, (&label, &pred)) in labels.iter().zip(&preds).enumerate() {
            if pred != label {
                wrong += 1;
            }
            conf_sum += probs.row(row)[pred] as f64;
        }
        index = end;
    }
    EvalResult { error: wrong as f32 / n as f32, confidence: (conf_sum / n as f64) as f32 }
}

/// Evaluates the model after quantization (the clean `Err` the paper
/// reports for quantized DNNs). The model itself is never written: the
/// quantized weights go into a campaign replica, and batches fan out in
/// parallel. Probe stats are untouched (see [`quantized_error_probed`]).
///
/// # Panics
///
/// As [`evaluate`].
pub fn quantized_error(
    model: &Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    let q = QuantizedModel::quantize(model, scheme);
    crate::campaign::Campaign::new(model, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .run(std::slice::from_ref(&q))
        .pop()
        .expect("single-image campaign yields one result")
}

/// [`quantized_error`] variant that records activation-probe statistics:
/// writes the dequantized weights into `model`, runs the serial probed
/// pass, and restores the float weights afterwards. This is what the
/// redundancy analysis (Fig. 6 / Fig. 10) uses to measure ReLU relevance
/// under quantization.
///
/// # Panics
///
/// As [`evaluate_probed`].
pub fn quantized_error_probed(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    let snapshot = model.param_tensors();
    let q = QuantizedModel::quantize(model, scheme);
    q.write_to(model);
    let result = evaluate_probed(model, dataset, batch_size, mode);
    model.set_param_tensors(&snapshot);
    result
}

/// Robust test error over a set of error-pattern samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEval {
    /// Mean `RErr` over patterns, in `[0, 1]`.
    pub mean_error: f32,
    /// Sample standard deviation of `RErr` over patterns (what the paper's
    /// `±` columns report); `0` for a single pattern.
    pub std_error: f32,
    /// Mean confidence under errors.
    pub mean_confidence: f32,
    /// Per-pattern errors.
    pub errors: Vec<f32>,
}

impl RobustEval {
    /// Aggregates per-pattern results into the paper's `RErr ± std` summary.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn from_results(results: &[EvalResult]) -> Self {
        assert!(!results.is_empty(), "need at least one error pattern");
        let n = results.len() as f64;
        let mean = results.iter().map(|r| r.error as f64).sum::<f64>() / n;
        let std = if results.len() > 1 {
            let var =
                results.iter().map(|r| (r.error as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        let conf = results.iter().map(|r| r.confidence as f64).sum::<f64>() / n;
        Self {
            mean_error: mean as f32,
            std_error: std as f32,
            mean_confidence: conf as f32,
            errors: results.iter().map(|r| r.error).collect(),
        }
    }
}

/// Evaluates `RErr`: quantizes the model, then for each injector clones the
/// quantized image, injects bit errors, and measures test error.
///
/// A thin wrapper over the parallel campaign engine
/// ([`crate::Campaign`]): all (pattern, batch) work items fan out over
/// the workspace thread pool, and the per-chip `errors` are bit-identical
/// to the historical serial loop. The model is only read — patterns are
/// written into per-pattern replicas, never the model.
///
/// The injectors are the "chips": for the paper's headline numbers these
/// are [`UniformChip`]s at a common rate `p` (see [`robust_eval_uniform`]);
/// for the generalization experiments they are profiled chips at an
/// operating voltage with varying memory offsets.
pub fn robust_eval<I: ErrorInjector>(
    model: &Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    injectors: &[I],
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let q0 = QuantizedModel::quantize(model, scheme);
    let results = crate::campaign::Campaign::new(model, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .run_lazy(injectors.len(), |i| {
            let mut q = q0.clone();
            q.inject(&injectors[i]);
            q
        });
    RobustEval::from_results(&results)
}

/// `RErr` against `n_chips` uniform random chips at rate `p` (the paper's
/// default protocol: 50 chips, fixed seeds, shared across all models and
/// rates so results are comparable).
///
/// A single-rate [`crate::ChipAxis::Uniform`] driven through
/// [`crate::run_axis`] — uniform grids are not a separate code path, so
/// per-chip errors are bit-identical to the same cell of any larger
/// axis/grid campaign with the same seeds.
#[allow(clippy::too_many_arguments)] // mirrors the paper's evaluation protocol knobs
pub fn robust_eval_uniform(
    model: &Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let axis = crate::campaign::ChipAxis::uniform(vec![p], n_chips, chip_seed_base);
    crate::campaign::run_axis(
        model,
        std::slice::from_ref(&scheme),
        &axis,
        dataset,
        batch_size,
        mode,
    )
    .swap_remove(0)
    .swap_remove(0)
}

/// The serial reference implementation of [`robust_eval_uniform`], built
/// on [`crate::Campaign::serial`]: bit-identical results, one pattern
/// and one batch at a time. Exists for determinism tests (e.g. the
/// serial-vs-parallel in-training RErr probe comparison); real callers
/// should use [`robust_eval_uniform`].
#[allow(clippy::too_many_arguments)] // mirrors robust_eval_uniform exactly
pub fn robust_eval_uniform_serial(
    model: &Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let q0 = QuantizedModel::quantize(model, scheme);
    let images: Vec<QuantizedModel> = uniform_chips(p, n_chips, chip_seed_base)
        .iter()
        .map(|chip| {
            let mut q = q0.clone();
            q.inject(chip);
            q
        })
        .collect();
    let results = crate::campaign::Campaign::new(model, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .serial()
        .run(&images);
    RobustEval::from_results(&results)
}

fn uniform_chips(
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
) -> Vec<bitrobust_biterror::UniformInjector> {
    (0..n_chips).map(|c| UniformChip::new(chip_seed_base + c as u64).at_rate(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn tiny_setup() -> (Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let (_, test) = SynthDataset::Mnist.generate(0);
        (built.model, test)
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let (model, test) = tiny_setup();
        let r = evaluate(&model, &test, EVAL_BATCH, Mode::Eval);
        assert!(r.error > 0.6, "untrained error {} should be near chance", r.error);
        assert!(r.confidence > 0.0 && r.confidence <= 1.0);
    }

    #[test]
    fn evaluate_matches_serial_reference() {
        let (model, test) = tiny_setup();
        for batch_size in [EVAL_BATCH, 7, 1000, 2048] {
            let parallel = evaluate(&model, &test, batch_size, Mode::Eval);
            let serial = evaluate_serial(&model, &test, batch_size, Mode::Eval);
            assert_eq!(parallel, serial, "batch_size {batch_size}");
        }
    }

    #[test]
    fn quantized_error_leaves_weights_untouched() {
        let (model, test) = tiny_setup();
        let before = model.param_tensors();
        let _ = quantized_error(&model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let after = model.param_tensors();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a, b, "float weights must be untouched");
        }
    }

    #[test]
    fn quantized_error_probed_restores_weights_and_matches_parallel() {
        let (mut model, test) = tiny_setup();
        let before = model.param_tensors();
        let parallel =
            quantized_error(&model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let probed = quantized_error_probed(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(parallel, probed);
        assert_eq!(before, model.param_tensors(), "float weights must be restored");
    }

    #[test]
    fn robust_eval_produces_one_result_per_chip() {
        let (model, test) = tiny_setup();
        let r = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(r.errors.len(), 5);
        assert!(r.mean_error >= 0.0 && r.mean_error <= 1.0);
        assert!(r.std_error >= 0.0);
    }

    #[test]
    fn from_results_reports_sample_standard_deviation() {
        let results: Vec<EvalResult> =
            [0.1f32, 0.2, 0.3].iter().map(|&error| EvalResult { error, confidence: 0.5 }).collect();
        let r = RobustEval::from_results(&results);
        assert!((r.mean_error - 0.2).abs() < 1e-7);
        // Sample std: sqrt(((0.1)^2 + 0 + (0.1)^2) / (3 - 1)) = 0.1.
        assert!((r.std_error - 0.1).abs() < 1e-6, "std {}", r.std_error);
        assert!((r.mean_confidence - 0.5).abs() < 1e-7);
    }

    #[test]
    fn from_results_single_pattern_has_zero_std() {
        let r = RobustEval::from_results(&[EvalResult { error: 0.4, confidence: 0.9 }]);
        assert_eq!(r.std_error, 0.0);
        assert_eq!(r.errors, vec![0.4]);
    }

    #[test]
    fn robust_eval_leaves_model_weights_untouched() {
        let (model, test) = tiny_setup();
        let before = model.param_tensors();
        let _ = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.05,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(before, model.param_tensors());
    }

    #[test]
    fn robust_eval_uniform_serial_is_bit_identical() {
        let (model, test) = tiny_setup();
        let parallel = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.02,
            4,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        let serial = robust_eval_uniform_serial(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.02,
            4,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_rate_matches_quantized_error() {
        let (model, test) = tiny_setup();
        let clean = quantized_error(&model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let robust = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.0,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert!((robust.mean_error - clean.error).abs() < 1e-6);
        assert_eq!(robust.std_error, 0.0);
    }
}
