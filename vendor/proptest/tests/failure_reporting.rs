//! The stub must propagate property failures (after printing the case
//! number) rather than swallowing the panic in `catch_unwind`.

use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic]
    fn failing_property_panics(x in 0usize..10) {
        prop_assert!(x > 100, "x = {} is never > 100", x);
    }
}
