//! SGD with momentum and weight decay, plus the paper's LR schedule.

use bitrobust_tensor::Tensor;

use crate::Model;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// Matches the paper's training setup: momentum 0.9, weight decay 5·10⁻⁴,
/// and a multi-step learning-rate schedule (see [`MultiStepLr`]).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    buffers: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, momentum, weight_decay, buffers: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (used by schedules between epochs).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step using the gradients accumulated in `model`.
    ///
    /// Momentum buffers are created lazily on first use and matched to
    /// parameters by visit order.
    pub fn step(&mut self, model: &mut Model) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let buffers = &mut self.buffers;
        let mut index = 0;
        model.visit_params(&mut |param| {
            if buffers.len() <= index {
                buffers.push(Tensor::zeros(param.value().shape()));
            }
            let buf = &mut buffers[index];
            let (value, grad) = param.value_and_grad_mut();
            debug_assert_eq!(buf.shape(), value.shape(), "momentum buffer shape drift");
            let b = buf.data_mut();
            let v = value.data_mut();
            let g = grad.data();
            for i in 0..v.len() {
                let step = g[i] + weight_decay * v[i];
                b[i] = momentum * b[i] + step;
                v[i] -= lr * b[i];
            }
            index += 1;
        });
    }

    /// Clears momentum state (e.g. when re-using the optimizer on new data).
    pub fn reset(&mut self) {
        self.buffers.clear();
    }
}

/// Multi-step learning-rate decay: `lr = base * gamma^(milestones passed)`.
///
/// The paper multiplies by 0.1 after 2/5, 3/5 and 4/5 of the epoch budget.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::MultiStepLr;
///
/// let schedule = MultiStepLr::paper_schedule(0.05, 100);
/// assert_eq!(schedule.lr_at(0), 0.05);
/// assert!((schedule.lr_at(40) - 0.005).abs() < 1e-9);
/// assert!((schedule.lr_at(80) - 0.00005).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MultiStepLr {
    base: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl MultiStepLr {
    /// Creates a schedule decaying by `gamma` at each milestone epoch.
    pub fn new(base: f32, milestones: Vec<usize>, gamma: f32) -> Self {
        Self { base, milestones, gamma }
    }

    /// The paper's schedule: ×0.1 after 2/5, 3/5 and 4/5 of `epochs`.
    ///
    /// Zero and duplicate milestones (which integer division produces for
    /// small epoch budgets) are dropped: a milestone of 0 would count as
    /// already passed at epoch 0, so every short run would start at
    /// `0.1 × base` and never train at the base learning rate, and a
    /// duplicated milestone would apply two decay steps at once.
    pub fn paper_schedule(base: f32, epochs: usize) -> Self {
        let mut milestones: Vec<usize> = [epochs * 2 / 5, epochs * 3 / 5, epochs * 4 / 5]
            .into_iter()
            .filter(|&m| m > 0)
            .collect();
        milestones.dedup();
        Self::new(base, milestones, 0.1)
    }

    /// Learning rate for the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base * self.gamma.powi(passed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossEntropyLoss;
    use crate::{Linear, Mode, Sequential};
    use rand::SeedableRng;

    #[test]
    fn sgd_reduces_loss_on_a_toy_problem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, &mut rng));
        let mut model = Model::new("toy", net);
        let mut sgd = Sgd::new(0.5, 0.9, 0.0);
        let loss_fn = CrossEntropyLoss::new();

        // Linearly separable points.
        let x = Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]);
        let labels = [0usize, 0, 1, 1];

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            model.zero_grads();
            let logits = model.forward(&x, Mode::Train);
            let out = loss_fn.compute(&logits, &labels);
            model.backward(&out.grad);
            sgd.step(&mut model);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.1, "loss {} -> {}", first.unwrap(), last);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, &mut rng));
        let mut model = Model::new("toy", net);
        let before: f32 =
            model.param_tensors().iter().map(|t| t.data().iter().map(|v| v * v).sum::<f32>()).sum();
        let mut sgd = Sgd::new(0.1, 0.0, 0.1);
        model.zero_grads();
        sgd.step(&mut model);
        let after: f32 =
            model.param_tensors().iter().map(|t| t.data().iter().map(|v| v * v).sum::<f32>()).sum();
        assert!(after < before);
    }

    #[test]
    fn multistep_schedule_counts_milestones() {
        let s = MultiStepLr::new(1.0, vec![10, 20], 0.5);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    /// Regression test: `epochs * 2 / 5 == 0` for `epochs < 3` used to put a
    /// milestone at epoch 0, so `lr_at(0)` already counted a passed decay and
    /// short runs never saw the base learning rate.
    #[test]
    fn paper_schedule_drops_zero_and_duplicate_milestones() {
        // epochs = 1: all milestones collapse to 0 and are dropped.
        let s1 = MultiStepLr::paper_schedule(0.05, 1);
        assert_eq!(s1.lr_at(0), 0.05);

        // epochs = 2: milestones [0, 1, 1] -> [1]; one decay step at epoch 1.
        let s2 = MultiStepLr::paper_schedule(0.05, 2);
        assert_eq!(s2.lr_at(0), 0.05);
        assert!((s2.lr_at(1) - 0.005).abs() < 1e-9);

        // epochs = 5: the canonical [2, 3, 4] staircase.
        let s5 = MultiStepLr::paper_schedule(0.05, 5);
        assert_eq!(s5.lr_at(0), 0.05);
        assert!((s5.lr_at(2) - 0.005).abs() < 1e-9);
        assert!((s5.lr_at(3) - 0.0005).abs() < 1e-9);
        assert!((s5.lr_at(4) - 0.00005).abs() < 1e-10);

        // epochs = 100: unchanged by the fix.
        let s100 = MultiStepLr::paper_schedule(0.05, 100);
        assert_eq!(s100.lr_at(0), 0.05);
        assert_eq!(s100.lr_at(39), 0.05);
        assert!((s100.lr_at(40) - 0.005).abs() < 1e-9);
        assert!((s100.lr_at(60) - 0.0005).abs() < 1e-9);
        assert!((s100.lr_at(99) - 0.00005).abs() < 1e-10);
    }
}
