//! A pass-through layer recording activation statistics (for the paper's
//! redundancy analysis, Fig. 6 / Fig. 10).
//!
//! # Attachment is explicit
//!
//! A probe is either **attached** to a [`ProbeHandle`] (it records into the
//! shared stats slot) or **detached** (a pure identity layer). Cloning a
//! layer tree — which is how the parallel campaign engine builds its
//! evaluation replicas — always yields *detached* probes: replicas run
//! concurrently, and racing writes into one handle would make the surviving
//! value scheduling-dependent, breaking the repo's
//! every-number-reproducible-from-seed guarantee.
//!
//! Consequently the parallel evaluation paths ([`crate::evaluate`],
//! [`crate::quantized_error`], the campaign engine) never touch probe
//! state. To populate probe statistics, run the explicit serial passes
//! [`crate::evaluate_probed`] / [`crate::quantized_error_probed`] — they
//! assert the model actually has attached probes ([`probe_handles`]), so a
//! detached replica can't silently skip recording.

use std::sync::{Arc, Mutex};

use bitrobust_nn::{Layer, Mode, Model};
use bitrobust_tensor::Tensor;

/// Statistics captured by an [`ActivationProbe`] on its most recent forward.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeStats {
    /// Fraction of strictly positive activations ("ReLU relevance" in
    /// Fig. 10: how many units the network actually uses).
    pub fraction_positive: f64,
    /// Mean absolute activation.
    pub mean_abs: f64,
    /// Number of activations observed.
    pub count: usize,
}

/// Shared handle to a probe's latest statistics.
pub type ProbeHandle = Arc<Mutex<ProbeStats>>;

/// Identity layer that records [`ProbeStats`] about its input on every
/// forward pass — when attached (see the module-level docs above for the
/// attached/detached distinction).
///
/// The architecture builders place one after the final ReLU so experiments
/// can measure how many units a trained network relies on — the mechanism
/// behind weight clipping's robustness (Sec. 4.2).
#[derive(Debug)]
pub struct ActivationProbe {
    stats: Option<ProbeHandle>,
}

impl ActivationProbe {
    /// Creates an **attached** probe and returns it with its stats handle.
    pub fn new() -> (Self, ProbeHandle) {
        let stats: ProbeHandle = Arc::new(Mutex::new(ProbeStats::default()));
        (Self { stats: Some(Arc::clone(&stats)) }, stats)
    }

    /// Creates a **detached** probe: a pure identity layer that records
    /// nothing (what [`Layer::clone_layer`] produces for campaign replicas).
    pub fn detached() -> Self {
        Self { stats: None }
    }

    /// Whether this probe records into a shared handle.
    pub fn is_attached(&self) -> bool {
        self.stats.is_some()
    }

    /// The shared stats handle, if attached.
    pub fn handle(&self) -> Option<ProbeHandle> {
        self.stats.as_ref().map(Arc::clone)
    }

    /// Records this input's statistics into the shared handle (no-op when
    /// detached).
    fn record(&self, input: &Tensor) {
        let Some(stats) = &self.stats else {
            return;
        };
        let n = input.numel();
        if n > 0 {
            let positive = input.data().iter().filter(|&&v| v > 0.0).count();
            let mean_abs = input.data().iter().map(|v| v.abs() as f64).sum::<f64>() / n as f64;
            *stats.lock().expect("probe mutex poisoned") =
                ProbeStats { fraction_positive: positive as f64 / n as f64, mean_abs, count: n };
        }
    }
}

impl Layer for ActivationProbe {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.record(input);
        input.clone()
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.record(input);
        input.clone()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Clones are *detached*: campaign replicas run concurrently, and a
        // shared handle would make the surviving value depend on
        // scheduling. Probe consumers populate stats with the explicit
        // serial passes (`evaluate_probed`, `quantized_error_probed`) on
        // the model that owns the handle.
        Box::new(Self::detached())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.clone()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "ActivationProbe"
    }
}

/// Collects the stats handles of all **attached** probes in `model`, in
/// layer order. Detached probes (e.g. in campaign replicas) are skipped.
pub fn probe_handles(model: &Model) -> Vec<ProbeHandle> {
    let mut handles = Vec::new();
    model.visit_layers(&mut |layer| {
        if let Some(probe) = layer.as_any().and_then(|any| any.downcast_ref::<ActivationProbe>()) {
            if let Some(handle) = probe.handle() {
                handles.push(handle);
            }
        }
    });
    handles
}

/// Whether `model` contains at least one attached [`ActivationProbe`].
pub fn has_attached_probes(model: &Model) -> bool {
    let mut found = false;
    model.visit_layers(&mut |layer| {
        if let Some(probe) = layer.as_any().and_then(|any| any.downcast_ref::<ActivationProbe>()) {
            found |= probe.is_attached();
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_nn::{Linear, Sequential};
    use rand::SeedableRng;

    #[test]
    fn records_fraction_positive() {
        let (mut probe, handle) = ActivationProbe::new();
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, -1.0, 2.0, 0.0]);
        let y = probe.forward(&x, Mode::Eval);
        assert_eq!(y, x);
        let stats = *handle.lock().unwrap();
        assert_eq!(stats.fraction_positive, 0.5);
        assert_eq!(stats.mean_abs, 1.0);
        assert_eq!(stats.count, 4);
    }

    #[test]
    fn backward_is_identity() {
        let (mut probe, _) = ActivationProbe::new();
        let g = Tensor::from_vec(vec![2], vec![3.0, -4.0]);
        assert_eq!(probe.backward(&g), g);
    }

    #[test]
    fn detached_probe_records_nothing_and_stays_identity() {
        let mut probe = ActivationProbe::detached();
        assert!(!probe.is_attached());
        assert!(probe.handle().is_none());
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, -2.0, 3.0]);
        assert_eq!(probe.forward(&x, Mode::Eval), x);
        assert_eq!(probe.infer(&x, Mode::Eval), x);
    }

    #[test]
    fn clone_layer_detaches() {
        let (probe, handle) = ActivationProbe::new();
        let clone = probe.clone_layer();
        let x = Tensor::from_vec(vec![1, 2], vec![5.0, 5.0]);
        let _ = clone.infer(&x, Mode::Eval);
        // The original handle must be untouched by the clone's traffic.
        assert_eq!(*handle.lock().unwrap(), ProbeStats::default());
    }

    fn probed_model() -> (Model, ProbeHandle) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 4, &mut rng));
        let (probe, handle) = ActivationProbe::new();
        net.push(probe);
        (Model::new("probed", net), handle)
    }

    #[test]
    fn probe_handles_finds_attached_probes_and_skips_clones() {
        let (model, handle) = probed_model();
        let found = probe_handles(&model);
        assert_eq!(found.len(), 1);
        assert!(Arc::ptr_eq(&found[0], &handle));
        assert!(has_attached_probes(&model));

        // Replicas built by `Model::clone` carry only detached probes.
        let replica = model.clone();
        assert!(probe_handles(&replica).is_empty());
        assert!(!has_attached_probes(&replica));
    }

    #[test]
    fn probe_discovery_descends_into_nested_containers() {
        use bitrobust_nn::Residual;

        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut body = Sequential::new();
        body.push(Linear::new(4, 4, &mut rng));
        let (probe, handle) = ActivationProbe::new();
        body.push(probe);
        let mut net = Sequential::new();
        net.push(Residual::new(body));
        let model = Model::new("nested", net);

        let found = probe_handles(&model);
        assert_eq!(found.len(), 1, "probe inside a residual body must be discovered");
        assert!(Arc::ptr_eq(&found[0], &handle));
        assert!(has_attached_probes(&model));
    }
}
