//! Calibration utility: reports training throughput, clean accuracy, and
//! baseline robustness for each synthetic dataset. Useful for sizing epoch
//! budgets before running the full experiment suite.

use std::time::Instant;

use bitrobust_core::{robust_eval_uniform, ArchKind, NormKind, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{dataset_pair, zoo_model, DatasetKind, ExpOptions, Table};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let mut table = Table::new(&["dataset", "arch", "params", "train s", "Err %", "RErr p=0.5% %"]);

    for kind in [DatasetKind::Mnist, DatasetKind::Cifar10, DatasetKind::Cifar100] {
        let (train_ds, test_ds) = dataset_pair(kind, opts.seed);
        let mut spec = ZooSpec::new(kind, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        spec.epochs = opts.epochs(kind.default_epochs());
        spec.seed = opts.seed;
        let start = Instant::now();
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let train_time = start.elapsed().as_secs_f64();
        let robust = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test_ds,
            0.005,
            opts.chips.min(10),
            1000,
            128,
            Mode::Eval,
        );
        let arch_name = match spec.arch {
            ArchKind::SimpleNet => "simplenet",
            ArchKind::WideSimpleNet => "wide-simplenet",
            ArchKind::ResNetMini => "resnet-mini",
            ArchKind::Mlp => "mlp",
        };
        assert_eq!(spec.norm, NormKind::Group);
        table.row_owned(vec![
            kind.name().to_string(),
            arch_name.to_string(),
            format!("{}", model.num_params()),
            format!("{train_time:.1}"),
            format!("{:.2}", 100.0 * report.clean_error),
            format!("{:.2}±{:.2}", 100.0 * robust.mean_error, 100.0 * robust.std_error),
        ]);
    }
    println!("{}", table.render());
}
