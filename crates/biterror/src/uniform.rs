//! The paper's uniform random bit error model (`BErr_p`, Sec. 3).

use crate::hash::hash_unit;
use crate::ErrorInjector;

/// A virtual chip with uniformly random, voltage-persistent bit errors.
///
/// The chip is identified by a seed; its error pattern is a pure function of
/// `(seed, weight index, bit index)`. Evaluating at a lower rate `p' <= p`
/// yields a subset of the flips at `p`, exactly matching the paper's error
/// model: *"bit errors at probability p' ≤ p also occur at probability p"*.
///
/// # Examples
///
/// ```
/// use bitrobust_biterror::{ErrorInjector, UniformChip};
/// use bitrobust_quant::QuantScheme;
///
/// let chip = UniformChip::new(7);
/// let scheme = QuantScheme::rquant(8);
/// let mut q = scheme.quantize(&vec![0.01f32; 1000]);
/// let clean = q.clone();
/// chip.at_rate(0.05).inject(q.words_mut(), 8, 0);
/// let flipped = clean.hamming_distance(&q);
/// assert!(flipped > 250 && flipped < 550); // ~ p*m*W = 400
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformChip {
    seed: u64,
}

impl UniformChip {
    /// Creates a chip with the given identity seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The chip's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The latent uniform variable `u_ij` deciding whether bit `bit` of
    /// weight `weight_index` flips (it flips iff `u_ij <= p`).
    pub fn latent(&self, weight_index: usize, bit: u8) -> f64 {
        hash_unit(self.seed, weight_index as u64, bit as u64)
    }

    /// Whether the given bit flips at error rate `p`.
    pub fn flips(&self, p: f64, weight_index: usize, bit: u8) -> bool {
        self.latent(weight_index, bit) <= p
    }

    /// Binds the chip to an error rate, producing an [`ErrorInjector`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn at_rate(&self, p: f64) -> UniformInjector {
        assert!((0.0..=1.0).contains(&p), "error rate must be in [0, 1]");
        UniformInjector { chip: *self, p }
    }
}

/// A [`UniformChip`] bound to an error rate.
#[derive(Debug, Clone, Copy)]
pub struct UniformInjector {
    chip: UniformChip,
    p: f64,
}

impl UniformInjector {
    /// The bound error rate.
    pub fn rate(&self) -> f64 {
        self.p
    }
}

impl ErrorInjector for UniformInjector {
    fn inject(&self, words: &mut [u8], bits: u8, word_offset: usize) {
        if self.p <= 0.0 {
            return;
        }
        for (i, word) in words.iter_mut().enumerate() {
            let wi = word_offset + i;
            let mut flip_mask = 0u8;
            for bit in 0..bits {
                if self.chip.flips(self.p, wi, bit) {
                    flip_mask |= 1 << bit;
                }
            }
            *word ^= flip_mask;
        }
    }
}

/// Expected number of bit errors for rate `p`, `W` weights and `m` bits —
/// the paper's `p·m·W` (Tab. 6 right).
pub fn expected_bit_errors(p: f64, n_weights: usize, bits: u8) -> f64 {
    p * n_weights as f64 * bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_property_across_rates() {
        let chip = UniformChip::new(3);
        let (p_low, p_high) = (0.01, 0.05);
        for wi in 0..5000 {
            for bit in 0..8 {
                if chip.flips(p_low, wi, bit) {
                    assert!(
                        chip.flips(p_high, wi, bit),
                        "low-rate flips must persist at high rate"
                    );
                }
            }
        }
    }

    #[test]
    fn different_chips_have_different_patterns() {
        let a = UniformChip::new(1).at_rate(0.05);
        let b = UniformChip::new(2).at_rate(0.05);
        let mut wa = vec![0u8; 4000];
        let mut wb = vec![0u8; 4000];
        a.inject(&mut wa, 8, 0);
        b.inject(&mut wb, 8, 0);
        assert_ne!(wa, wb);
        // Overlap should be near p^2 per bit, i.e. tiny.
        let both: u32 = wa.iter().zip(&wb).map(|(&x, &y)| (x & y).count_ones()).sum();
        let either: u32 = wa.iter().map(|&x| x.count_ones()).sum();
        assert!((both as f64) < 0.2 * either as f64);
    }

    #[test]
    fn flip_count_matches_expectation() {
        let chip = UniformChip::new(11);
        let mut words = vec![0u8; 20_000];
        chip.at_rate(0.01).inject(&mut words, 8, 0);
        let flips: u32 = words.iter().map(|w| w.count_ones()).sum();
        let expected = expected_bit_errors(0.01, 20_000, 8);
        assert!((flips as f64 - expected).abs() < expected * 0.15, "{flips} vs {expected}");
    }

    #[test]
    fn respects_bit_width() {
        let chip = UniformChip::new(4);
        let mut words = vec![0u8; 10_000];
        chip.at_rate(0.5).inject(&mut words, 4, 0);
        assert!(words.iter().all(|&w| w & 0xF0 == 0), "must not touch dead bits");
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn zero_rate_is_identity() {
        let chip = UniformChip::new(5);
        let mut words = vec![0xAAu8; 100];
        chip.at_rate(0.0).inject(&mut words, 8, 0);
        assert!(words.iter().all(|&w| w == 0xAA));
    }

    #[test]
    fn offset_shifts_the_pattern() {
        let chip = UniformChip::new(6);
        let mut a = vec![0u8; 1000];
        let mut b = vec![0u8; 1000];
        chip.at_rate(0.05).inject(&mut a, 8, 0);
        chip.at_rate(0.05).inject(&mut b, 8, 500);
        assert_eq!(&a[500..], &b[..500], "offset mapping must align patterns");
        assert_ne!(&a[..500], &b[..500]);
    }

    #[test]
    fn injection_is_an_involution() {
        // Injecting the same pattern twice restores the original words.
        let chip = UniformChip::new(8).at_rate(0.1);
        let orig: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        let mut words = orig.clone();
        chip.inject(&mut words, 8, 0);
        chip.inject(&mut words, 8, 0);
        assert_eq!(words, orig);
    }
}
