//! # bitrobust-experiments
//!
//! Shared infrastructure for the per-table / per-figure reproduction
//! binaries (see `DESIGN.md` §5 for the experiment index): a disk-backed
//! zoo of trained models, table formatting helpers, and the common
//! command-line options.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod protocol;
pub mod table;
pub mod zoo;

pub use cli::ExpOptions;
pub use protocol::{
    p_grid_cifar, p_grid_cifar100, p_grid_mnist, progress_dots, rerr_sweep, rerr_sweep_streaming,
    CHIP_SEED,
};
pub use table::{pct, pct_pm, Table};
pub use zoo::{dataset_pair, warm_zoo, zoo_model, DatasetKind, ZooSpec};
