//! Low-voltage operating sweep: how far can the SRAM supply voltage drop
//! before a trained model's accuracy collapses — and how much energy does
//! each step save?
//!
//! ```text
//! cargo run --release --example low_voltage_sweep
//! ```

use bitrobust_core::{
    build, robust_eval_uniform, train, ArchKind, NormKind, RandBetVariant, TrainConfig,
    TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, SynthDataset};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use bitrobust_sram::{EnergyModel, VoltageErrorModel};
use rand::SeedableRng;

fn main() {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;

    let scheme = QuantScheme::rquant(8);
    let mut cfg = TrainConfig::new(
        Some(scheme),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.05, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 10;
    cfg.augment = AugmentConfig::mnist();
    println!("training a RandBET model...");
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    println!("clean error {:.2}%\n", 100.0 * report.clean_error);

    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();

    println!("{:>7} {:>10} {:>12} {:>10}", "V/Vmin", "p (%)", "energy save", "RErr (%)");
    for i in 0..8 {
        let v = 1.0 - 0.03 * i as f64;
        let p = volts.rate_at(v);
        let r = robust_eval_uniform(&model, scheme, &test_ds, p, 10, 42, EVAL_BATCH, Mode::Eval);
        println!(
            "{v:>7.3} {:>10.4} {:>11.1}% {:>10.2}",
            100.0 * p,
            100.0 * energy.saving_at(v),
            100.0 * r.mean_error
        );
    }
    println!("\nPick the lowest voltage whose RErr is acceptable; the energy saving is free.");
}
