//! **Tab. 5 / Tab. 15** — RandBET generalizes to profiled chips.
//!
//! Evaluates `RQUANT`, `CLIPPING 0.05` and `RANDBET 0.05 (p=1.5%)` on the
//! three synthesized profiled chips at the paper's measured rates,
//! averaging over several weight-to-memory mapping offsets (App. C.1).

use bitrobust_biterror::{ChipKind, ProfiledChip};
use bitrobust_core::{
    eval_images, QuantizedModel, RandBetVariant, RobustEval, TrainMethod, EVAL_BATCH,
};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let n_offsets = if opts.quick { 2 } else { 8 };

    let chip_rates: &[(ChipKind, &[f64])] = &[
        (ChipKind::Chip1, &[0.0086, 0.0275]),
        (ChipKind::Chip2, &[0.0014, 0.0108]),
        (ChipKind::Chip3, &[0.0003, 0.005]),
    ];

    let methods: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT", TrainMethod::Normal),
        ("CLIPPING 0.05", TrainMethod::Clipping { wmax: 0.05 }),
        (
            "RANDBET 0.05 p=1.5%",
            TrainMethod::RandBet { wmax: Some(0.05), p: 0.015, variant: RandBetVariant::Standard },
        ),
    ];

    for &(kind, rates) in chip_rates {
        let chip = ProfiledChip::synthesize(kind, opts.seed);
        let mut header = vec!["model".to_string(), "Err %".to_string()];
        header.extend(rates.iter().map(|r| format!("RErr p~{:.2}%", 100.0 * r)));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for (name, method) in &methods {
            let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), *method);
            spec.epochs = opts.epochs(spec.epochs);
            spec.seed = opts.seed;
            let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
            let mut row = vec![name.to_string(), pct(report.clean_error as f64)];

            // One campaign over all (rate, mapping offset) cells: inject
            // each pattern into its own quantized image up front, evaluate
            // every cell in a single parallel fan-out, then group per rate.
            let q0 = QuantizedModel::quantize(&model, scheme);
            let mut images = Vec::with_capacity(rates.len() * n_offsets);
            for &rate in rates {
                let v = chip.voltage_for_rate(rate);
                // Different weight-to-memory mappings: vary the offset.
                for k in 0..n_offsets {
                    let mut q = q0.clone();
                    q.inject(&chip.at_voltage(v, k * 131_071, false));
                    images.push(q);
                }
            }
            let cells = eval_images(&model, &images, &test_ds, EVAL_BATCH, Mode::Eval);
            for per_rate in cells.chunks(n_offsets) {
                let r = RobustEval::from_results(per_rate);
                row.push(pct(r.mean_error as f64));
            }
            table.row_owned(row);
        }
        println!(
            "Tab. 5 / Tab. 15 — {} ({} offsets per rate):\n{}",
            kind.name(),
            n_offsets,
            table.render()
        );
    }
    println!("Expected shape (paper): RANDBET (trained only on uniform random errors)");
    println!("generalizes to all profiled chips; chip 2's column-aligned, 0-to-1 biased");
    println!("errors are hardest.");
}
