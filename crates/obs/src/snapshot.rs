//! Aggregated metrics and the `OBS_report.json` writer.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use crate::hist::Hist;

/// A gauge sample: the last value written, stamped with a process-wide
/// sequence number so "last" is well defined across threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gauge {
    /// Global write sequence (monotonic across all threads).
    pub seq: u64,
    /// The value at that write.
    pub value: u64,
}

/// A point-in-time aggregate of every counter, gauge, and histogram.
///
/// Merging is commutative and associative: counters and histograms sum,
/// gauges keep the sample with the highest global sequence number. Any
/// merge order over the per-thread states yields byte-identical JSON,
/// which is what lets `OBS_report.json` be compared across runs.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<&'static str, Gauge>,
    /// Log2 histograms by name (spans record their duration here, in ns).
    pub hists: BTreeMap<&'static str, Hist>,
}

impl Snapshot {
    /// Fold another snapshot into this one (order-independent).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            let e = self.gauges.entry(name).or_insert(*g);
            // Strictly greater seq wins; global sequence numbers are
            // unique, so ties only happen for identical samples.
            if g.seq > e.seq {
                *e = *g;
            }
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Counter value by name (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last gauge value by name, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|g| g.value)
    }

    /// Histogram by name, if anything was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Render the report document. Hand-rolled JSON in the same style as
    /// `bitrobust-analyze` (the vendored `serde` is a marker stub); all
    /// maps are `BTreeMap`s so the output is canonically ordered.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"version\": 1,\n");

        s.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{name}\": {v}"));
        }
        s.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });

        s.push_str("  \"gauges\": {");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{name}\": {}", g.value));
        }
        s.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });

        s.push_str("  \"hists\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(b, c)| format!("[{b}, {c}]")).collect();
            s.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"buckets\": [{}]}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets.join(", "),
            ));
        }
        s.push_str(if self.hists.is_empty() { "}\n" } else { "\n  }\n" });

        s.push_str("}\n");
        s
    }

    /// Write the report to `path` (the CI artifact `OBS_report.json`).
    pub fn write_report(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("b.count", 2);
        s.counters.insert("a.count", 1);
        s.gauges.insert("q.depth", Gauge { seq: 5, value: 7 });
        let mut h = Hist::default();
        h.record(3);
        h.record(1024);
        s.hists.insert("lat.ns", h);
        s
    }

    #[test]
    fn json_is_sorted_and_compact() {
        let json = sample().render_json();
        let a = json.find("a.count").unwrap();
        let b = json.find("b.count").unwrap();
        assert!(a < b, "counters must render in name order:\n{json}");
        assert!(json.contains("\"q.depth\": 7"), "{json}");
        assert!(
            json.contains("\"buckets\": [[2, 1], [11, 1]]"),
            "only occupied buckets serialize:\n{json}"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let json = Snapshot::default().render_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"gauges\": {}"), "{json}");
        assert!(json.contains("\"hists\": {}"), "{json}");
    }

    #[test]
    fn merge_sums_counters_and_keeps_latest_gauge() {
        let mut a = sample();
        let mut b = Snapshot::default();
        b.counters.insert("a.count", 10);
        b.gauges.insert("q.depth", Gauge { seq: 9, value: 1 });
        a.merge(&b);
        assert_eq!(a.counter("a.count"), 11);
        assert_eq!(a.counter("b.count"), 2);
        assert_eq!(a.gauge("q.depth"), Some(1), "higher seq wins");
        let mut c = Snapshot::default();
        c.gauges.insert("q.depth", Gauge { seq: 2, value: 99 });
        a.merge(&c);
        assert_eq!(a.gauge("q.depth"), Some(1), "stale seq loses");
    }
}
