//! Finite-difference gradient checking for layers.
//!
//! Every layer's hand-written backward pass is validated against central
//! finite differences of the scalar loss `L = Σ G ⊙ forward(x)` for a random
//! projection tensor `G`. This is a testing utility; it is exported so the
//! integration tests and downstream crates can validate composite layers.

use bitrobust_tensor::Tensor;
use rand::Rng;

use crate::{Layer, Mode};

/// Tolerances and step size for [`check_layer_gradients`].
#[derive(Debug, Clone, Copy)]
pub struct GradCheckConfig {
    /// Central-difference step.
    pub eps: f32,
    /// Accept `|analytic - numeric| <= tol * max(1, |analytic|, |numeric|)`.
    pub tol: f32,
    /// Maximum number of coordinates probed per tensor (sampled evenly).
    pub max_coords: usize,
}

impl Default for GradCheckConfig {
    fn default() -> Self {
        Self { eps: 5e-3, tol: 2e-2, max_coords: 64 }
    }
}

/// Validates a layer's input and parameter gradients with finite differences.
///
/// # Panics
///
/// Panics with a diagnostic message if any probed coordinate disagrees
/// beyond the configured tolerance — this is the intended "assert" for use
/// inside tests.
pub fn check_layer_gradients(
    layer: &mut dyn Layer,
    input_shape: &[usize],
    cfg: &GradCheckConfig,
    rng: &mut impl Rng,
) {
    let x = Tensor::randn(input_shape, 1.0, rng);
    let y0 = layer.forward(&x, Mode::Train);
    let projection = Tensor::randn(y0.shape(), 1.0, rng);

    // Analytic gradients.
    layer.visit_params(&mut |p| p.zero_grad());
    let _ = layer.forward(&x, Mode::Train);
    let dx = layer.backward(&projection);

    // Numeric input gradient.
    let mut x_probe = x.clone();
    let coords = probe_coords(x.numel(), cfg.max_coords);
    for &i in &coords {
        let numeric =
            central_difference(|xp| loss_of(layer, xp, &projection), &mut x_probe, i, cfg.eps);
        let analytic = dx.data()[i];
        assert_close(analytic, numeric, cfg.tol, &format!("input coord {i}"));
    }

    // Numeric parameter gradients. Collect analytic copies first, then probe
    // one parameter at a time through the visitor.
    let mut analytic_grads: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| analytic_grads.push(p.grad().clone()));
    for (pi, grads) in analytic_grads.iter().enumerate() {
        let coords = probe_coords(grads.numel(), cfg.max_coords);
        for &ci in &coords {
            let numeric = param_central_difference(layer, &x, &projection, pi, ci, cfg.eps);
            let analytic = grads.data()[ci];
            assert_close(analytic, numeric, cfg.tol, &format!("param {pi} coord {ci}"));
        }
    }
}

fn loss_of(layer: &mut dyn Layer, x: &Tensor, projection: &Tensor) -> f64 {
    let y = layer.forward(x, Mode::Train);
    y.data().iter().zip(projection.data()).map(|(&a, &b)| a as f64 * b as f64).sum()
}

fn central_difference(
    mut f: impl FnMut(&Tensor) -> f64,
    x: &mut Tensor,
    i: usize,
    eps: f32,
) -> f32 {
    let orig = x.data()[i];
    x.data_mut()[i] = orig + eps;
    let plus = f(x);
    x.data_mut()[i] = orig - eps;
    let minus = f(x);
    x.data_mut()[i] = orig;
    ((plus - minus) / (2.0 * eps as f64)) as f32
}

fn param_central_difference(
    layer: &mut dyn Layer,
    x: &Tensor,
    projection: &Tensor,
    param_index: usize,
    coord: usize,
    eps: f32,
) -> f32 {
    nudge_param(layer, param_index, coord, eps);
    let plus = loss_of(layer, x, projection);
    nudge_param(layer, param_index, coord, -2.0 * eps);
    let minus = loss_of(layer, x, projection);
    nudge_param(layer, param_index, coord, eps); // restore
    ((plus - minus) / (2.0 * eps as f64)) as f32
}

fn nudge_param(layer: &mut dyn Layer, param_index: usize, coord: usize, delta: f32) {
    let mut idx = 0;
    layer.visit_params(&mut |p| {
        if idx == param_index {
            p.value_mut().data_mut()[coord] += delta;
        }
        idx += 1;
    });
}

fn probe_coords(numel: usize, max_coords: usize) -> Vec<usize> {
    if numel <= max_coords {
        (0..numel).collect()
    } else {
        let stride = numel as f64 / max_coords as f64;
        (0..max_coords).map(|k| (k as f64 * stride) as usize).collect()
    }
}

fn assert_close(analytic: f32, numeric: f32, tol: f32, what: &str) {
    let scale = 1.0f32.max(analytic.abs()).max(numeric.abs());
    assert!(
        (analytic - numeric).abs() <= tol * scale,
        "gradient mismatch at {what}: analytic {analytic} vs numeric {numeric}"
    );
}
