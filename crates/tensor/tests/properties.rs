//! Property-based tests of the tensor kernels.

use bitrobust_tensor::{dot, matmul, matmul_nt, matmul_tn, softmax_rows, transpose, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in tensor(4, 6), b in tensor(6, 3)) {
        let left = transpose(&matmul(&a, &b));
        let right = matmul(&transpose(&b), &transpose(&a));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// A·(B + C) = A·B + A·C (distributivity).
    #[test]
    fn matmul_distributes(a in tensor(3, 5), b in tensor(5, 4), c in tensor(5, 4)) {
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// matmul_nt and matmul_tn agree with explicit transposes.
    #[test]
    fn fused_transpose_variants_agree(a in tensor(4, 7), b in tensor(5, 7)) {
        let nt = matmul_nt(&a, &b);
        let explicit = matmul(&a, &transpose(&b));
        for (x, y) in nt.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let at = transpose(&a); // [7, 4]
        let tn = matmul_tn(&at, &transpose(&b)); // (atᵀ)·bᵀ = a·bᵀ
        for (x, y) in tn.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Dot product is linear in its first argument.
    #[test]
    fn dot_is_linear(x in prop::collection::vec(-1.0f32..1.0, 16),
                     y in prop::collection::vec(-1.0f32..1.0, 16),
                     alpha in -2.0f32..2.0) {
        let scaled: Vec<f32> = x.iter().map(|v| alpha * v).collect();
        let lhs = dot(&scaled, &y);
        let rhs = alpha * dot(&x, &y);
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    /// Softmax rows are probability distributions and order-preserving.
    #[test]
    fn softmax_rows_are_distributions(t in tensor(3, 8)) {
        let s = softmax_rows(&t);
        for r in 0..3 {
            let row = s.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| p >= 0.0));
            // Order preservation vs the logits.
            let logits = t.row(r);
            for i in 0..8 {
                for j in 0..8 {
                    if logits[i] > logits[j] {
                        prop_assert!(row[i] >= row[j]);
                    }
                }
            }
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(t in tensor(5, 9)) {
        prop_assert_eq!(transpose(&transpose(&t)), t);
    }
}
