//! Offline stub of [`serde`](https://crates.io/crates/serde), vendored so
//! the workspace builds without network access.
//!
//! [`Serialize`] and [`Deserialize`] are *marker traits* here: the real
//! data-model methods are absent, and the re-exported derives emit empty
//! impls. This keeps `#[derive(Serialize, Deserialize)]` annotations (and
//! any `T: Serialize` bounds) compiling; actual persistence in the
//! workspace goes through `bitrobust_tensor::write_tensors`, which has its
//! own binary format. Swapping in the real `serde` later requires no source
//! changes in downstream crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stub for `serde::Serialize`.
pub trait Serialize {}

/// Marker stub for `serde::Deserialize` (lifetime elided — the stub has no
/// borrowing deserializer).
pub trait Deserialize {}
