//! Energy/accuracy trade-off analysis: combine a measured RErr curve with
//! the SRAM voltage and energy models to choose an operating point.
//!
//! ```text
//! cargo run --release --example energy_tradeoff
//! ```

use bitrobust_core::{
    best_saving_within, build, energy_tradeoff, robust_eval_uniform, train, ArchKind, NormKind,
    RandBetVariant, TrainConfig, TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, SynthDataset};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use bitrobust_sram::{EnergyModel, VoltageErrorModel};
use rand::SeedableRng;

fn main() {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;

    let scheme = QuantScheme::rquant(8);
    let mut cfg = TrainConfig::new(
        Some(scheme),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.05, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 10;
    cfg.augment = AugmentConfig::mnist();
    println!("training...");
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    let clean = report.clean_error as f64;
    println!("clean error {:.2}%\n", 100.0 * clean);

    // Measure the RErr curve.
    let ps = [1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1];
    let curve: Vec<(f64, f64)> = ps
        .iter()
        .map(|&p| {
            let r =
                robust_eval_uniform(&model, scheme, &test_ds, p, 10, 42, EVAL_BATCH, Mode::Eval);
            (p, r.mean_error as f64)
        })
        .collect();

    // Map onto voltage/energy.
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();
    let points = energy_tradeoff(&curve, &volts, &energy);
    println!("{:>8} {:>8} {:>13} {:>9}", "p (%)", "V/Vmin", "energy save", "RErr (%)");
    for pt in &points {
        println!(
            "{:>8.2} {:>8.3} {:>12.1}% {:>9.2}",
            100.0 * pt.p,
            pt.voltage,
            100.0 * pt.energy_saving,
            100.0 * pt.robust_error
        );
    }

    for budget in [0.01, 0.025] {
        match best_saving_within(&points, clean, budget) {
            Some(best) => println!(
                "\nbest saving within +{:.1}% error: {:.1}% energy at p = {:.2}% (V/Vmin = {:.3})",
                100.0 * budget,
                100.0 * best.energy_saving,
                100.0 * best.p,
                best.voltage
            ),
            None => println!("\nno operating point within +{:.1}% error", 100.0 * budget),
        }
    }
}
