//! **Fig. 3 / Fig. 8 / App. C.1** — Profiled SRAM bit error patterns.
//!
//! Synthesizes the three profiled chips, prints the App. C.1 statistics
//! table (`p`, `p0t1`, `p1t0`, `psa` at each measured voltage), renders an
//! ASCII fault map of a 32×64 sub-array, and verifies the voltage-subset
//! ("inherited errors") property.

use bitrobust_biterror::{ChipKind, ProfiledChip};
use bitrobust_experiments::{ExpOptions, Table};

fn main() {
    let opts = ExpOptions::from_args();

    // The paper's measured rates per chip (App. C.1).
    let target_rates: &[(ChipKind, &[f64])] = &[
        (ChipKind::Chip1, &[0.02744, 0.00866]),
        (ChipKind::Chip2, &[0.04707, 0.0101, 0.00136]),
        (ChipKind::Chip3, &[0.02297, 0.00597]),
    ];

    println!("App. C.1 statistics of the synthesized profiled chips");
    let mut table = Table::new(&["chip", "target p %", "p %", "p0t1 %", "p1t0 %", "psa %"]);
    for &(kind, rates) in target_rates {
        let chip = ProfiledChip::synthesize(kind, opts.seed);
        for &rate in rates {
            let v = chip.voltage_for_rate(rate);
            let s = chip.stats_at(v);
            table.row_owned(vec![
                kind.name().to_string(),
                format!("{:.3}", 100.0 * rate),
                format!("{:.3}", 100.0 * s.rate),
                format!("{:.3}", 100.0 * s.rate_0_to_1),
                format!("{:.3}", 100.0 * s.rate_1_to_0),
                format!("{:.3}", 100.0 * s.rate_persistent),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper chip 1: p=2.744 (p0t1 1.27 / p1t0 1.47), chip 2: p=4.707 (3.443/1.091),");
    println!("chip 3: p=2.297 (1.81/0.48) — chip 2/3 are 0-to-1 biased, chip 2 column-aligned.\n");

    // ASCII fault maps (a 32x64 window) at two voltages, chip 1 vs chip 2.
    for kind in [ChipKind::Chip1, ChipKind::Chip2] {
        let chip = ProfiledChip::synthesize(kind, opts.seed);
        let v_hi = chip.voltage_for_rate(0.01);
        let v_lo = chip.voltage_for_rate(0.03);
        println!(
            "{} fault map (rows 0..32, cols 0..64; '#' faulty at p=3%, '+' also at p=1%):",
            kind.name()
        );
        print_map(&chip, v_hi, v_lo);
        println!();
    }

    // Subset property across voltages.
    let chip = ProfiledChip::synthesize(ChipKind::Chip2, opts.seed);
    let (v_hi, v_lo) = (chip.voltage_for_rate(0.005), chip.voltage_for_rate(0.04));
    let mut violations = 0usize;
    let mut faults_hi = 0usize;
    for i in 0..chip.n_cells() {
        let hi = chip.is_cell_faulty_at(i, v_hi);
        let lo = chip.is_cell_faulty_at(i, v_lo);
        if hi {
            faults_hi += 1;
            if !lo {
                violations += 1;
            }
        }
    }
    println!(
        "Inherited-errors check on {}: {} faults at the higher voltage, {} not present at the lower voltage (must be 0)",
        chip.kind().name(),
        faults_hi,
        violations
    );
    assert_eq!(violations, 0, "subset property violated");
}

fn print_map(chip: &ProfiledChip, v_hi: f64, v_lo: f64) {
    let cols = 64;
    for row in 0..32 {
        let mut line = String::with_capacity(cols);
        for col in 0..cols {
            let cell = row * 128 + col; // chip geometry is N x 128
            let at_lo = chip.is_cell_faulty_at(cell, v_lo);
            let at_hi = chip.is_cell_faulty_at(cell, v_hi);
            line.push(if at_hi {
                '+'
            } else if at_lo {
                '#'
            } else {
                '.'
            });
        }
        println!("{line}");
    }
}
