//! Integration tests of the training methods: the qualitative claims the
//! paper makes must hold on a small, fast task.

use bitrobust_core::{
    build, robust_eval_uniform, train, ArchKind, NormKind, PattPattern, RandBetVariant,
    TrainConfig, TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

const SCHEME_BITS: u8 = 8;

fn datasets() -> (Dataset, Dataset) {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(21);
    let subset: Vec<usize> = (0..1000).collect();
    let (x, y) = train_ds.batch(&subset);
    (Dataset::new("train", x, y, 10), test_ds)
}

fn train_with(method: TrainMethod, seed: u64, epochs: usize) -> (Model, f32, Dataset) {
    let (train_ds, test_ds) = datasets();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(SCHEME_BITS)), method);
    cfg.epochs = epochs;
    cfg.augment = AugmentConfig::none();
    cfg.seed = seed;
    cfg.warmup_loss = 100.0; // inject from the start: short schedules
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    (model, report.clean_error, test_ds)
}

#[test]
fn randbet_beats_normal_at_the_trained_rate() {
    let p = 0.08;
    let (normal, normal_err, test_ds) = train_with(TrainMethod::Normal, 5, 8);
    let (randbet, randbet_err, _) = train_with(
        TrainMethod::RandBet { wmax: Some(0.2), p, variant: RandBetVariant::Standard },
        5,
        8,
    );
    assert!(normal_err < 0.15 && randbet_err < 0.2, "{normal_err} vs {randbet_err}");

    let scheme = QuantScheme::rquant(SCHEME_BITS);
    let r_normal =
        robust_eval_uniform(&normal, scheme, &test_ds, p, 8, 500, EVAL_BATCH, Mode::Eval);
    let r_randbet =
        robust_eval_uniform(&randbet, scheme, &test_ds, p, 8, 500, EVAL_BATCH, Mode::Eval);
    assert!(
        r_randbet.mean_error < r_normal.mean_error - 0.05,
        "RandBET must be clearly more robust at p={p}: {} vs {}",
        r_randbet.mean_error,
        r_normal.mean_error
    );
}

#[test]
fn randbet_generalizes_to_lower_rates() {
    // Robustness at the trained rate must extend to lower rates (higher
    // voltages) — the property PattBET lacks.
    let p = 0.08;
    let (randbet, _, test_ds) = train_with(
        TrainMethod::RandBet { wmax: Some(0.2), p, variant: RandBetVariant::Standard },
        6,
        8,
    );
    let scheme = QuantScheme::rquant(SCHEME_BITS);
    let at_train =
        robust_eval_uniform(&randbet, scheme, &test_ds, p, 6, 700, EVAL_BATCH, Mode::Eval);
    let at_half =
        robust_eval_uniform(&randbet, scheme, &test_ds, p / 2.0, 6, 700, EVAL_BATCH, Mode::Eval);
    assert!(
        at_half.mean_error <= at_train.mean_error + 0.02,
        "lower rate must not be worse: {} vs {}",
        at_half.mean_error,
        at_train.mean_error
    );
}

#[test]
fn pattbet_fails_on_unseen_patterns() {
    // The co-adaptation failure needs a regime where the pattern actually
    // matters: a high rate and no clipping (which would add pattern-agnostic
    // robustness of its own).
    let p = 0.2;
    let fixed_seed = 31_337;
    let (patt, _, test_ds) = train_with(
        TrainMethod::PattBet { wmax: None, pattern: PattPattern::Uniform { seed: fixed_seed, p } },
        7,
        8,
    );
    let scheme = QuantScheme::rquant(SCHEME_BITS);
    // On its own pattern: fine.
    let own = bitrobust_core::robust_eval(
        &patt,
        scheme,
        &test_ds,
        &[bitrobust_biterror::UniformChip::new(fixed_seed).at_rate(p)],
        EVAL_BATCH,
        Mode::Eval,
    );
    // On random patterns: much worse.
    let random = robust_eval_uniform(&patt, scheme, &test_ds, p, 8, 900, EVAL_BATCH, Mode::Eval);
    assert!(
        random.mean_error > own.mean_error + 0.05,
        "PattBET must not generalize to random patterns: own {} vs random {}",
        own.mean_error,
        random.mean_error
    );
}

#[test]
fn clipping_projects_all_parameters() {
    let (mut clipped, err, _) = train_with(TrainMethod::Clipping { wmax: 0.1 }, 8, 6);
    assert!(err < 0.3);
    clipped.visit_params(&mut |p| {
        assert!(p.value().abs_max() <= 0.1 + 1e-6, "clipping bound violated");
    });
}

#[test]
fn label_smoothing_reduces_clean_confidence() {
    let (train_ds, test_ds) = datasets();
    let mut results = Vec::new();
    for ls in [None, Some(0.9f32)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let mut cfg = TrainConfig::new(
            Some(QuantScheme::rquant(SCHEME_BITS)),
            TrainMethod::Clipping { wmax: 0.2 },
        );
        cfg.epochs = 8;
        cfg.augment = AugmentConfig::none();
        cfg.label_smoothing = ls;
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        results.push(report.clean_confidence);
    }
    assert!(
        results[1] < results[0] - 0.02,
        "label smoothing must cap confidence: {} vs {}",
        results[1],
        results[0]
    );
}

#[test]
fn warmup_delays_injection_until_loss_drops() {
    let (train_ds, test_ds) = datasets();
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let mut cfg = TrainConfig::new(
        Some(QuantScheme::rquant(SCHEME_BITS)),
        TrainMethod::RandBet { wmax: Some(0.2), p: 0.05, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 6;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 1.75;
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    // The loss starts near ln(10) ~ 2.3, so injection cannot begin at the
    // very first step but must begin eventually.
    assert!(report.bit_errors_started_at.is_some(), "injection must start");
}
