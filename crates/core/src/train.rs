//! Training methods: quantization-aware `NORMAL`/`RQUANT`, `CLIPPING`,
//! `RANDBET` (Alg. 1 of the paper), and the `PATTBET` baseline.

use bitrobust_biterror::{ChipKind, ProfiledChip, UniformChip};
use bitrobust_data::{augment_batch, AugmentConfig, Dataset};
use bitrobust_nn::{CrossEntropyLoss, Mode, Model, MultiStepLr, Sgd};
use bitrobust_quant::QuantScheme;
use rand::Rng;
use rand::SeedableRng;

use crate::eval::{
    evaluate, quantized_error, robust_eval_uniform, robust_eval_uniform_serial, RobustEval,
    EVAL_BATCH,
};
use crate::QuantizedModel;

/// RandBET variants evaluated in Tab. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RandBetVariant {
    /// Alg. 1: average clean and perturbed gradients in one update.
    Standard,
    /// "Curricular": the training bit error rate ramps from `p/20` to `p`
    /// over the first half of training (as in Koppula et al., 2019).
    Curricular,
    /// "Alternating": separate clean and perturbed updates, with perturbed
    /// updates projected back into the pre-update quantization ranges.
    Alternating,
    /// Ablation: train on the perturbed loss only (no clean gradient).
    /// The paper notes this destabilizes training and hurts clean Err —
    /// the clean term in Eq. (2) is load-bearing.
    PerturbedOnly,
}

/// The fixed error pattern `PATTBET` trains on (Kim et al., 2018 /
/// Koppula et al., 2019 style co-design baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PattPattern {
    /// A fixed uniform-random pattern: one [`UniformChip`] at rate `p`.
    Uniform {
        /// Chip identity.
        seed: u64,
        /// Training bit error rate.
        p: f64,
    },
    /// A profiled chip at the voltage whose measured rate is `rate`.
    Profiled {
        /// Which chip structure to synthesize.
        kind: ChipKind,
        /// Chip instance seed.
        seed: u64,
        /// Target bit error rate (converted to a voltage at train start).
        rate: f64,
        /// Restrict to persistent errors (Tab. 16).
        persistent_only: bool,
    },
}

/// The training method (the paper's model names).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainMethod {
    /// Plain quantization-aware training (`NORMAL` / `RQUANT`, depending on
    /// the scheme in [`TrainConfig::scheme`]).
    Normal,
    /// Weight clipping to `[-wmax, wmax]` during training (`CLIPPING`).
    Clipping {
        /// The clipping bound.
        wmax: f32,
    },
    /// Random bit error training (`RANDBET`, Alg. 1), optionally combined
    /// with weight clipping.
    RandBet {
        /// Optional clipping bound (the paper's `RANDBET_wmax`).
        wmax: Option<f32>,
        /// Training bit error rate.
        p: f64,
        /// Algorithm variant.
        variant: RandBetVariant,
    },
    /// Fixed-pattern bit error training (`PATTBET`), the non-generalizing
    /// baseline of Tab. 3 / Tab. 16.
    PattBet {
        /// Optional clipping bound.
        wmax: Option<f32>,
        /// The fixed pattern.
        pattern: PattPattern,
    },
}

impl TrainMethod {
    /// The clipping bound, if any.
    pub fn wmax(&self) -> Option<f32> {
        match *self {
            TrainMethod::Normal => None,
            TrainMethod::Clipping { wmax } => Some(wmax),
            TrainMethod::RandBet { wmax, .. } => wmax,
            TrainMethod::PattBet { wmax, .. } => wmax,
        }
    }
}

/// Configuration of the optional per-epoch robust-error probe.
///
/// When set on [`TrainConfig::rerr_probe`], training measures `RErr` on
/// the test set after every epoch: the model is [`Model::clone`]d (so
/// training state — caches, gradients, probes — is untouched), clipped
/// like the final evaluation would be, and evaluated over `n_chips`
/// uniform chips through the parallel campaign engine. The per-epoch
/// results land in [`TrainReport::epoch_rerr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RErrProbe {
    /// Bit error rate to probe at.
    pub p: f64,
    /// Number of uniform chips per probe.
    pub n_chips: usize,
    /// Seed of chip 0 (chip `c` uses `chip_seed_base + c`).
    pub chip_seed_base: u64,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Route the probe through the serial reference engine instead of the
    /// parallel campaign. Results are bit-identical either way — this
    /// exists so the determinism suite can prove exactly that.
    pub serial: bool,
}

impl RErrProbe {
    /// A probe at rate `p` over `n_chips` chips with the protocol defaults
    /// (chip seed base 1000, [`EVAL_BATCH`], parallel engine).
    pub fn new(p: f64, n_chips: usize) -> Self {
        Self { p, n_chips, chip_seed_base: 1000, batch_size: EVAL_BATCH, serial: false }
    }
}

/// Full training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Quantization-aware training scheme; `None` trains in float (used for
    /// the post-training-quantization ablation, Tab. 9 top).
    pub scheme: Option<QuantScheme>,
    /// The training method.
    pub method: TrainMethod,
    /// Label smoothing target (`Some(0.9)` reproduces the Tab. 2 ablation).
    pub label_smoothing: Option<f32>,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (decays ×0.1 after 2/5, 3/5, 4/5 of training).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Data augmentation recipe.
    pub augment: AugmentConfig,
    /// Bit error injection starts once the clean loss first drops below
    /// this threshold (1.75 on MNIST/CIFAR10, 3.5 on CIFAR100).
    pub warmup_loss: f32,
    /// RNG seed for shuffling, augmentation, and per-step chips.
    pub seed: u64,
    /// Optional per-epoch `RErr` probe on the test set (requires a
    /// quantization scheme). See [`RErrProbe`].
    pub rerr_probe: Option<RErrProbe>,
}

impl TrainConfig {
    /// The paper's setup scaled to the synthetic datasets: SGD(0.05, 0.9,
    /// 5e-4), multi-step decay, CIFAR-style augmentation.
    pub fn new(scheme: Option<QuantScheme>, method: TrainMethod) -> Self {
        Self {
            scheme,
            method,
            label_smoothing: None,
            epochs: 30,
            batch_size: 64,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            augment: AugmentConfig::cifar(),
            warmup_loss: 1.75,
            seed: 0,
            rerr_probe: None,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean clean training loss over the final epoch.
    pub final_loss: f32,
    /// Clean test error (quantized if a scheme was configured).
    pub clean_error: f32,
    /// Mean clean test confidence.
    pub clean_confidence: f32,
    /// Epoch at which bit error injection became active (`None` if never).
    pub bit_errors_started_at: Option<usize>,
    /// Mean clean training loss per epoch (the training trajectory).
    pub epoch_losses: Vec<f32>,
    /// Per-epoch robust-error probe results; empty unless
    /// [`TrainConfig::rerr_probe`] is set.
    pub epoch_rerr: Vec<RobustEval>,
}

enum PattChipState {
    None,
    Uniform(UniformChip, f64),
    Profiled(Box<ProfiledChip>, f64, bool),
}

/// Trains `model` on `train_ds` according to `cfg`, evaluating on `test_ds`.
///
/// Implements Alg. 1 of the paper: per step, clip weights, quantize,
/// run a clean forward/backward on the dequantized weights, optionally a
/// perturbed forward/backward on bit-error-injected weights, and apply the
/// summed gradient to the float weights.
pub fn train(
    model: &mut Model,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(cfg.epochs > 0, "need at least one epoch");
    assert!(
        cfg.rerr_probe.is_none() || cfg.scheme.is_some(),
        "the per-epoch RErr probe requires a quantization scheme"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x0072_A117);
    let loss_fn = match cfg.label_smoothing {
        Some(tau) => CrossEntropyLoss::with_label_smoothing(tau),
        None => CrossEntropyLoss::new(),
    };
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let schedule = MultiStepLr::paper_schedule(cfg.lr, cfg.epochs);

    let patt_chip = match cfg.method {
        TrainMethod::PattBet { pattern: PattPattern::Uniform { seed, p }, .. } => {
            PattChipState::Uniform(UniformChip::new(seed), p)
        }
        TrainMethod::PattBet {
            pattern: PattPattern::Profiled { kind, seed, rate, persistent_only },
            ..
        } => {
            let chip = ProfiledChip::synthesize(kind, seed);
            let v = chip.voltage_for_rate(rate);
            PattChipState::Profiled(Box::new(chip), v, persistent_only)
        }
        _ => PattChipState::None,
    };

    let total_steps = cfg.epochs * train_ds.len().div_ceil(cfg.batch_size);
    let mut step = 0usize;
    let mut bit_errors_active = false;
    let mut bit_errors_started_at = None;
    let mut final_loss = f32::INFINITY;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_rerr = Vec::new();

    for epoch in 0..cfg.epochs {
        sgd.set_lr(schedule.lr_at(epoch));
        let mut epoch_loss = 0f64;
        let mut batches = 0usize;
        for (mut x, labels) in train_ds.shuffled_batches(cfg.batch_size, &mut rng) {
            augment_batch(&mut x, &cfg.augment, &mut rng);

            // Alg. 1 line 6: elementwise clipping.
            if let Some(wmax) = cfg.method.wmax() {
                model.clip_params(wmax);
            }
            let float_params = model.param_tensors();

            // Alg. 1 lines 8-9: quantize and dequantize.
            let quantized = cfg.scheme.map(|scheme| {
                let q = QuantizedModel::quantize(model, scheme);
                q.write_to(model);
                q
            });

            // Clean forward (Alg. 1 line 10); the loss also drives the
            // warm-up latch.
            model.zero_grads();
            let logits = model.forward(&x, Mode::Train);
            let out = loss_fn.compute(&logits, &labels);
            epoch_loss += out.loss as f64;
            batches += 1;

            if !bit_errors_active && out.loss < cfg.warmup_loss {
                bit_errors_active = true;
                bit_errors_started_at = Some(epoch);
            }

            let inject_now = bit_errors_active
                && matches!(cfg.method, TrainMethod::RandBet { .. } | TrainMethod::PattBet { .. });

            // Clean backward (Alg. 1 line 11), unless this step trains on
            // the perturbed loss alone (the PerturbedOnly ablation).
            let perturbed_only = inject_now
                && matches!(
                    cfg.method,
                    TrainMethod::RandBet { variant: RandBetVariant::PerturbedOnly, .. }
                );
            if !perturbed_only {
                model.backward(&out.grad);
            }

            let alternating = matches!(
                cfg.method,
                TrainMethod::RandBet { variant: RandBetVariant::Alternating, .. }
            );

            if inject_now {
                let q =
                    quantized.as_ref().expect("bit error training requires a quantization scheme");
                if alternating {
                    // Variant: apply the clean update first.
                    model.set_param_tensors(&float_params);
                    sgd.step(model);
                    model.zero_grads();
                    // Record ranges to project the perturbed update into.
                    let ranges: Vec<_> = q.tensors().iter().map(|t| t.range()).collect();
                    let after_clean = model.param_tensors();
                    let q2 =
                        perturb(model, q, &cfg.method, &patt_chip, step, total_steps, &mut rng);
                    q2.write_to(model);
                    let logits = model.forward(&x, Mode::Train);
                    let out = loss_fn.compute(&logits, &labels);
                    model.backward(&out.grad);
                    model.set_param_tensors(&after_clean);
                    sgd.step(model);
                    // Projection: perturbed updates may not grow the ranges.
                    let mut idx = 0;
                    model.visit_params(&mut |p| {
                        let r = ranges[idx];
                        p.value_mut().map_inplace(|v| v.clamp(r.lo(), r.hi()));
                        idx += 1;
                    });
                    step += 1;
                    continue;
                }
                // Alg. 1 lines 12-14: perturbed forward/backward.
                let q2 = perturb(model, q, &cfg.method, &patt_chip, step, total_steps, &mut rng);
                q2.write_to(model);
                let logits = model.forward(&x, Mode::Train);
                let out = loss_fn.compute(&logits, &labels);
                model.backward(&out.grad);
            }

            // Alg. 1 line 16: update the float weights with the summed
            // gradients.
            model.set_param_tensors(&float_params);
            sgd.step(model);
            step += 1;
        }
        final_loss = (epoch_loss / batches.max(1) as f64) as f32;
        epoch_losses.push(final_loss);

        // Per-epoch RErr probe: evaluate a clipped *clone* through the
        // campaign engine, so training state (caches, gradients, probes)
        // and the float weights are untouched. The clone's detached
        // probes and immutable `infer` make the fan-out safe.
        if let Some(probe) = cfg.rerr_probe {
            let scheme =
                cfg.scheme.expect("the per-epoch RErr probe requires a quantization scheme");
            let mut snapshot = model.clone();
            if let Some(wmax) = cfg.method.wmax() {
                snapshot.clip_params(wmax);
            }
            let r = if probe.serial {
                robust_eval_uniform_serial(
                    &snapshot,
                    scheme,
                    test_ds,
                    probe.p,
                    probe.n_chips,
                    probe.chip_seed_base,
                    probe.batch_size,
                    Mode::Eval,
                )
            } else {
                robust_eval_uniform(
                    &snapshot,
                    scheme,
                    test_ds,
                    probe.p,
                    probe.n_chips,
                    probe.chip_seed_base,
                    probe.batch_size,
                    Mode::Eval,
                )
            };
            epoch_rerr.push(r);
        }
    }

    // Final projection + evaluation.
    if let Some(wmax) = cfg.method.wmax() {
        model.clip_params(wmax);
    }
    let result = match cfg.scheme {
        Some(scheme) => quantized_error(model, scheme, test_ds, EVAL_BATCH, Mode::Eval),
        None => evaluate(model, test_ds, EVAL_BATCH, Mode::Eval),
    };
    model.clear_caches();
    TrainReport {
        final_loss,
        clean_error: result.error,
        clean_confidence: result.confidence,
        bit_errors_started_at,
        epoch_losses,
        epoch_rerr,
    }
}

/// Produces the perturbed quantized image for the current step.
fn perturb(
    _model: &mut Model,
    q: &QuantizedModel,
    method: &TrainMethod,
    patt: &PattChipState,
    step: usize,
    total_steps: usize,
    rng: &mut impl Rng,
) -> QuantizedModel {
    let mut q2 = q.clone();
    match (method, patt) {
        (TrainMethod::RandBet { p, variant, .. }, _) => {
            let p_eff = match variant {
                RandBetVariant::Curricular => {
                    let ramp = (step as f64 / (total_steps as f64 / 2.0)).min(1.0);
                    p * (0.05 + 0.95 * ramp)
                }
                _ => *p,
            };
            // A fresh random chip every step: this is what makes RandBET
            // generalize across chips and voltages.
            let chip = UniformChip::new(rng.gen());
            q2.inject(&chip.at_rate(p_eff));
        }
        (TrainMethod::PattBet { .. }, PattChipState::Uniform(chip, p)) => {
            q2.inject(&chip.at_rate(*p));
        }
        (TrainMethod::PattBet { .. }, PattChipState::Profiled(chip, v, persistent_only)) => {
            q2.inject(&chip.at_voltage(*v, 0, *persistent_only));
        }
        _ => unreachable!("perturb called for a method without bit errors"),
    }
    q2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;

    fn quick_cfg(method: TrainMethod) -> TrainConfig {
        let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), method);
        cfg.epochs = 3;
        cfg.batch_size = 128;
        cfg.augment = AugmentConfig::none();
        cfg
    }

    fn mnist_subset() -> (Dataset, Dataset) {
        let (train, test) = SynthDataset::Mnist.generate(1);
        // Use a subset to keep unit tests fast.
        let train_idx: Vec<usize> = (0..600).collect();
        let test_idx: Vec<usize> = (0..300).collect();
        let (xt, yt) = train.batch(&train_idx);
        let (xe, ye) = test.batch(&test_idx);
        (Dataset::new("train", xt, yt, 10), Dataset::new("test", xe, ye, 10))
    }

    #[test]
    fn normal_training_learns_mnist_subset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let report = train(&mut model, &train_ds, &test_ds, &quick_cfg(TrainMethod::Normal));
        assert!(report.clean_error < 0.5, "error {} should beat chance", report.clean_error);
        assert!(report.final_loss < 1.5, "loss {}", report.final_loss);
    }

    #[test]
    fn clipping_constrains_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let _ =
            train(&mut model, &train_ds, &test_ds, &quick_cfg(TrainMethod::Clipping { wmax: 0.1 }));
        model.visit_params(&mut |p| {
            assert!(p.value().abs_max() <= 0.1 + 1e-6);
        });
    }

    #[test]
    fn randbet_runs_and_reports_injection_start() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::RandBet {
            wmax: Some(0.1),
            p: 0.01,
            variant: RandBetVariant::Standard,
        });
        cfg.warmup_loss = 100.0; // inject from the start
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert_eq!(report.bit_errors_started_at, Some(0));
        assert!(report.clean_error < 0.6);
    }

    #[test]
    fn pattbet_uniform_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::PattBet {
            wmax: Some(0.1),
            pattern: PattPattern::Uniform { seed: 77, p: 0.01 },
        });
        cfg.warmup_loss = 100.0;
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert!(report.clean_error < 0.6);
    }

    #[test]
    fn variants_run() {
        for variant in [RandBetVariant::Curricular, RandBetVariant::Alternating] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(TrainMethod::RandBet { wmax: Some(0.1), p: 0.005, variant });
            cfg.warmup_loss = 100.0;
            cfg.epochs = 2;
            let report = train(&mut model, &train_ds, &test_ds, &cfg);
            assert!(report.clean_error.is_finite());
        }
    }

    #[test]
    fn rerr_probe_records_one_result_per_epoch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::RandBet {
            wmax: Some(0.1),
            p: 0.01,
            variant: RandBetVariant::Standard,
        });
        cfg.warmup_loss = 100.0;
        cfg.epochs = 2;
        cfg.rerr_probe = Some(RErrProbe::new(0.01, 3));
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert_eq!(report.epoch_losses.len(), 2);
        assert_eq!(report.epoch_rerr.len(), 2);
        assert!(report.epoch_rerr.iter().all(|r| r.errors.len() == 3));
        assert_eq!(report.final_loss, *report.epoch_losses.last().unwrap());
    }

    #[test]
    fn rerr_probe_serial_and_parallel_agree() {
        let mut reports = Vec::new();
        for serial in [false, true] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
            let mut model = built.model;
            let (train_ds, test_ds) = mnist_subset();
            let mut cfg = quick_cfg(TrainMethod::RandBet {
                wmax: Some(0.1),
                p: 0.01,
                variant: RandBetVariant::Standard,
            });
            cfg.warmup_loss = 100.0;
            cfg.epochs = 2;
            cfg.rerr_probe = Some(RErrProbe { serial, ..RErrProbe::new(0.01, 2) });
            reports.push(train(&mut model, &train_ds, &test_ds, &cfg));
        }
        assert_eq!(reports[0], reports[1], "probe engine must not affect any reported number");
    }

    #[test]
    fn float_training_without_scheme_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = quick_cfg(TrainMethod::Clipping { wmax: 0.1 });
        cfg.scheme = None;
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        assert!(report.clean_error < 0.6);
    }
}
