//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored so the
//! workspace's property tests build without network access.
//!
//! The subset covers what the `bitrobust-*` test suites use:
//!
//! * the [`proptest!`] macro (attributes + `arg in strategy` bindings);
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges and
//!   2-/3-tuples;
//! * [`any`] for the primitive types, plus [`prop::bool::ANY`];
//! * [`prop::collection::vec`] and [`prop::sample::select`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate, by design: inputs are sampled from a
//! seed derived from the test name (fully deterministic runs — no
//! `proptest-regressions/` files), there is **no shrinking**, and failures
//! panic immediately with the offending case number. The case count
//! defaults to 64 and is overridable via `PROPTEST_CASES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    //! Everything a property test file needs, mirroring
    //! `proptest::prelude::*`.
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// The deterministic RNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for one property, seeded from the test's name so
    /// every run (and every CI machine) replays the same cases.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns the number of cases to run per property
/// (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        S::new_value(self, rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng), self.2.new_value(rng))
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag: f32 = rng.gen_range(0.0f32..1.0);
        let scale = 10f32.powi(rng.gen_range(-3i32..4));
        if bool::arbitrary(rng) {
            mag * scale
        } else {
            -mag * scale
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag: f64 = rng.gen_range(0.0f64..1.0);
        let scale = 10f64.powi(rng.gen_range(-3i32..4));
        if bool::arbitrary(rng) {
            mag * scale
        } else {
            -mag * scale
        }
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A collection size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from the real crate.

    pub mod collection {
        //! Collection strategies.
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Vec`s of values from `elem` with a length
        /// drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `elem` and whose
        /// length is drawn from `size` (an exact `usize` or a `Range`).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.
        use super::super::{Strategy, TestRng};
        use rand::seq::SliceRandom;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        /// Chooses uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty option set");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut TestRng) -> T {
                self.0.choose(rng).expect("non-empty by construction").clone()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        /// Either boolean with equal probability.
        pub const ANY: super::super::Any<bool> = super::super::Any(std::marker::PhantomData);
    }
}

/// Defines property tests: each function's arguments are bound by
/// `name in strategy` and the body re-runs for [`cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> () { $body },
                    ));
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest: property `{}` failed on case {}/{} (deterministic: \
                             re-running replays the same case)",
                            concat!(module_path!(), "::", stringify!($name)),
                            __case + 1,
                            __cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn select_only_yields_options(x in prop::sample::select(vec![2u8, 3, 4, 8])) {
            prop_assert!([2u8, 3, 4, 8].contains(&x));
        }

        #[test]
        fn tuples_and_map_compose((bits, v) in (prop::sample::select(vec![1u8, 2]), 0..3usize),
                                  s in (0..4usize).prop_map(|n| n * 2)) {
            prop_assert!(bits == 1 || bits == 2);
            prop_assert!(v < 3);
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn bool_any_generates(b in prop::bool::ANY) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
