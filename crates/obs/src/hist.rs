//! Fixed-shape log2 histograms.
//!
//! Every histogram has the same 65 buckets: bucket 0 holds exact zeros,
//! bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. The shape never
//! depends on the data, so merging histograms from different threads is
//! a plain element-wise sum — commutative and associative, which is what
//! makes the aggregated [`crate::Snapshot`] merge-deterministic.

/// Number of buckets: one for zero plus one per bit position of a `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (span durations are
/// recorded in nanoseconds; sizes in their natural unit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating, so merge order cannot matter).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

/// The bucket a value lands in: 0 for 0, else `1 + floor(log2(v))`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The half-open value range `[lo, hi)` covered by a bucket; bucket 0 is
/// the degenerate `[0, 1)`. For bucket 64, `hi` saturates to `u64::MAX`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 1)
    } else {
        (1u64 << (index - 1), 1u64.checked_shl(index as u32).unwrap_or(u64::MAX))
    }
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one. Commutative: any merge
    /// order over a set of histograms yields the same result.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Occupied buckets as `(index, count)` pairs, ascending by index —
    /// the compact form serialized into `OBS_report.json`.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &c)| c != 0).map(|(i, &c)| (i, c)).collect()
    }

    /// Count in one bucket (mostly for tests).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_and_index_agree_at_every_power_of_two() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            if hi != u64::MAX {
                // One below the upper bound is still inside; the bound
                // itself belongs to the next bucket.
                assert_eq!(bucket_index(hi - 1), i, "high edge of bucket {i}");
                assert_eq!(bucket_index(hi), i + 1, "first value past bucket {i}");
            }
        }
    }
}
