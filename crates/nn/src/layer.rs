//! The layer abstraction used by every network in the workspace.

use bitrobust_tensor::Tensor;

use crate::Param;

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: caches activations for backward, uses batch statistics, and
    /// updates running statistics in normalization layers.
    Train,
    /// Inference with accumulated statistics (the deployment configuration).
    Eval,
    /// Inference that recomputes normalization statistics from the current
    /// batch. Used to reproduce the paper's Tab. 10, which shows BatchNorm's
    /// accumulated statistics are what breaks under weight bit errors.
    EvalBatchStats,
}

impl Mode {
    /// Whether this mode caches intermediate state for a later backward pass.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }

    /// Guards the immutable `infer` path.
    ///
    /// # Panics
    ///
    /// Panics if this mode is [`Mode::Train`].
    pub fn assert_inference(self) {
        assert!(
            !self.is_train(),
            "infer requires a non-training mode; use forward for Mode::Train"
        );
    }
}

/// A differentiable layer with hand-written backprop.
///
/// Contract:
///
/// * `forward` in [`Mode::Train`] must cache whatever `backward` needs;
///   `backward` may only be called after a training-mode forward and consumes
///   that cache conceptually (calling it twice without a new forward is a
///   logic error, though layers are not required to detect it).
/// * `infer` is the immutable inference path: it must produce **bit-identical
///   outputs** to `forward` for the same non-training mode, without touching
///   any activation cache. Because it takes `&self` (and `Layer` requires
///   `Sync`), one layer tree can serve concurrent evaluation passes — the
///   property the fault-injection campaign engine builds on.
/// * `backward` receives `dL/d(output)` and returns `dL/d(input)`;
///   it **accumulates** parameter gradients (`+=`) so that multi-pass
///   training schemes (e.g. random bit error training, which averages a
///   clean and a perturbed gradient) work without extra buffers.
/// * `visit_params` yields parameters in a deterministic order; the order
///   defines the global parameter indexing used for quantization, bit error
///   injection offsets, and serialization.
/// * `clone_layer` duplicates the layer's parameters and configuration
///   (activation caches need not be preserved), enabling whole-model
///   replicas for parallel evaluation.
pub trait Layer: Send + Sync {
    /// Computes the layer output.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Computes the layer output without mutating any state.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`Mode::Train`]: training passes must go through
    /// [`Layer::forward`] so backward caches are populated.
    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor;

    /// Clones the layer (parameters and configuration; caches may be reset).
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Propagates gradients; returns `dL/d(input)` and accumulates parameter
    /// gradients.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits all trainable parameters in deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Visits all trainable parameters immutably, in the **same order** as
    /// [`Layer::visit_params`]. This is what lets read-only consumers
    /// (quantization snapshots, parameter statistics, serialization) work
    /// from a shared `&Model` instead of demanding exclusive access.
    ///
    /// **Contract:** any layer that overrides [`Layer::visit_params`] MUST
    /// override this too, yielding the same parameters in the same order —
    /// the default visits nothing, so forgetting the override makes
    /// quantization and serialization silently skip the layer's weights.
    /// `Model::param_tensors` (ref path) is asserted against `visit_params`
    /// (mut path) in the test suites; keep new layers covered there.
    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        let _ = visitor;
    }

    /// Visits the layer's *direct* children (containers override; leaf
    /// layers have none). Combined with [`crate::Model::visit_layers`] this
    /// gives a depth-first walk of the whole layer tree.
    ///
    /// **Contract:** any container holding child layers MUST override this,
    /// or tree walks (e.g. activation-probe discovery) will not see the
    /// children.
    fn visit_children(&self, visitor: &mut dyn FnMut(&dyn Layer)) {
        let _ = visitor;
    }

    /// The layer as [`std::any::Any`] for capability discovery (e.g.
    /// finding activation probes in a model); `None` opts out.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// A short human-readable layer type name (e.g. `"Conv2d"`).
    fn layer_type(&self) -> &'static str;

    /// Releases cached activations to free memory (optional).
    fn clear_cache(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_train_detection() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
        assert!(!Mode::EvalBatchStats.is_train());
    }
}
