//! **Tab. 4 / Tab. 12** — Random bit error training (`RANDBET`).
//!
//! RErr of `RQUANT`, `CLIPPING 0.1`, and `RANDBET 0.1 (p=1%)` at `m = 8`
//! and `m = 4` bits, for `p ∈ {0.5%, 1%, 1.5%}`, plus the symmetric
//! quantization ablation (Tab. 12).

use bitrobust_core::{RandBetVariant, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, rerr_sweep, zoo_model, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let ps = [5e-3, 1e-2, 1.5e-2];

    let runs: Vec<(&str, QuantScheme, TrainMethod)> = vec![
        ("8bit RQUANT", QuantScheme::rquant(8), TrainMethod::Normal),
        ("8bit CLIPPING 0.1", QuantScheme::rquant(8), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "8bit RANDBET 0.1 p=1%",
            QuantScheme::rquant(8),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
        ("4bit CLIPPING 0.1", QuantScheme::rquant(4), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "4bit RANDBET 0.1 p=1%",
            QuantScheme::rquant(4),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
        // Tab. 12: symmetric quantization instead of RQuant.
        ("8bit sym CLIPPING 0.1", QuantScheme::symmetric(8), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "8bit sym RANDBET 0.1 p=1%",
            QuantScheme::symmetric(8),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
    ];

    let mut header = vec!["model".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (name, scheme, method) in runs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let sweep = rerr_sweep(&model, scheme, &test_ds, &ps, opts.chips);
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 4 / Tab. 12 (CIFAR10 stand-in):\n{}", table.render());
    println!("Expected shape (paper): RANDBET < CLIPPING < RQUANT in RErr at p >= 0.5%,");
    println!("more pronounced at 4 bit; symmetric quantization is slightly worse than RQuant.");
}
