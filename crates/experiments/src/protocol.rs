//! The shared evaluation protocol: fixed chip seeds and bit-error-rate
//! grids, so every experiment binary measures RErr on the *same* simulated
//! chips (as the paper fixes its 50 error patterns across all models).

use bitrobust_core::{
    run_axis, run_axis_streaming, CampaignGrid, ChipAxis, EvalResult, RobustEval, EVAL_BATCH,
};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;

/// Base seed for the shared evaluation chips.
pub const CHIP_SEED: u64 = 1000;

/// The shared-protocol campaign grid: one scheme over `ps × chips` uniform
/// chips seeded from [`CHIP_SEED`] — the single constructor behind every
/// uniform RErr sweep, so no binary can drift off the shared chips.
pub fn protocol_grid(scheme: QuantScheme, ps: &[f64], chips: usize) -> CampaignGrid {
    CampaignGrid::uniform(scheme, ps.to_vec(), chips, CHIP_SEED)
}

/// The shared-protocol injection axis for sweep orchestration: the same
/// `ps × chips` span (and chip seeds) as [`protocol_grid`], as a
/// [`ChipAxis`] for [`bitrobust_core::run_sweep`] plans. Cells evaluated
/// through either are byte-identical.
pub fn protocol_axis(ps: &[f64], chips: usize) -> ChipAxis {
    ChipAxis::uniform(ps.to_vec(), chips, CHIP_SEED)
}

/// The paper's CIFAR bit error rate grid (in fractions, not %):
/// 0.01, 0.05, 0.1, 0.5, 1, 1.5, 2, 2.5 percent.
pub fn p_grid_cifar() -> Vec<f64> {
    vec![1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1.5e-2, 2e-2, 2.5e-2]
}

/// The CIFAR100 grid (Fig. 7 middle): 0.001 … 1 percent.
pub fn p_grid_cifar100() -> Vec<f64> {
    vec![1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2]
}

/// The MNIST grid (Fig. 7 right): 1 … 20 percent.
pub fn p_grid_mnist() -> Vec<f64> {
    vec![1e-2, 5e-2, 1e-1, 1.25e-1, 1.5e-1, 2e-1]
}

/// Evaluates RErr on the shared chips for every rate in `ps`.
///
/// The whole sweep runs as **one** fault-injection campaign over the
/// shared [`protocol_axis`] ([`bitrobust_core::run_axis`]): all
/// `ps.len() x chips` patterns fan out over the thread pool together,
/// instead of nested serial loops. Per-chip errors are bit-identical to
/// calling `robust_eval_uniform` per rate.
pub fn rerr_sweep(
    model: &Model,
    scheme: QuantScheme,
    test_ds: &Dataset,
    ps: &[f64],
    chips: usize,
) -> Vec<RobustEval> {
    run_axis(model, &[scheme], &protocol_axis(ps, chips), test_ds, EVAL_BATCH, Mode::Eval).remove(0)
}

/// [`rerr_sweep`] with per-cell progress: `on_cell(rate_index, chip_index,
/// result)` fires — in rate-major, then chip order — as each cell's wave of
/// the streaming campaign ([`bitrobust_core::run_axis_streaming`]) lands.
/// The returned sweep is byte-identical to [`rerr_sweep`]'s; long-running
/// experiment binaries use the callback for progress output.
pub fn rerr_sweep_streaming(
    model: &Model,
    scheme: QuantScheme,
    test_ds: &Dataset,
    ps: &[f64],
    chips: usize,
    mut on_cell: impl FnMut(usize, usize, &EvalResult),
) -> Vec<RobustEval> {
    run_axis_streaming(
        model,
        &[scheme],
        &protocol_axis(ps, chips),
        test_ds,
        EVAL_BATCH,
        Mode::Eval,
        |cell, result| on_cell(cell.group, cell.point, result),
    )
    .remove(0)
}

/// Writes one progress dot per completed campaign cell to stderr, with a
/// newline after the final cell — the shared progress style of the
/// long-running experiment binaries ([`rerr_sweep_streaming`]'s usual
/// `on_cell`).
pub fn progress_dots(total_cells: usize) -> impl FnMut(usize, usize, &EvalResult) {
    use std::io::Write;
    let mut done = 0usize;
    move |_rate, _chip, _result| {
        done += 1;
        let mut err = std::io::stderr();
        let _ = write!(err, ".");
        if done == total_cells {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_core::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    #[test]
    fn grids_are_sorted_and_positive() {
        for grid in [p_grid_cifar(), p_grid_cifar100(), p_grid_mnist()] {
            assert!(grid.windows(2).all(|w| w[0] < w[1]));
            assert!(grid.iter().all(|&p| p > 0.0 && p < 1.0));
        }
    }

    #[test]
    fn protocol_grid_and_axis_agree_on_seeds_and_span() {
        let ps = [0.001, 0.01];
        let grid = protocol_grid(QuantScheme::rquant(8), &ps, 7);
        assert_eq!(grid.chip_seed_base, CHIP_SEED);
        assert_eq!(grid.rates, ps.to_vec());
        assert_eq!(grid.n_chips, 7);
        let axis = protocol_axis(&ps, 7);
        assert_eq!(axis, ChipAxis::uniform(ps.to_vec(), 7, CHIP_SEED));
        assert_eq!(axis.n_points(), grid.rates.len() * grid.n_chips);
    }

    #[test]
    fn streaming_sweep_matches_batch_and_covers_every_cell_in_order() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let (_, test_ds) = SynthDataset::Mnist.generate(0);
        let ps = [0.001, 0.01];
        let chips = 3;

        let batch = rerr_sweep(&model, QuantScheme::rquant(8), &test_ds, &ps, chips);
        let mut seen = Vec::new();
        let streamed = rerr_sweep_streaming(
            &model,
            QuantScheme::rquant(8),
            &test_ds,
            &ps,
            chips,
            |r, c, _| seen.push((r, c)),
        );
        assert_eq!(batch, streamed, "streaming must not change results");
        let expected: Vec<(usize, usize)> =
            (0..ps.len()).flat_map(|r| (0..chips).map(move |c| (r, c))).collect();
        assert_eq!(seen, expected, "every cell must stream exactly once, in order");
    }
}
