//! Clean and robust evaluation (`Err` and `RErr`, Sec. 5 "Metrics").

use bitrobust_biterror::{ErrorInjector, UniformChip};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::softmax_rows;

use crate::QuantizedModel;

/// Default evaluation batch size.
pub const EVAL_BATCH: usize = 128;

/// Result of a single (clean or perturbed) evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Classification error in `[0, 1]`.
    pub error: f32,
    /// Mean confidence (softmax probability of the predicted class).
    pub confidence: f32,
}

/// Evaluates the model as-is on a dataset.
pub fn evaluate(model: &mut Model, dataset: &Dataset, batch_size: usize, mode: Mode) -> EvalResult {
    assert!(batch_size > 0, "batch size must be positive");
    let mut wrong = 0usize;
    let mut conf_sum = 0f64;
    let n = dataset.len();
    let mut index = 0;
    while index < n {
        let end = (index + batch_size).min(n);
        let indices: Vec<usize> = (index..end).collect();
        let (x, labels) = dataset.batch(&indices);
        let logits = model.forward(&x, mode);
        let probs = softmax_rows(&logits);
        let preds = probs.argmax_rows();
        for (row, (&label, &pred)) in labels.iter().zip(&preds).enumerate() {
            if pred != label {
                wrong += 1;
            }
            conf_sum += probs.row(row)[pred] as f64;
        }
        index = end;
    }
    EvalResult { error: wrong as f32 / n as f32, confidence: (conf_sum / n as f64) as f32 }
}

/// Evaluates the model after quantization (the clean `Err` the paper
/// reports for quantized DNNs). Restores the float weights afterwards.
pub fn quantized_error(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    let snapshot = model.param_tensors();
    let q = QuantizedModel::quantize(model, scheme);
    q.write_to(model);
    let result = evaluate(model, dataset, batch_size, mode);
    model.set_param_tensors(&snapshot);
    result
}

/// Robust test error over a set of error-pattern samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEval {
    /// Mean `RErr` over patterns, in `[0, 1]`.
    pub mean_error: f32,
    /// Standard deviation of `RErr` over patterns.
    pub std_error: f32,
    /// Mean confidence under errors.
    pub mean_confidence: f32,
    /// Per-pattern errors.
    pub errors: Vec<f32>,
}

impl RobustEval {
    fn from_results(results: &[EvalResult]) -> Self {
        assert!(!results.is_empty(), "need at least one error pattern");
        let n = results.len() as f64;
        let mean = results.iter().map(|r| r.error as f64).sum::<f64>() / n;
        let var = results.iter().map(|r| (r.error as f64 - mean).powi(2)).sum::<f64>() / n.max(1.0);
        let conf = results.iter().map(|r| r.confidence as f64).sum::<f64>() / n;
        Self {
            mean_error: mean as f32,
            std_error: var.sqrt() as f32,
            mean_confidence: conf as f32,
            errors: results.iter().map(|r| r.error).collect(),
        }
    }
}

/// Evaluates `RErr`: quantizes the model, then for each injector clones the
/// quantized image, injects bit errors, and measures test error. Restores
/// the float weights afterwards.
///
/// The injectors are the "chips": for the paper's headline numbers these
/// are [`UniformChip`]s at a common rate `p` (see [`robust_eval_uniform`]);
/// for the generalization experiments they are profiled chips at an
/// operating voltage with varying memory offsets.
pub fn robust_eval<I: ErrorInjector>(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    injectors: &[I],
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let snapshot = model.param_tensors();
    let q0 = QuantizedModel::quantize(model, scheme);
    let mut results = Vec::with_capacity(injectors.len());
    for injector in injectors {
        let mut q = q0.clone();
        q.inject(injector);
        q.write_to(model);
        results.push(evaluate(model, dataset, batch_size, mode));
    }
    model.set_param_tensors(&snapshot);
    RobustEval::from_results(&results)
}

/// [`robust_eval`] against `n_chips` uniform random chips at rate `p`
/// (the paper's default protocol: 50 chips, fixed seeds, shared across all
/// models and rates so results are comparable).
#[allow(clippy::too_many_arguments)] // mirrors the paper's evaluation protocol knobs
pub fn robust_eval_uniform(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let injectors: Vec<_> =
        (0..n_chips).map(|c| UniformChip::new(chip_seed_base + c as u64).at_rate(p)).collect();
    robust_eval(model, scheme, dataset, &injectors, batch_size, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn tiny_setup() -> (Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let (_, test) = SynthDataset::Mnist.generate(0);
        (built.model, test)
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let (mut model, test) = tiny_setup();
        let r = evaluate(&mut model, &test, EVAL_BATCH, Mode::Eval);
        assert!(r.error > 0.6, "untrained error {} should be near chance", r.error);
        assert!(r.confidence > 0.0 && r.confidence <= 1.0);
    }

    #[test]
    fn quantized_error_restores_weights() {
        let (mut model, test) = tiny_setup();
        let before = model.param_tensors();
        let _ = quantized_error(&mut model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let after = model.param_tensors();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a, b, "float weights must be restored");
        }
    }

    #[test]
    fn robust_eval_produces_one_result_per_chip() {
        let (mut model, test) = tiny_setup();
        let r = robust_eval_uniform(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(r.errors.len(), 5);
        assert!(r.mean_error >= 0.0 && r.mean_error <= 1.0);
        assert!(r.std_error >= 0.0);
    }

    #[test]
    fn zero_rate_matches_quantized_error() {
        let (mut model, test) = tiny_setup();
        let clean =
            quantized_error(&mut model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let robust = robust_eval_uniform(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            0.0,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert!((robust.mean_error - clean.error).abs() < 1e-6);
        assert_eq!(robust.std_error, 0.0);
    }
}
