//! The lint rules: machine-enforced versions of the workspace's written
//! contracts.
//!
//! Every rule here encodes an invariant the compiler cannot check but the
//! reproduction's credibility rests on (see README "Static analysis"):
//! byte-identical results across thread counts, exactness of the
//! quantization boundary, and auditable `unsafe`. Rules are deliberately
//! lexical — they run on the token stream from [`crate::lexer`], so they
//! are immune to `unsafe` appearing in strings or comments, but they do
//! not type-check. Where a rule needs semantic slack (a thread-count read
//! that provably cannot change bytes), the escape hatch is an inline
//! `// analyze:allow(<rule>, <reason>)` with a mandatory reason, or a
//! baselined entry in `ANALYZE_baseline.txt`.

use crate::context::FileContext;
use crate::lexer::TokenKind;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (kebab-case, stable: baselines and allows reference it).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line, for reports and baseline hashing.
    pub snippet: String,
}

/// A rule's id plus the one-line rationale shown by `--list-rules`.
pub struct RuleInfo {
    /// Stable kebab-case id.
    pub id: &'static str,
    /// What it enforces and why.
    pub doc: &'static str,
}

/// Every rule the engine knows, in evaluation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "safety-comment",
        doc: "every `unsafe` block / impl / fn is immediately preceded by a `// SAFETY:` \
              comment stating why the contract holds (fns may use a `# Safety` doc instead)",
    },
    RuleInfo {
        id: "safety-doc",
        doc: "`pub unsafe fn` and `#[target_feature]` fns document their contract under a \
              `# Safety` rustdoc section (callers need it to write their SAFETY comments)",
    },
    RuleInfo {
        id: "debug-assert-unsafe",
        doc: "no `debug_assert!` inside `unsafe` blocks: a release-mode-only check is not a \
              safety argument — promote to `assert!` or move it out of the block",
    },
    RuleInfo {
        id: "det-collections",
        doc: "no `HashMap`/`HashSet` in the numeric crates: iteration order is randomized \
              per-process, which breaks byte-determinism — use `BTreeMap`/`BTreeSet`/sorted Vec",
    },
    RuleInfo {
        id: "det-wall-clock",
        doc: "no `std::time` clocks (`Instant`/`SystemTime`) in the numeric crates: results \
              must be a function of inputs and seeds only — the obs crate and the pool are \
              the sole wall-clock authorities (they time work but never feed results)",
    },
    RuleInfo {
        id: "det-rng",
        doc: "no ambient randomness (`thread_rng`/`OsRng`/`from_entropy`) in the numeric \
              crates: every RNG is seeded through the protocol constants",
    },
    RuleInfo {
        id: "det-thread-count",
        doc: "no thread-count reads (`pool_parallelism`/`available_parallelism`) in the \
              numeric crates outside the pool itself: arithmetic on thread counts is how \
              results silently become machine-dependent (shard counts, not thread counts, \
              are the numerical contract)",
    },
    RuleInfo {
        id: "cast-boundary",
        doc: "no bare `as` casts between numeric types in the quantization-boundary files \
              (quant, nn::quantized, core::qmodel): use `From` for lossless widening and the \
              checked helpers in `bitrobust_tensor::cast` (or the allowlisted codec fns) for \
              anything lossy — `as` silently saturates and silently loses exactness",
    },
    RuleInfo {
        id: "deprecated-note",
        doc: "`#[deprecated]` must carry `note = \"...\"` with a migration pointer, so every \
              deprecation tells callers where to go",
    },
    RuleInfo {
        id: "suppression-hygiene",
        doc: "`analyze:allow` must name a known rule, give a reason, and actually suppress \
              something (stale allows are findings, so the escape hatch cannot rot)",
    },
];

/// Whether `id` names a known rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Crates whose `src/` trees carry the byte-determinism contract. `serve`,
/// `experiments` and `bench` are deliberately absent: serving needs real
/// deadlines and benches need real clocks.
const NUMERIC_SRC: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/quant/src/",
    "crates/biterror/src/",
    "crates/core/src/",
    "crates/obs/src/",
];

/// Files forming the float ↔ integer quantization boundary, where every
/// numeric conversion must be exact or explicitly checked.
const QUANT_BOUNDARY: &[&str] =
    &["crates/quant/src/", "crates/nn/src/quantized.rs", "crates/core/src/qmodel.rs"];

/// The thread pool is the *single* authority allowed to read machine
/// parallelism; everything else must consume its published constants.
const THREAD_COUNT_AUTHORITY: &[&str] = &["crates/tensor/src/pool.rs", "crates/tensor/src/lib.rs"];

/// The only places in the numeric crates allowed to read wall clocks: the
/// obs crate (whose whole contract is that timings are recorded, never
/// read back into results) and the pool's idle-worker parking logic.
/// Everything else stays a pure function of inputs and seeds.
const WALL_CLOCK_AUTHORITY: &[&str] = &["crates/obs/src/", "crates/tensor/src/pool.rs"];

/// Checked codec functions inside which bare `as` casts are the
/// implementation, not a leak. Each entry is (path suffix, fn name):
///
/// * `scheme.rs::quantize_with_range` — rejects non-finite input up front,
///   clamps to `[-L, L]`, masks to the live bits; its casts are the codec.
/// * `scheme.rs::decode_level` — pure bit manipulation (sign-extension);
///   the `u8 → i8 → i32` chain is the definition of the word→level map.
/// * `scheme.rs::dequantize_word` — levels are `|q| <= 128`, exact in f32.
/// * `scheme.rs::weight_affine` — `max_level() as f32` with `L <= 128`.
/// * `quantized.rs::decode_i8` — the `level as i8` is guarded by a range
///   debug_assert and the rebias argument documented on the method.
const CAST_ALLOWLIST: &[(&str, &str)] = &[
    ("crates/quant/src/scheme.rs", "quantize_with_range"),
    ("crates/quant/src/scheme.rs", "decode_level"),
    ("crates/quant/src/scheme.rs", "dequantize_word"),
    ("crates/quant/src/scheme.rs", "weight_affine"),
    ("crates/quant/src/quantized.rs", "decode_i8"),
];

/// Numeric types whose `as` casts the boundary rule polices. `usize` /
/// `isize` are exempt: they are index arithmetic, not value conversion.
const NUMERIC_TYPES: &[&str] =
    &["f32", "f64", "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64"];

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p) || path.ends_with(p))
}

/// Runs every rule over one file. Returns the surviving findings plus the
/// number of findings masked by `analyze:allow` suppressions.
pub fn analyze_file(ctx: &FileContext<'_>) -> (Vec<Finding>, usize) {
    let mut raw: Vec<Finding> = Vec::new();

    safety_comment(ctx, &mut raw);
    safety_doc(ctx, &mut raw);
    debug_assert_unsafe(ctx, &mut raw);
    if in_any(&ctx.path, NUMERIC_SRC) {
        det_idents(ctx, &mut raw);
    }
    if in_any(&ctx.path, QUANT_BOUNDARY) {
        cast_boundary(ctx, &mut raw);
    }
    deprecated_note(ctx, &mut raw);

    // Apply inline suppressions, marking each one that fires as used.
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            if ctx.suppression_for(f.rule, f.line).is_some() {
                suppressed += 1;
                false
            } else {
                true
            }
        })
        .collect();

    // The hygiene rule runs last so it can see which allows went unused.
    // Its findings cannot themselves be suppressed.
    suppression_hygiene(ctx, &mut findings);

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, suppressed)
}

fn push(
    ctx: &FileContext<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    message: String,
) {
    out.push(Finding {
        rule,
        path: ctx.path.clone(),
        line,
        message,
        snippet: ctx.line_text(line).to_string(),
    });
}

/// `safety-comment`: every `unsafe` keyword introducing a block, impl or
/// fn must be justified by an immediately preceding `// SAFETY:` comment
/// (for fns, a `# Safety` doc section also satisfies it — that *is* the
/// justification, addressed to callers).
fn safety_comment(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let src = ctx.src;
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident(src, "unsafe") {
            continue;
        }
        let Some(next) = ctx.next_significant(i + 1) else { continue };
        let next_text = ctx.tokens[next].text(src);
        let kind = match next_text {
            "{" => "block",
            "impl" => "impl",
            "fn" | "extern" | "const" | "async" => "fn",
            _ => continue, // e.g. `unsafe` inside an attribute path
        };
        if kind == "fn" {
            // Attribute the check to the recovered item (the first `fn`
            // after this `unsafe`), which also knows about doc comments
            // sitting above attributes.
            if let Some(f) = ctx.fns.iter().find(|f| f.fn_idx >= i) {
                if f.is_unsafe && (f.safety_comment || f.doc_text.contains("# Safety")) {
                    continue;
                }
            }
            push(
                ctx,
                out,
                "safety-comment",
                t.line,
                "`unsafe fn` without a `// SAFETY:` comment or `# Safety` doc section".to_string(),
            );
            continue;
        }
        if !preceded_by_safety_comment(ctx, i) {
            push(
                ctx,
                out,
                "safety-comment",
                t.line,
                format!(
                    "`unsafe {kind}` without an immediately preceding `// SAFETY:` comment \
                     stating why the contract holds"
                ),
            );
        }
    }
}

/// Walks back from the `unsafe` token through the *current statement* and
/// accepts a `SAFETY:` comment that is line-contiguous with it. Stops at
/// statement boundaries (`;`, `{`, `}`) so a comment above an unrelated
/// previous statement never counts.
fn preceded_by_safety_comment(ctx: &FileContext<'_>, unsafe_idx: usize) -> bool {
    let src = ctx.src;
    let mut min_line = ctx.tokens[unsafe_idx].line;
    for i in (0..unsafe_idx).rev() {
        let t = &ctx.tokens[i];
        if t.is_comment() {
            if t.end_line + 1 < min_line {
                return false; // a blank-line gap breaks "immediately"
            }
            if t.text(src).contains("SAFETY:") {
                return true;
            }
            min_line = t.line;
            continue;
        }
        match t.text(src) {
            ";" | "{" | "}" => return false,
            _ => min_line = min_line.min(t.line),
        }
    }
    false
}

/// `safety-doc`: `pub unsafe fn` and `#[target_feature]` fns need a
/// `# Safety` rustdoc section. The target-feature case matters here: the
/// AVX shims are *safe* fns that are only sound to call through an unsafe
/// block after runtime feature detection, and the doc section is where
/// that calling contract lives.
fn safety_doc(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for f in &ctx.fns {
        let needs = (f.is_pub && f.is_unsafe) || f.has_target_feature;
        if !needs || f.doc_text.contains("# Safety") {
            continue;
        }
        let why = if f.has_target_feature {
            "a `#[target_feature]` fn (unsafe to call without runtime detection)"
        } else {
            "a `pub unsafe fn`"
        };
        push(
            ctx,
            out,
            "safety-doc",
            ctx.tokens[f.fn_idx].line,
            format!("`{}` is {why} but has no `# Safety` rustdoc section", f.name),
        );
    }
}

/// `debug-assert-unsafe`: a `debug_assert!` guarding bounds or
/// disjointness inside an `unsafe` block vanishes in release builds —
/// exactly where the campaigns run.
fn debug_assert_unsafe(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let src = ctx.src;
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(src);
        if !matches!(text, "debug_assert" | "debug_assert_eq" | "debug_assert_ne") {
            continue;
        }
        if ctx.in_unsafe_block(i) {
            push(
                ctx,
                out,
                "debug-assert-unsafe",
                t.line,
                format!(
                    "`{text}!` inside an `unsafe` block: release builds drop it, so it \
                     cannot carry a safety argument — use `assert!`"
                ),
            );
        }
    }
}

/// The three determinism ident-scan rules (`det-collections`,
/// `det-wall-clock`, `det-rng`, `det-thread-count`), fused into one pass.
fn det_idents(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let src = ctx.src;
    let thread_count_exempt = in_any(&ctx.path, THREAD_COUNT_AUTHORITY);
    let wall_clock_exempt = in_any(&ctx.path, WALL_CLOCK_AUTHORITY);
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test_code(t.start) {
            continue;
        }
        let text = t.text(src);
        match text {
            "HashMap" | "HashSet" => push(
                ctx,
                out,
                "det-collections",
                t.line,
                format!(
                    "`{text}` in a numeric crate: iteration order is per-process random — \
                     use `BTreeMap`/`BTreeSet` or a sorted Vec"
                ),
            ),
            "Instant" | "SystemTime" | "UNIX_EPOCH" if !wall_clock_exempt => push(
                ctx,
                out,
                "det-wall-clock",
                t.line,
                format!("`{text}` in a numeric crate: results must not depend on clocks"),
            ),
            "time" if !wall_clock_exempt && prev_is_std_path(ctx, i) => push(
                ctx,
                out,
                "det-wall-clock",
                t.line,
                "`std::time` in a numeric crate: results must not depend on clocks".to_string(),
            ),
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" => push(
                ctx,
                out,
                "det-rng",
                t.line,
                format!(
                    "`{text}` in a numeric crate: all randomness must flow from protocol \
                     seeds (`SeedableRng::seed_from_u64`)"
                ),
            ),
            "pool_parallelism" | "available_parallelism" | "num_cpus" if !thread_count_exempt => {
                push(
                    ctx,
                    out,
                    "det-thread-count",
                    t.line,
                    format!(
                        "`{text}` in a numeric crate: thread-count-dependent arithmetic is \
                         how results become machine-dependent — only work *distribution* \
                         may read it (annotate with analyze:allow and a byte-safety \
                         argument if this use is provably distribution-only)"
                    ),
                )
            }
            _ => {}
        }
    }
}

/// Whether the tokens before `idx` are `std ::` or `core ::`.
fn prev_is_std_path(ctx: &FileContext<'_>, idx: usize) -> bool {
    let src = ctx.src;
    let mut prev = (0..idx).rev().filter(|&i| !ctx.tokens[i].is_comment());
    let (Some(c2), Some(c1)) = (prev.next(), prev.next()) else { return false };
    let Some(root_idx) = prev.next() else { return false };
    ctx.tokens[c2].is_punct(src, ':')
        && ctx.tokens[c1].is_punct(src, ':')
        && matches!(ctx.tokens[root_idx].text(src), "std" | "core")
}

/// `cast-boundary`: bare `as` casts to numeric types in the quantization
/// boundary files, outside the allowlisted codec fns and test code.
fn cast_boundary(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let src = ctx.src;
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident(src, "as") || ctx.in_test_code(t.start) || ctx.in_use_decl(i) {
            continue;
        }
        let Some(next) = ctx.next_significant(i + 1) else { continue };
        let target = ctx.tokens[next].text(src);
        if !NUMERIC_TYPES.contains(&target) {
            continue;
        }
        if let Some(f) = ctx.enclosing_fn(i) {
            if CAST_ALLOWLIST.iter().any(|(path, name)| ctx.path.ends_with(path) && f.name == *name)
            {
                continue;
            }
        }
        let hint = if target.starts_with('f') {
            "use `f32::from` for lossless widening or \
             `bitrobust_tensor::cast::{exact_i32_to_f32, exact_count_to_f32}` for checked \
             conversion"
        } else {
            "use `i32::from` for lossless widening or \
             `bitrobust_tensor::cast::quantize_round_i8` for checked rounding"
        };
        push(
            ctx,
            out,
            "cast-boundary",
            t.line,
            format!("bare `as {target}` at the quantization boundary: {hint}"),
        );
    }
}

/// `deprecated-note`: `#[deprecated]` without `note = "..."` strands
/// callers without a migration pointer.
fn deprecated_note(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let src = ctx.src;
    for attr in &ctx.attrs {
        let mut content = ctx.tokens[attr.content.clone()].iter().filter(|t| !t.is_comment());
        let Some(first) = content.next() else { continue };
        if !first.is_ident(src, "deprecated") {
            continue;
        }
        let has_note = ctx.tokens[attr.content.clone()].iter().any(|t| t.is_ident(src, "note"));
        if !has_note {
            push(
                ctx,
                out,
                "deprecated-note",
                attr.line,
                "`#[deprecated]` without `note = \"...\"`: deprecations must point at the \
                 replacement API"
                    .to_string(),
            );
        }
    }
}

/// `suppression-hygiene`: malformed, unknown-rule, reason-less, or unused
/// `analyze:allow` comments are findings themselves.
fn suppression_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for s in &ctx.suppressions {
        if s.rule.is_empty() || !known_rule(&s.rule) {
            push(
                ctx,
                out,
                "suppression-hygiene",
                s.comment_line,
                format!("analyze:allow names unknown rule `{}` (see --list-rules)", s.rule),
            );
        } else if s.reason.is_empty() {
            push(
                ctx,
                out,
                "suppression-hygiene",
                s.comment_line,
                format!(
                    "analyze:allow({}) has no reason: suppressions must argue why the \
                     contract still holds",
                    s.rule
                ),
            );
        } else if !s.used.get() {
            push(
                ctx,
                out,
                "suppression-hygiene",
                s.comment_line,
                format!(
                    "analyze:allow({}) suppresses nothing on its line or the next — stale \
                     allows must be removed",
                    s.rule
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze_file(&FileContext::new(path.into(), src)).0
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        run(path, src).into_iter().map(|f| f.rule).collect()
    }

    // --- safety-comment -------------------------------------------------

    #[test]
    fn unsafe_block_without_comment_is_flagged() {
        let src = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["safety-comment"]);
    }

    #[test]
    fn unsafe_block_with_contiguous_safety_comment_passes() {
        let src = "fn f() {\n    // SAFETY: checked above.\n    let x = unsafe { danger() };\n}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_separated_by_statement_does_not_count() {
        let src =
            "fn f() {\n    // SAFETY: stale.\n    other();\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["safety-comment"]);
    }

    #[test]
    fn safety_comment_with_blank_line_gap_does_not_count() {
        let src = "fn f() {\n    // SAFETY: far away.\n\n    unsafe { danger() };\n}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["safety-comment"]);
    }

    #[test]
    fn each_unsafe_impl_needs_its_own_comment() {
        let src = "\
struct P(*mut f32);\n\
// SAFETY: disjoint carving only.\n\
unsafe impl Send for P {}\n\
unsafe impl Sync for P {}\n";
        let hits = run("crates/x/src/a.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "safety-comment");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn multiline_statement_accepts_comment_above_statement_start() {
        let src = "\
fn f() {\n\
    // SAFETY: lifetime erasure only.\n\
    let g: &'static Task =\n\
        unsafe { transmute(r) };\n\
}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_with_safety_doc_passes_without_line_comment() {
        let src = "/// Frees it.\n///\n/// # Safety\n/// `p` must be live.\nunsafe fn free(p: *mut u8) {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_without_any_justification_is_flagged() {
        let src = "unsafe fn free(p: *mut u8) {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).contains(&"safety-comment"));
    }

    #[test]
    fn unsafe_in_string_is_not_flagged() {
        let src = "fn f() { let s = \"unsafe { }\"; }\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    // --- safety-doc -----------------------------------------------------

    #[test]
    fn pub_unsafe_fn_without_safety_section_is_flagged() {
        let src = "/// Does a thing.\n// SAFETY: internal use.\npub unsafe fn f() {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).contains(&"safety-doc"));
    }

    #[test]
    fn target_feature_fn_needs_safety_section() {
        let src = "#[target_feature(enable = \"avx\")]\nfn kernel() {}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["safety-doc"]);
    }

    #[test]
    fn target_feature_fn_with_safety_section_passes() {
        let src = "\
/// AVX kernel.\n\
///\n\
/// # Safety\n\
/// Call only after `is_x86_feature_detected!(\"avx\")`.\n\
#[target_feature(enable = \"avx\")]\n\
fn kernel() {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn private_safe_fn_needs_no_safety_doc() {
        let src = "fn plain() {}\npub fn also_plain() {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    // --- debug-assert-unsafe --------------------------------------------

    #[test]
    fn debug_assert_inside_unsafe_block_is_flagged() {
        let src = "\
fn f(p: &mut [f32]) {\n\
    // SAFETY: bounds checked by the debug_assert (which is the bug).\n\
    unsafe {\n\
        debug_assert!(p.len() > 4);\n\
        danger(p);\n\
    }\n\
}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["debug-assert-unsafe"]);
    }

    #[test]
    fn debug_assert_outside_unsafe_block_is_fine() {
        let src = "fn f(n: usize) { debug_assert!(n > 0); }\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    // --- determinism rules ----------------------------------------------

    #[test]
    fn hashmap_in_numeric_crate_is_flagged_everywhere_including_imports() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let hits = rules_hit("crates/nn/src/model.rs", src);
        assert_eq!(hits, vec!["det-collections"; 3]);
    }

    #[test]
    fn hashmap_outside_numeric_crates_is_fine() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_hit("crates/serve/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/experiments/src/cli.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_numeric_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_hit("crates/nn/src/model.rs", src).is_empty());
    }

    #[test]
    fn clocks_and_ambient_rng_are_flagged_in_numeric_crates() {
        let src = "\
fn f() {\n\
    let t = std::time::Instant::now();\n\
    let mut rng = rand::thread_rng();\n\
}\n";
        let hits = rules_hit("crates/core/src/train.rs", src);
        // `time` (std path), `Instant`, and `thread_rng`.
        assert_eq!(hits, vec!["det-wall-clock", "det-wall-clock", "det-rng"]);
    }

    #[test]
    fn wall_clock_authorities_may_read_clocks_but_nothing_else() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        // The obs crate and the pool time work; that is their whole job.
        assert!(rules_hit("crates/obs/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/tensor/src/pool.rs", src).is_empty());
        // The rest of tensor (and every other numeric crate) stays banned.
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", src),
            vec!["det-wall-clock", "det-wall-clock"]
        );
    }

    #[test]
    fn obs_crate_is_numeric_for_every_other_determinism_rule() {
        // The wall-clock exemption is narrow: hash maps and ambient RNG in
        // the obs crate would still break merge determinism.
        let src = "use std::collections::HashMap;\nfn f() { rand::thread_rng(); }\n";
        assert_eq!(
            rules_hit("crates/obs/src/snapshot.rs", src),
            vec!["det-collections", "det-rng"]
        );
    }

    #[test]
    fn thread_count_reads_are_flagged_outside_the_pool() {
        let src = "fn shards() -> usize { pool_parallelism() * 2 }\n";
        assert_eq!(rules_hit("crates/core/src/sweep.rs", src), vec!["det-thread-count"]);
        // … but the pool itself is the authority.
        let pool = "fn size() -> usize { std::thread::available_parallelism().unwrap().get() }\n";
        assert!(rules_hit("crates/tensor/src/pool.rs", pool).is_empty());
    }

    #[test]
    fn thread_count_with_reasoned_allow_is_suppressed_and_counted() {
        let src = "\
fn wave() -> usize {\n\
    // analyze:allow(det-thread-count, distribution only: slot grid is fixed)\n\
    pool_parallelism() * 2\n\
}\n";
        let ctx = FileContext::new("crates/core/src/scheduler.rs".into(), src);
        let (findings, suppressed) = analyze_file(&ctx);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    // --- cast-boundary --------------------------------------------------

    #[test]
    fn bare_cast_in_boundary_file_is_flagged() {
        let src = "fn requantize(dot: i32, s: f32) -> f32 { s * dot as f32 }\n";
        assert_eq!(rules_hit("crates/nn/src/quantized.rs", src), vec!["cast-boundary"]);
    }

    #[test]
    fn usize_casts_and_non_boundary_files_are_exempt() {
        let src = "fn idx(i: i32) -> usize { i as usize }\n";
        assert!(rules_hit("crates/nn/src/quantized.rs", src).is_empty());
        let src2 = "fn f(x: i32) -> f32 { x as f32 }\n";
        assert!(rules_hit("crates/nn/src/linear.rs", src2).is_empty());
    }

    #[test]
    fn allowlisted_codec_fn_may_cast() {
        let src = "impl S {\n    pub fn decode_level(&self, w: u8) -> i32 { w as i8 as i32 }\n}\n";
        assert!(rules_hit("crates/quant/src/scheme.rs", src).is_empty());
        // The same body under another name is flagged.
        let src2 = "impl S {\n    pub fn sneaky(&self, w: u8) -> i32 { w as i8 as i32 }\n}\n";
        assert_eq!(rules_hit("crates/quant/src/scheme.rs", src2), vec!["cast-boundary"; 2]);
    }

    #[test]
    fn cast_in_boundary_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(i: usize) -> f32 { i as f32 }\n}\n";
        assert!(rules_hit("crates/quant/src/scheme.rs", src).is_empty());
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        let src = "use std::fmt::Result as FmtResult;\n";
        assert!(rules_hit("crates/quant/src/scheme.rs", src).is_empty());
    }

    // --- deprecated-note ------------------------------------------------

    #[test]
    fn deprecated_without_note_is_flagged() {
        let src =
            "#[deprecated]\npub fn old() {}\n#[deprecated(since = \"0.1.0\")]\npub fn old2() {}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["deprecated-note"; 2]);
    }

    #[test]
    fn deprecated_with_note_passes() {
        let src = "#[deprecated(note = \"use `new_thing` instead\")]\npub fn old() {}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    // --- suppression-hygiene --------------------------------------------

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// analyze:allow(no-such-rule, whatever)\nlet x = 1;\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["suppression-hygiene"]);
    }

    #[test]
    fn reasonless_allow_is_flagged() {
        let src = "fn f() {\n    // analyze:allow(safety-comment)\n    unsafe { danger() }\n}\n";
        let hits = rules_hit("crates/x/src/a.rs", src);
        assert_eq!(hits, vec!["suppression-hygiene"]);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// analyze:allow(det-rng, no rng here at all)\nfn f() {}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", src), vec!["suppression-hygiene"]);
    }

    #[test]
    fn used_allow_with_reason_is_clean() {
        let src = "\
fn f() {\n\
    // analyze:allow(safety-comment, verified by miri in CI)\n\
    unsafe { danger() }\n\
}\n";
        assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn rule_table_ids_are_unique_and_kebab() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "non-kebab id {}",
                r.id
            );
        }
        assert!(RULES.len() >= 6, "the acceptance bar is >= 6 distinct rules");
    }
}
