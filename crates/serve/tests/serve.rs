//! Integration suite for the inference service.
//!
//! The contract under test, end to end: every response is **byte-identical**
//! to the single-threaded [`reference_response`] of the (model, version) it
//! reports — under concurrent clients, micro-batching, a mid-traffic
//! hot-swap, and backpressure shedding — and no request is silently
//! dropped: once the service shuts down, `completed + shed == submitted`
//! and every issued ticket resolves.

use std::sync::Arc;
use std::time::Duration;

use bitrobust_core::{build, ArchKind, NormKind};
use bitrobust_data::{Dataset, SynthDataset};
use bitrobust_serve::{
    reference_response, InferenceService, ModelRegistry, ServeConfig, ServeResponse, ServedModel,
    SubmitError, Ticket,
};
use bitrobust_tensor::Tensor;
use rand::SeedableRng;

fn tiny_model(seed: u64) -> bitrobust_nn::Model {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model
}

fn test_images(n: usize) -> Vec<Tensor> {
    let (_, test): (_, Dataset) = SynthDataset::Mnist.generate(0);
    (0..n).map(|i| test.batch(&[i % test.len()]).0).collect()
}

fn assert_response_bits(actual: &ServeResponse, expected: &ServeResponse) {
    assert_eq!(actual.prediction, expected.prediction);
    assert_eq!(
        actual.confidence.to_bits(),
        expected.confidence.to_bits(),
        "confidence must be bit-identical to the serial reference"
    );
    assert_eq!(actual.model_key, expected.model_key);
    assert_eq!(actual.model_version, expected.model_version);
}

/// N concurrent clients, coalescing encouraged by a generous delay
/// window: every response must match the serial single-image reference
/// bit for bit.
#[test]
fn concurrent_clients_match_serial_reference() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("mlp", tiny_model(0));
    let reference_model = registry.get("mlp").unwrap();

    let config =
        ServeConfig { queue_capacity: 256, max_batch: 8, max_delay: Duration::from_millis(20) };
    let service = InferenceService::start(Arc::clone(&registry), config);
    let images = test_images(24);

    let responses: Vec<Vec<(usize, ServeResponse)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|client| {
                let service = &service;
                let images = &images;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    for i in (client..images.len()).step_by(3) {
                        let response =
                            service.infer_blocking("mlp", images[i].clone()).expect("submit");
                        got.push((i, response));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut served = 0usize;
    for (i, response) in responses.into_iter().flatten() {
        let expected = reference_response(&reference_model, &images[i]);
        assert_response_bits(&response, &expected);
        served += 1;
    }
    assert_eq!(served, 24);

    let stats = service.shutdown();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.shed, 0);
}

/// Requests for different models coalesce in the same waves but must
/// never share a micro-batch — each response matches its own model's
/// reference.
#[test]
fn interleaved_models_never_cross_batches() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("a", tiny_model(0));
    registry.publish("b", tiny_model(1));
    let model_a = registry.get("a").unwrap();
    let model_b = registry.get("b").unwrap();

    let config =
        ServeConfig { queue_capacity: 64, max_batch: 8, max_delay: Duration::from_millis(20) };
    let service = InferenceService::start(Arc::clone(&registry), config);
    let images = test_images(10);

    let tickets: Vec<(usize, &Arc<ServedModel>, Ticket)> = images
        .iter()
        .enumerate()
        .map(|(i, image)| {
            let (key, model) = if i % 2 == 0 { ("a", &model_a) } else { ("b", &model_b) };
            (i, model, service.submit(key, image.clone()).expect("submit"))
        })
        .collect();
    for (i, model, ticket) in tickets {
        assert_response_bits(&ticket.wait(), &reference_response(model, &images[i]));
    }
    service.shutdown();
}

/// A hot-swap under live traffic: responses before the publish report v1,
/// after it v2, and during it either — but always byte-identical to the
/// reference of the version they report, and none lost.
#[test]
fn hot_swap_mid_traffic_serves_both_versions_consistently() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", tiny_model(0));
    let v1 = registry.get("m").unwrap();

    let config =
        ServeConfig { queue_capacity: 256, max_batch: 4, max_delay: Duration::from_millis(5) };
    let service = InferenceService::start(Arc::clone(&registry), config);
    let images = test_images(12);

    // Phase 1: pre-swap traffic must all be v1.
    for image in &images[..4] {
        let response = service.infer_blocking("m", image.clone()).expect("submit");
        assert_eq!(response.model_version, 1);
        assert_response_bits(&response, &reference_response(&v1, image));
    }

    // Phase 2: swap while clients are submitting. Each response must match
    // the reference of whichever version served it.
    let v2 = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..2)
            .map(|client| {
                let service = &service;
                let images = &images;
                scope.spawn(move || {
                    (client..images.len())
                        .step_by(2)
                        .map(|i| {
                            (i, service.infer_blocking("m", images[i].clone()).expect("submit"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        registry.publish("m", tiny_model(7));
        let v2 = registry.get("m").unwrap();
        for (i, response) in clients.into_iter().flat_map(|h| h.join().expect("client")) {
            let version = match response.model_version {
                1 => &v1,
                2 => &v2,
                other => panic!("impossible version {other}"),
            };
            assert_response_bits(&response, &reference_response(version, &images[i]));
        }
        v2
    });

    // Phase 3: post-swap traffic must all be v2 — and v2 must actually
    // differ from v1 somewhere, or the swap test is vacuous.
    let mut any_differs = false;
    for image in &images[..4] {
        let response = service.infer_blocking("m", image.clone()).expect("submit");
        assert_eq!(response.model_version, 2);
        let expected = reference_response(&v2, image);
        assert_response_bits(&response, &expected);
        any_differs |=
            expected.confidence.to_bits() != reference_response(&v1, image).confidence.to_bits();
    }
    assert!(any_differs, "v2 must be observably different from v1");

    let stats = service.shutdown();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.shed, 0);
}

/// Deterministic backpressure: with a tiny queue and a wave window far
/// longer than the burst, a burst of `capacity + k` submissions sheds
/// exactly `k` — and the admitted requests are still served correctly.
#[test]
fn backpressure_sheds_exactly_beyond_capacity() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", tiny_model(0));
    let model = registry.get("m").unwrap();

    // max_batch > capacity, so the engine cannot release the wave before
    // the 1 s window — the whole burst races only the queue bound.
    let config =
        ServeConfig { queue_capacity: 4, max_batch: 64, max_delay: Duration::from_secs(1) };
    let service = InferenceService::start(Arc::clone(&registry), config);
    let images = test_images(7);

    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for image in &images {
        match service.submit("m", image.clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert_eq!(tickets.len(), 4, "exactly `capacity` admitted");
    assert_eq!(shed, 3, "exactly the overflow shed");

    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_response_bits(&ticket.wait(), &reference_response(&model, &images[i]));
    }
    let stats = service.shutdown();
    assert_eq!((stats.submitted, stats.completed, stats.shed), (7, 4, 3));
}

/// Shutdown with a backlog still inside its delay window: the backlog is
/// served (drained), not discarded — every ticket resolves.
#[test]
fn shutdown_drains_pending_requests() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", tiny_model(0));
    let model = registry.get("m").unwrap();

    let config =
        ServeConfig { queue_capacity: 64, max_batch: 64, max_delay: Duration::from_secs(30) };
    let service = InferenceService::start(Arc::clone(&registry), config);
    let images = test_images(5);
    let tickets: Vec<Ticket> =
        images.iter().map(|img| service.submit("m", img.clone()).expect("submit")).collect();

    let stats = service.shutdown();
    assert_eq!((stats.submitted, stats.completed, stats.shed), (5, 5, 0));
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_response_bits(&ticket.wait(), &reference_response(&model, &images[i]));
    }
}

/// Unknown keys are rejected before admission and never counted.
#[test]
fn unknown_model_is_rejected_at_submit() {
    let registry = Arc::new(ModelRegistry::new());
    let service = InferenceService::start(Arc::clone(&registry), ServeConfig::default());
    let image = test_images(1).pop().unwrap();
    assert_eq!(
        service.submit("nope", image).unwrap_err(),
        SubmitError::UnknownModel("nope".to_string())
    );
    let stats = service.shutdown();
    assert_eq!((stats.submitted, stats.completed, stats.shed), (0, 0, 0));
}
