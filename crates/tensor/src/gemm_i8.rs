//! Packed, cache-blocked, register-tiled integer GEMM: `i8 × i8 → i32`.
//!
//! This is the integer twin of the f32 kernel in [`crate::gemm`]: same
//! GotoBLAS/BLIS blocking ([`MR`]/[`NR`]/[`MC`]/[`KC`]/[`NC`] are reused
//! verbatim), same stride-described operands so transposition is absorbed at
//! pack time, same load-accumulate-store C tile. It is what the
//! integer-domain inference path (`QuantizedModel::infer`) runs its
//! Linear/Conv2d layers on: quantized words are decoded once to `i8` levels,
//! multiplied here with exact `i32` accumulation, and requantized at layer
//! boundaries.
//!
//! # Determinism
//!
//! Integer accumulation is exact, so — unlike the f32 kernel, whose
//! ascending-`k` single-accumulator reduction is a *contract* — the result
//! here is bit-identical to the naive sequential triple loop by
//! construction, for every tiling, SIMD width, and thread count. The packed
//! path still keeps the same reduction shape as its f32 twin (one scalar
//! accumulator per output element, ascending `k`) so the two kernels stay
//! structurally interchangeable. Accumulators are `i32`: products are
//! bounded by `2^14`, so sums are exact for any `k ≤ 2^17`, far beyond any
//! layer in the workspace.

use std::cell::RefCell;

use crate::gemm::{KC, MC, MR, NC, NR};

thread_local! {
    /// Per-worker packed-panel scratch (A block, B block), the i8 twin of
    /// the f32 kernel's scratch.
    static PACK_SCRATCH_I8: RefCell<(Vec<i8>, Vec<i8>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// An integer GEMM operand described by its buffer and element strides —
/// the `i8` twin of [`crate::GemmOperand`]. The logical matrix element
/// `(r, c)` lives at `buf[r * rs + c * cs]`.
#[derive(Clone, Copy, Debug)]
pub struct GemmOperandI8<'a> {
    buf: &'a [i8],
    rs: usize,
    cs: usize,
}

impl<'a> GemmOperandI8<'a> {
    /// A row-major matrix with contiguous rows of length `cols`.
    pub fn row_major(buf: &'a [i8], cols: usize) -> Self {
        Self { buf, rs: cols, cs: 1 }
    }

    /// The transpose of a row-major matrix whose *stored* rows have length
    /// `stored_cols` (i.e. the logical matrix is `stored` read column-wise).
    pub fn transposed(buf: &'a [i8], stored_cols: usize) -> Self {
        Self { buf, rs: 1, cs: stored_cols }
    }

    /// A row-major view with an explicit row stride (`ld >= cols`), for
    /// operating on a sub-block of a larger matrix.
    pub fn strided(buf: &'a [i8], ld: usize) -> Self {
        Self { buf, rs: ld, cs: 1 }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> i8 {
        self.buf[r * self.rs + c * self.cs]
    }

    /// Panics unless every element of an `rows x cols` view is in bounds.
    fn check(&self, rows: usize, cols: usize) {
        if rows > 0 && cols > 0 {
            let last = (rows - 1) * self.rs + (cols - 1) * self.cs;
            assert!(last < self.buf.len(), "gemm operand out of bounds: {rows}x{cols}");
        }
    }
}

/// `C += A · B` in the integer domain: `C[i, j]: i32` lives at
/// `c[i * ldc + j]`, `A` is `m x k`, `B` is `k x n`, both `i8`.
///
/// # Panics
///
/// Panics if any operand (including `c` with row stride `ldc`) is too short
/// for the given dimensions, or if `ldc < n`.
pub fn gemm_i8(
    c: &mut [i32],
    ldc: usize,
    a: GemmOperandI8,
    b: GemmOperandI8,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldc >= n, "ldc ({ldc}) must be >= n ({n})");
    let last = (m - 1) * ldc + (n - 1);
    assert!(last < c.len(), "gemm output out of bounds: {m}x{n} with ldc {ldc}");
    if k == 0 {
        return; // accumulate semantics: nothing to add
    }
    a.check(m, k);
    b.check(k, n);
    let use_avx2 = avx2_available();
    bitrobust_obs::span!("gemm.i8");

    PACK_SCRATCH_I8.with(|scratch| {
        let (a_buf, b_buf) = &mut *scratch.borrow_mut();
        a_buf.resize(MC * KC, 0);
        b_buf.resize(KC * NC, 0);

        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let nr_tiles = nc.div_ceil(NR);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(b_buf, b, pc, jc, kc, nc);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    let mr_tiles = mc.div_ceil(MR);
                    pack_a(a_buf, a, ic, pc, mc, kc);
                    for jr in 0..nr_tiles {
                        let nr_eff = NR.min(nc - jr * NR);
                        let b_panel = &b_buf[jr * kc * NR..(jr + 1) * kc * NR];
                        for ir in 0..mr_tiles {
                            let mr_eff = MR.min(mc - ir * MR);
                            let a_panel = &a_buf[ir * kc * MR..(ir + 1) * kc * MR];
                            let c_off = (ic + ir * MR) * ldc + jc + jr * NR;
                            let c_tile = &mut c[c_off..];
                            microkernel(use_avx2, c_tile, ldc, a_panel, b_panel, mr_eff, nr_eff);
                        }
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

/// Packs the `mc x kc` block of `A` at `(ic, pc)` into row panels of [`MR`]:
/// `panel[p * MR + i] = A[ic + ir*MR + i, pc + p]`, zero-padded past `mc`.
fn pack_a(buf: &mut [i8], a: GemmOperandI8, ic: usize, pc: usize, mc: usize, kc: usize) {
    let mr_tiles = mc.div_ceil(MR);
    for ir in 0..mr_tiles {
        let panel = &mut buf[ir * kc * MR..(ir + 1) * kc * MR];
        let rows = MR.min(mc - ir * MR);
        let i0 = ic + ir * MR;
        if rows < MR {
            panel.fill(0);
        }
        if a.cs == 1 {
            // Rows of A are contiguous: interleave `rows` row slices.
            for i in 0..rows {
                let src = &a.buf[(i0 + i) * a.rs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * MR + i] = v;
                }
            }
        } else if a.rs == 1 {
            // A is a pack-time transpose: each k-slice is contiguous.
            for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                let src = &a.buf[(pc + p) * a.cs + i0..][..rows];
                chunk[..rows].copy_from_slice(src);
            }
        } else {
            for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                for (i, slot) in chunk.iter_mut().enumerate().take(rows) {
                    *slot = a.at(i0 + i, pc + p);
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `B` at `(pc, jc)` into column panels of
/// [`NR`]: `panel[p * NR + j] = B[pc + p, jc + jr*NR + j]`, zero-padded.
fn pack_b(buf: &mut [i8], b: GemmOperandI8, pc: usize, jc: usize, kc: usize, nc: usize) {
    let nr_tiles = nc.div_ceil(NR);
    for jr in 0..nr_tiles {
        let panel = &mut buf[jr * kc * NR..(jr + 1) * kc * NR];
        let cols = NR.min(nc - jr * NR);
        let j0 = jc + jr * NR;
        if cols < NR {
            panel.fill(0);
        }
        if b.cs == 1 {
            // Rows of B are contiguous: straight row copies.
            for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &b.buf[(pc + p) * b.rs + j0..][..cols];
                chunk[..cols].copy_from_slice(src);
            }
        } else if b.rs == 1 {
            // B is a pack-time transpose: each column is contiguous.
            for j in 0..cols {
                let src = &b.buf[(j0 + j) * b.cs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + j] = v;
                }
            }
        } else {
            for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                for (j, slot) in chunk.iter_mut().enumerate().take(cols) {
                    *slot = b.at(pc + p, j0 + j);
                }
            }
        }
    }
}

/// The register-tiled integer inner loop: loads the valid `mr_eff x nr_eff`
/// corner of the C tile, accumulates `kc` widened `i8 × i8` outer products
/// (fully unrolled over the `MR x NR` tile so LLVM vectorizes the `j`
/// lanes), and stores the corner back.
#[inline(always)]
fn microkernel_body(
    c: &mut [i32],
    ldc: usize,
    a_panel: &[i8],
    b_panel: &[i8],
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0i32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr_eff) {
        row[..nr_eff].copy_from_slice(&c[i * ldc..i * ldc + nr_eff]);
    }
    for (a_k, b_k) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let a_k: &[i8; MR] = a_k.try_into().expect("panel chunk");
        let b_k: &[i8; NR] = b_k.try_into().expect("panel chunk");
        for (i, row) in acc.iter_mut().enumerate() {
            let a_ip = a_k[i] as i32;
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += a_ip * b_k[j] as i32;
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr_eff) {
        c[i * ldc..i * ldc + nr_eff].copy_from_slice(&row[..nr_eff]);
    }
}

/// Baseline-ISA compilation of [`microkernel_body`].
///
/// `inline(never)` for the same reason as the f32 kernel: compiled as a
/// standalone function the autovectorizer reliably turns into packed SIMD.
#[inline(never)]
fn microkernel_portable(
    c: &mut [i32],
    ldc: usize,
    a_panel: &[i8],
    b_panel: &[i8],
    mr_eff: usize,
    nr_eff: usize,
) {
    microkernel_body(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

/// AVX2 compilation of the *same* [`microkernel_body`], dispatched at
/// runtime (integer SIMD needs AVX2; plain AVX only widens float lanes).
///
/// Bit-safety is trivial here: integer arithmetic is exact, so every
/// compilation produces identical bits by construction.
///
/// # Safety
///
/// `#[target_feature]` makes this fn unsafe to call: the caller must prove
/// the CPU supports AVX2 first. The only call site gates on
/// [`avx2_available`] (`is_x86_feature_detected!("avx2")`); executing it on
/// a non-AVX2 CPU would be an illegal-instruction fault, not a wrong
/// answer.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn microkernel_avx2(
    c: &mut [i32],
    ldc: usize,
    a_panel: &[i8],
    b_panel: &[i8],
    mr_eff: usize,
    nr_eff: usize,
) {
    microkernel_body(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

/// Whether the AVX2 compilation of the microkernel can be used.
#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Invokes the fastest available microkernel compilation.
#[inline]
fn microkernel(
    use_avx2: bool,
    c: &mut [i32],
    ldc: usize,
    a_panel: &[i8],
    b_panel: &[i8],
    mr_eff: usize,
    nr_eff: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` is only true when `is_x86_feature_detected!`
        // confirmed AVX2 support at runtime.
        unsafe { microkernel_avx2(c, ldc, a_panel, b_panel, mr_eff, nr_eff) };
        return;
    }
    let _ = use_avx2;
    microkernel_portable(c, ldc, a_panel, b_panel, mr_eff, nr_eff);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive sequential triple loop — the packed integer kernel must match
    /// it exactly (integer arithmetic leaves no room for anything else).
    fn sequential_gemm_i8(c: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[p * n + j] as i32;
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn fill_i8(len: usize, seed: u32) -> Vec<i8> {
        // Small deterministic pseudo-random values spanning the full i8
        // range, including the extremes bit errors produce.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (x % 256) as u8 as i8
            })
            .collect()
    }

    #[test]
    fn matches_sequential_reduction_exactly() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (MC + 5, 2 * KC + 1, NC + 9),
            (3, 700, 2),
        ] {
            let a = fill_i8(m * k, 1);
            let b = fill_i8(k * n, 2);
            let mut c: Vec<i32> = (0..m * n).map(|i| i as i32 % 17 - 8).collect();
            let mut c_ref = c.clone();
            gemm_i8(
                &mut c,
                n,
                GemmOperandI8::row_major(&a, k),
                GemmOperandI8::row_major(&b, n),
                m,
                k,
                n,
            );
            sequential_gemm_i8(&mut c_ref, &a, &b, m, k, n);
            assert_eq!(c, c_ref, "diverged at m={m} k={k} n={n}");
        }
    }

    #[test]
    fn transposed_operands_match_explicit_transpose() {
        let (m, k, n) = (7, 13, 9);
        let a = fill_i8(m * k, 4); // stored [m, k]
        let b = fill_i8(k * n, 5); // stored [k, n]
        let at: Vec<i8> = {
            // stored [k, m]
            let mut t = vec![0; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        };
        let mut c1 = vec![0; m * n];
        let mut c2 = vec![0; m * n];
        gemm_i8(
            &mut c1,
            n,
            GemmOperandI8::row_major(&a, k),
            GemmOperandI8::row_major(&b, n),
            m,
            k,
            n,
        );
        gemm_i8(
            &mut c2,
            n,
            GemmOperandI8::transposed(&at, m),
            GemmOperandI8::row_major(&b, n),
            m,
            k,
            n,
        );
        assert_eq!(c1, c2, "pack-time transposition must be exact");
    }

    #[test]
    fn strided_output_leaves_gaps_untouched() {
        let (m, k, n, ldc) = (3, 5, 4, 10);
        let a = fill_i8(m * k, 6);
        let b = fill_i8(k * n, 7);
        let mut c = vec![9; m * ldc];
        gemm_i8(
            &mut c,
            ldc,
            GemmOperandI8::row_major(&a, k),
            GemmOperandI8::row_major(&b, n),
            m,
            k,
            n,
        );
        let mut dense = vec![9; m * n];
        sequential_gemm_i8(&mut dense, &a, &b, m, k, n);
        for i in 0..m {
            assert_eq!(&c[i * ldc..i * ldc + n], &dense[i * n..(i + 1) * n]);
            assert!(c[i * ldc + n..(i + 1) * ldc].iter().all(|&v| v == 9), "gap clobbered");
        }
    }

    #[test]
    fn extreme_values_do_not_overflow_the_accumulator() {
        // k = 2 * KC of -128 * -128 products: 16384 * 512 = 2^23, well
        // inside i32 — and exercises the saturating corner i8 is worst at.
        let (m, k, n) = (MR + 1, 2 * KC, NR + 1);
        let a = vec![-128i8; m * k];
        let b = vec![-128i8; k * n];
        let mut c = vec![0; m * n];
        gemm_i8(
            &mut c,
            n,
            GemmOperandI8::row_major(&a, k),
            GemmOperandI8::row_major(&b, n),
            m,
            k,
            n,
        );
        assert!(c.iter().all(|&v| v == 16384 * 2 * KC as i32));
    }

    #[test]
    fn degenerate_dims_are_no_ops_or_zero_adds() {
        let mut c = vec![1; 6];
        gemm_i8(
            &mut c,
            3,
            GemmOperandI8::row_major(&[], 0),
            GemmOperandI8::row_major(&[], 3),
            2,
            0,
            3,
        );
        assert_eq!(c, vec![1; 6], "k == 0 must leave C unchanged (accumulate semantics)");
        gemm_i8(
            &mut c,
            3,
            GemmOperandI8::row_major(&[], 5),
            GemmOperandI8::row_major(&[], 3),
            0,
            5,
            3,
        );
        assert_eq!(c, vec![1; 6], "m == 0 must be a no-op");
        let a = fill_i8(10, 8);
        gemm_i8(
            &mut c,
            0,
            GemmOperandI8::row_major(&a, 5),
            GemmOperandI8::row_major(&[], 0),
            2,
            5,
            0,
        );
        assert_eq!(c, vec![1; 6], "n == 0 must be a no-op");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_short_operands() {
        let mut c = vec![0; 4];
        let a = vec![0i8; 3]; // needs 4 for 2x2
        let b = vec![0i8; 4];
        gemm_i8(
            &mut c,
            2,
            GemmOperandI8::row_major(&a, 2),
            GemmOperandI8::row_major(&b, 2),
            2,
            2,
            2,
        );
    }
}
