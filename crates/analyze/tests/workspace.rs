//! Integration tests: the analyzer against (a) the real workspace, which
//! must be clean, and (b) the seeded fixtures, where every rule must fire.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use bitrobust_analyze::context::FileContext;
use bitrobust_analyze::rules::{analyze_file, Finding, RULES};
use bitrobust_analyze::{analyze_workspace, baseline};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// The acceptance gate: the committed tree carries zero non-baselined
/// findings, so `--deny` in CI is green by construction.
#[test]
fn real_workspace_is_clean_under_deny() {
    let root = workspace_root();
    let baseline_path = root.join("ANALYZE_baseline.txt");
    let (entries, errors) = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(_) => (Vec::new(), Vec::new()),
    };
    let report = analyze_workspace(&root, &entries, errors).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found only {} files", report.files_scanned);
    assert_eq!(
        report.violations(),
        0,
        "the committed workspace must be analyze-clean:\n{}",
        report.render_text()
    );
}

fn scan_fixture(fixture: &str, virtual_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    analyze_file(&FileContext::new(virtual_path.to_string(), &src)).0
}

fn rules_hit(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unsafety_fixture_trips_the_unsafety_rules() {
    let findings = scan_fixture("unsafety.rs", "crates/nn/src/fixture.rs");
    let hit = rules_hit(&findings);
    for rule in ["safety-comment", "safety-doc", "debug-assert-unsafe"] {
        assert!(hit.contains(rule), "expected {rule} in {findings:?}");
    }
}

#[test]
fn determinism_fixture_trips_all_four_det_rules() {
    let findings = scan_fixture("determinism.rs", "crates/nn/src/fixture.rs");
    let hit = rules_hit(&findings);
    for rule in ["det-collections", "det-wall-clock", "det-rng", "det-thread-count"] {
        assert!(hit.contains(rule), "expected {rule} in {findings:?}");
    }
}

#[test]
fn determinism_fixture_is_exempt_outside_numeric_crates() {
    let findings = scan_fixture("determinism.rs", "crates/serve/src/fixture.rs");
    assert!(
        rules_hit(&findings).iter().all(|r| !r.starts_with("det-")),
        "serve is allowed clocks and thread counts, got {findings:?}"
    );
}

#[test]
fn casts_fixture_trips_cast_boundary_but_spares_usize() {
    let findings = scan_fixture("casts.rs", "crates/quant/src/fixture.rs");
    let casts: Vec<_> = findings.iter().filter(|f| f.rule == "cast-boundary").collect();
    // `as i8`, `q as f32`, `acc as f32`, `idx as f32` — `as usize` is exempt.
    assert_eq!(casts.len(), 4, "{findings:?}");
    // The same file outside the boundary is not policed at all.
    let outside = scan_fixture("casts.rs", "crates/tensor/src/fixture.rs");
    assert!(rules_hit(&outside).is_empty(), "{outside:?}");
}

#[test]
fn api_fixture_trips_deprecated_note_and_suppression_hygiene() {
    let findings = scan_fixture("api.rs", "crates/core/src/fixture.rs");
    let deprecated = findings.iter().filter(|f| f.rule == "deprecated-note").count();
    assert_eq!(deprecated, 2, "bare and since-only #[deprecated]: {findings:?}");
    let hygiene = findings.iter().filter(|f| f.rule == "suppression-hygiene").count();
    assert_eq!(hygiene, 3, "unknown rule, missing reason, unused allow: {findings:?}");
}

#[test]
fn clean_fixture_produces_zero_findings_under_the_strictest_path() {
    let findings = scan_fixture("clean.rs", "crates/nn/src/quantized.rs");
    assert!(findings.is_empty(), "negative control must stay clean: {findings:?}");
}

/// Every advertised rule is exercised by at least one fixture, so a rule
/// regressing to never-fires cannot go unnoticed.
#[test]
fn fixtures_cover_every_rule_in_the_catalogue() {
    let mut covered = BTreeSet::new();
    covered.extend(rules_hit(&scan_fixture("unsafety.rs", "crates/nn/src/fixture.rs")));
    covered.extend(rules_hit(&scan_fixture("determinism.rs", "crates/nn/src/fixture.rs")));
    covered.extend(rules_hit(&scan_fixture("casts.rs", "crates/quant/src/fixture.rs")));
    covered.extend(rules_hit(&scan_fixture("api.rs", "crates/core/src/fixture.rs")));
    for rule in RULES {
        assert!(covered.contains(rule.id), "no fixture exercises `{}`", rule.id);
    }
    assert!(RULES.len() >= 6, "the catalogue must stay substantive");
}
