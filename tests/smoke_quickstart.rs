//! Smoke test mirroring `examples/quickstart.rs` end-to-end at reduced
//! scale: train the quickstart's conv net (SimpleNet + GroupNorm) with
//! RandBET on a small synthetic dataset, then check the paper's headline
//! claim — under random bit errors the RandBET model beats a baseline
//! trained without injection, while giving up little clean accuracy.

use bitrobust_core::{
    build, robust_eval_uniform, train, ArchKind, NormKind, RandBetVariant, TrainConfig,
    TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

const EPOCHS: usize = 4;
const TRAIN_SUBSET: usize = 800;
const EVAL_RATE: f64 = 0.08;
const N_CHIPS: usize = 6;

fn quickstart_datasets() -> (Dataset, Dataset) {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(0);
    // The example trains on the full split for 10 epochs; the smoke test
    // subsets it to stay fast while keeping the claim measurable.
    let subset: Vec<usize> = (0..TRAIN_SUBSET).collect();
    let (x, y) = train_ds.batch(&subset);
    (Dataset::new("train", x, y, train_ds.n_classes()), test_ds)
}

/// The quickstart pipeline: build SimpleNet, train with `method`, return
/// the model and its clean test error.
fn quickstart_train(method: TrainMethod) -> (Model, f32, Dataset) {
    let (train_ds, test_ds) = quickstart_datasets();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), method);
    cfg.epochs = EPOCHS;
    cfg.augment = AugmentConfig::mnist();
    cfg.warmup_loss = 100.0; // short schedule: inject from the first step
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    (model, report.clean_error, test_ds)
}

#[test]
fn quickstart_randbet_beats_uninjected_baseline() {
    let scheme = QuantScheme::rquant(8);

    let (baseline, baseline_err, test_ds) = quickstart_train(TrainMethod::Normal);
    let (randbet, randbet_err, _) = quickstart_train(TrainMethod::RandBet {
        wmax: Some(0.2),
        p: EVAL_RATE,
        variant: RandBetVariant::Standard,
    });

    // Both models must actually learn the task...
    assert!(baseline_err < 0.25, "baseline failed to train: clean error {baseline_err}");
    // ...and RandBET's clean-accuracy cost must stay moderate.
    assert!(randbet_err < baseline_err + 0.15, "RandBET clean error too high: {randbet_err}");

    // The headline claim: at the trained error rate, the RandBET model's
    // robust error is clearly below the uninjected baseline's.
    let r_base = robust_eval_uniform(
        &baseline,
        scheme,
        &test_ds,
        EVAL_RATE,
        N_CHIPS,
        42,
        EVAL_BATCH,
        Mode::Eval,
    );
    let r_randbet = robust_eval_uniform(
        &randbet,
        scheme,
        &test_ds,
        EVAL_RATE,
        N_CHIPS,
        42,
        EVAL_BATCH,
        Mode::Eval,
    );
    assert!(
        r_randbet.mean_error < r_base.mean_error - 0.05,
        "RandBET must beat the uninjected baseline at p={EVAL_RATE}: \
         RErr {:.4} (RandBET) vs {:.4} (baseline)",
        r_randbet.mean_error,
        r_base.mean_error
    );

    // Robust error can exceed clean error but must stay a real error rate.
    assert!(r_randbet.mean_error >= randbet_err - 0.05);
    assert!(r_randbet.mean_error <= 1.0 && r_base.mean_error <= 1.0);
}
