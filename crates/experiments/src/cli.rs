//! Minimal command-line options shared by all experiment binaries.

/// Options parsed from the command line.
///
/// Every experiment binary accepts:
///
/// * `--quick` — fewer epochs and chips (smoke-test mode);
/// * `--chips N` — number of random chips for RErr averaging;
/// * `--seed S` — base RNG seed;
/// * `--no-cache` — ignore the model zoo cache and retrain.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Reduced-effort mode for smoke tests.
    pub quick: bool,
    /// Number of random chips per RErr estimate.
    pub chips: usize,
    /// Base seed.
    pub seed: u64,
    /// Skip the on-disk model cache.
    pub no_cache: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self { quick: false, chips: 20, seed: 0, no_cache: false }
    }
}

impl ExpOptions {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.chips = opts.chips.min(5);
                }
                "--no-cache" => opts.no_cache = true,
                "--chips" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.chips = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Scales an epoch budget down in quick mode.
    pub fn epochs(&self, full: usize) -> usize {
        if self.quick {
            (full / 3).max(2)
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExpOptions::default();
        assert!(!o.quick);
        assert_eq!(o.chips, 20);
    }

    #[test]
    fn quick_reduces_epochs() {
        let mut o = ExpOptions::default();
        assert_eq!(o.epochs(30), 30);
        o.quick = true;
        assert_eq!(o.epochs(30), 10);
        assert_eq!(o.epochs(3), 2);
    }
}
