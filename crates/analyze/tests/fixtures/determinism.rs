// Fixture: deliberately violates the determinism rules. Never compiled —
// only lexed by the integration test (scanned as `crates/nn/src/fixture.rs`).

use std::collections::HashMap;

pub fn machine_dependent(xs: &[f32]) -> f32 {
    let mut seen: HashMap<u32, f32> = HashMap::new();
    let started = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk = xs.len() / threads;
    for (i, &x) in xs.iter().enumerate() {
        seen.insert(i as u32 / chunk as u32, x);
    }
    let _ = (started, &mut rng);
    seen.values().sum()
}
