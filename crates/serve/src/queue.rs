//! The bounded request queue: admission control on the way in, wave
//! collection on the way out.
//!
//! Producers [`push`](BoundedQueue::push) and are rejected (shed) when the
//! queue is at capacity or closed — shed items are counted, never silently
//! dropped. The single consumer (the engine thread) blocks in
//! [`wait_wave`](BoundedQueue::wait_wave) until traffic arrives, then
//! holds the wave open until either `max_batch` requests are pending or
//! `max_delay` has passed since the **oldest** pending request was
//! enqueued — the dynamic micro-batching window. Closing the queue wakes
//! the consumer immediately; the final waves drain every remaining item
//! so shutdown serves, rather than discards, the backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a [`BoundedQueue::push`] was rejected. Either way the item was
/// shed: it never entered the queue, and the shed counter was bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `capacity` items.
    Full,
    /// [`BoundedQueue::close`] was called.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<(Instant, T)>,
    shed: u64,
    closed: bool,
}

/// A bounded MPSC queue with shed accounting and deadline-based wave
/// collection. See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (every push would shed).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), shed: 0, closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, or sheds it (dropping it and counting the shed)
    /// when the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            state.shed += 1;
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            state.shed += 1;
            return Err(PushError::Full);
        }
        state.items.push_back((Instant::now(), item));
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is pending (or the queue is closed),
    /// then keeps the wave open until `max_batch` items are pending or
    /// `max_delay` has elapsed since the oldest pending item was pushed —
    /// whichever comes first — and drains **all** pending items.
    ///
    /// Returns `None` once the queue is closed *and* empty; a close with
    /// items still pending yields them as a final wave first, so no
    /// admitted item is ever lost.
    pub fn wait_wave(&self, max_batch: usize, max_delay: Duration) -> Option<Vec<T>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock poisoned");
        }
        let deadline = state.items.front().expect("non-empty queue").0 + max_delay;
        while !state.closed && state.items.len() < max_batch {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (next, timeout) =
                self.available.wait_timeout(state, remaining).expect("queue lock poisoned");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        Some(state.items.drain(..).map(|(_, item)| item).collect())
    }

    /// Closes the queue: subsequent pushes shed with [`PushError::Closed`]
    /// and the consumer drains whatever is left, then sees `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }

    /// Items shed so far (full- and closed-queue rejections).
    pub fn shed_count(&self) -> u64 {
        self.state.lock().expect("queue lock poisoned").shed
    }

    /// Pending (admitted, not yet drained) items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_exactly_beyond_capacity() {
        let queue = BoundedQueue::new(3);
        for i in 0..3 {
            assert_eq!(queue.push(i), Ok(()));
        }
        assert_eq!(queue.push(3), Err(PushError::Full));
        assert_eq!(queue.push(4), Err(PushError::Full));
        assert_eq!(queue.shed_count(), 2);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn wave_drains_fifo_and_close_ends_the_stream() {
        let queue = BoundedQueue::new(8);
        for i in 0..5 {
            queue.push(i).unwrap();
        }
        // max_batch already exceeded → no deadline wait.
        let wave = queue.wait_wave(4, Duration::from_secs(60)).unwrap();
        assert_eq!(wave, vec![0, 1, 2, 3, 4], "drains everything pending, in order");
        queue.close();
        assert_eq!(queue.push(9), Err(PushError::Closed));
        assert_eq!(queue.wait_wave(4, Duration::from_secs(60)), None);
    }

    #[test]
    fn close_with_backlog_yields_a_final_wave() {
        let queue = BoundedQueue::new(8);
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        queue.close();
        assert_eq!(queue.wait_wave(64, Duration::from_secs(60)), Some(vec![1, 2]));
        assert_eq!(queue.wait_wave(64, Duration::from_secs(60)), None);
    }

    #[test]
    fn deadline_releases_a_partial_wave() {
        let queue = BoundedQueue::new(8);
        let start = Instant::now();
        queue.push(7).unwrap();
        let wave = queue.wait_wave(64, Duration::from_millis(20)).unwrap();
        assert_eq!(wave, vec![7]);
        assert!(start.elapsed() >= Duration::from_millis(10), "must have waited for the window");
    }
}
