//! # bitrobust-data
//!
//! Deterministic synthetic image-classification datasets standing in for
//! MNIST / CIFAR10 / CIFAR100 in the Rust reproduction of *"Bit Error
//! Robustness for Energy-Efficient DNN Accelerators"* (Stutz et al.,
//! MLSys 2021).
//!
//! The paper's robustness techniques operate on weights; the datasets
//! provide three difficulty levels against which clean error and robust
//! error are traded off. [`SynthDataset`] generates class-prototype tasks
//! reproducing that ordering (see `DESIGN.md` for the substitution
//! rationale), [`Dataset`] holds the data, and [`augment_batch`] applies
//! the crop/flip/cutout recipe used during training.
//!
//! # Examples
//!
//! ```
//! use bitrobust_data::SynthDataset;
//!
//! let (train, test) = SynthDataset::Cifar10.generate(42);
//! assert_eq!(train.n_classes(), 10);
//! assert_eq!(train.image_shape(), [3, 16, 16]);
//! assert!(test.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod dataset;
mod synth;

pub use augment::{augment_batch, AugmentConfig};
pub use dataset::Dataset;
pub use synth::{SynthDataset, SynthSpec};
