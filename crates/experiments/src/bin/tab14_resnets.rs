//! **Tab. 14 / App. G.7** — Clipping and RandBET work on ResNets too.

use bitrobust_core::{ArchKind, RandBetVariant, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, rerr_sweep, zoo_model, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [5e-3, 1.5e-2];

    let mut header = vec!["model (resnet-mini)".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let methods: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT", TrainMethod::Normal),
        ("CLIPPING 0.1", TrainMethod::Clipping { wmax: 0.1 }),
        (
            "RANDBET 0.1 p=1%",
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
    ];
    for (name, method) in methods {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.arch = ArchKind::ResNetMini;
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let sweep = rerr_sweep(&model, scheme, &test_ds, &ps, opts.chips);
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 14 (CIFAR10 stand-in, ResNet with GroupNorm):\n{}", table.render());
    println!("Expected shape (paper): same ordering as SimpleNet — RANDBET < CLIPPING < RQUANT.");
}
