//! # bitrobust-obs — zero-cost-when-off observability
//!
//! A dependency-free (std-only) tracing/metrics layer sitting *below*
//! every other crate in the workspace — the tensor pool itself is
//! instrumented — providing three primitives:
//!
//! - **Spans**: [`span!`] pushes an RAII guard whose `Drop` records the
//!   elapsed nanoseconds into a log2 histogram and, at `trace` level,
//!   emits a Chrome `trace_event` record.
//! - **Counters**: [`counter_add`] — monotonic, summed across threads.
//! - **Gauges / histograms**: [`gauge_set`] (last-write-wins, stamped
//!   with a global sequence number) and [`record`] (log2 buckets).
//!
//! ## Levels and configuration
//!
//! The process-wide level comes from `BITROBUST_OBS`:
//!
//! | value          | effect                                            |
//! |----------------|---------------------------------------------------|
//! | `off` (default)| every call is a relaxed load + predictable branch |
//! | `counters`     | counters, gauges, and span-duration histograms    |
//! | `trace`        | all of the above plus Chrome trace events         |
//! | `trace:<path>` | `trace`, writing the Chrome trace to `<path>`     |
//!
//! `BITROBUST_OBS_REPORT` / `BITROBUST_OBS_TRACE` override the output
//! paths (defaults: `OBS_report.json`, `OBS_trace.json` in the working
//! directory). Programs may instead call [`init`] explicitly — the
//! `experiments` binaries and `serve_load` map an `--obs <spec>` flag
//! onto [`ObsConfig::parse`].
//!
//! ## Bit-neutrality contract
//!
//! Observability reads clocks but **never feeds results**: no value
//! returned by this crate may influence numeric computation. The golden
//! tests and the determinism thread-matrix run with `BITROBUST_OBS=trace`
//! and must stay byte-identical to obs-off runs.
//!
//! ## Determinism of the report itself
//!
//! Per-thread states merge through commutative operations only (sums,
//! element-wise histogram adds, max-sequence gauges) into a [`Snapshot`]
//! keyed by `BTreeMap`, so `OBS_report.json` does not depend on thread
//! scheduling — only the *values* (durations) differ between runs.
//! Trace events sort by `(start, tid, name)` before serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod snapshot;
mod trace;

pub use hist::{bucket_bounds, bucket_index, Hist, BUCKETS};
pub use snapshot::{Gauge, Snapshot};
pub use trace::{render_chrome_trace, write_chrome_trace, TraceEvent};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// How much the process records. Ordered: `Trace` implies `Counters`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum ObsLevel {
    /// Record nothing; every obs call is a branch on a static.
    #[default]
    Off,
    /// Counters, gauges, and span-duration histograms.
    Counters,
    /// Everything, plus Chrome `trace_event` records per span.
    Trace,
}

/// Process-wide observability configuration.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObsConfig {
    /// Recording level.
    pub level: ObsLevel,
    /// Chrome trace output path (`OBS_trace.json` when `None`).
    pub trace_path: Option<PathBuf>,
    /// Report output path (`OBS_report.json` when `None`).
    pub report_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Everything disabled.
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// Parse an `--obs` / `BITROBUST_OBS` spec:
    /// `off`, `counters`, `trace`, or `trace:<path>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = ObsConfig::off();
        match spec {
            "off" | "" => {}
            "counters" => cfg.level = ObsLevel::Counters,
            "trace" => cfg.level = ObsLevel::Trace,
            _ => match spec.split_once(':') {
                Some(("trace", path)) if !path.is_empty() => {
                    cfg.level = ObsLevel::Trace;
                    cfg.trace_path = Some(PathBuf::from(path));
                }
                _ => {
                    return Err(format!(
                        "bad obs spec {spec:?}: expected off|counters|trace|trace:<path>"
                    ));
                }
            },
        }
        Ok(cfg)
    }

    /// Fill *unset* output paths from `BITROBUST_OBS_TRACE` /
    /// `BITROBUST_OBS_REPORT`. A path already present (e.g. from a
    /// `trace:<path>` spec) wins over the environment, so an `--obs`
    /// flag and the env overrides compose instead of clobbering.
    pub fn with_env_paths(mut self) -> Self {
        if self.trace_path.is_none() {
            if let Ok(p) = std::env::var("BITROBUST_OBS_TRACE") {
                self.trace_path = Some(PathBuf::from(p));
            }
        }
        if self.report_path.is_none() {
            if let Ok(p) = std::env::var("BITROBUST_OBS_REPORT") {
                self.report_path = Some(PathBuf::from(p));
            }
        }
        self
    }

    /// Build from `BITROBUST_OBS` (+ `BITROBUST_OBS_TRACE` /
    /// `BITROBUST_OBS_REPORT` path overrides). Unset means off.
    pub fn from_env() -> Result<Self, String> {
        Ok(Self::parse(&std::env::var("BITROBUST_OBS").unwrap_or_default())?.with_env_paths())
    }
}

const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

fn config_slot() -> &'static Mutex<ObsConfig> {
    static CONFIG: OnceLock<Mutex<ObsConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(ObsConfig::off()))
}

/// Install a configuration, replacing whatever the environment set.
/// Safe to call at any time; data already recorded is kept.
pub fn init(config: &ObsConfig) {
    *lock(config_slot()) = config.clone();
    LEVEL.store(config.level as u8, Ordering::Relaxed);
}

#[cold]
fn init_lazy() -> u8 {
    let cfg = ObsConfig::from_env().unwrap_or_else(|e| {
        eprintln!("bitrobust-obs: {e}; observability stays off");
        ObsConfig::off()
    });
    init(&cfg);
    cfg.level as u8
}

#[inline]
fn level_u8() -> u8 {
    // First call per process resolves BITROBUST_OBS; afterwards this is
    // a relaxed load and a predictable branch — the "zero-cost when
    // off" contract the gemm bench gates in CI.
    let l = LEVEL.load(Ordering::Relaxed);
    if l == LEVEL_UNINIT {
        init_lazy()
    } else {
        l
    }
}

/// The active level.
pub fn level() -> ObsLevel {
    match level_u8() {
        x if x == ObsLevel::Counters as u8 => ObsLevel::Counters,
        x if x == ObsLevel::Trace as u8 => ObsLevel::Trace,
        _ => ObsLevel::Off,
    }
}

/// True when anything at all is being recorded.
#[inline]
pub fn enabled() -> bool {
    let l = level_u8();
    l != ObsLevel::Off as u8 && l != LEVEL_UNINIT
}

/// True when Chrome trace events are being collected.
#[inline]
pub fn trace_enabled() -> bool {
    level_u8() == ObsLevel::Trace as u8
}

// ---------------------------------------------------------------------------
// Per-thread state and the global registry.

#[derive(Default)]
struct LocalState {
    tid: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Hist>,
    events: Vec<TraceEvent>,
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<LocalState>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<LocalState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn cumulative() -> &'static Mutex<Snapshot> {
    static CUMULATIVE: OnceLock<Mutex<Snapshot>> = OnceLock::new();
    CUMULATIVE.get_or_init(|| Mutex::new(Snapshot::default()))
}

/// Monotonic origin for trace timestamps.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Recover from poisoning: obs state is plain data, and a panicking
/// instrumented thread must not take observability down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    static LOCAL: Arc<Mutex<LocalState>> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        let state = Arc::new(Mutex::new(LocalState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ..LocalState::default()
        }));
        lock(registry()).push(Arc::clone(&state));
        state
    };
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn with_local(f: impl FnOnce(&mut LocalState)) {
    // try_with: silently drop samples arriving during thread teardown.
    let _ = LOCAL.try_with(|state| f(&mut lock(state)));
}

// ---------------------------------------------------------------------------
// Recording API.

/// Add to a named monotonic counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| *l.counters.entry(name).or_insert(0) += delta);
}

/// Set a named gauge to its current value (last write across all
/// threads wins, ordered by a global sequence number).
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    static GAUGE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    with_local(|l| {
        l.gauges.insert(name, Gauge { seq, value });
    });
}

/// Record one sample into a named log2 histogram.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| l.hists.entry(name).or_default().record(value));
}

/// Cap on buffered Chrome trace events; past it, spans still feed their
/// histograms but drop the event and bump `obs.trace.dropped`.
const TRACE_CAP: usize = 1 << 20;
static TRACE_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// RAII span guard: measures from construction to drop. Create via
/// [`span()`] or the [`span!`] macro.
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span. When obs is off this is a branch and returns an inert
/// guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    let _ = SPAN_STACK.try_with(|s| s.borrow_mut().push(name));
    SpanGuard { name, start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur = start.elapsed();
        // Pop happens during unwinding too: guards drop in LIFO order,
        // so the stack stays balanced even when a panic crosses spans.
        let _ = SPAN_STACK.try_with(|s| {
            s.borrow_mut().pop();
        });
        let trace = trace_enabled();
        let ts_ns = start.saturating_duration_since(origin()).as_nanos() as u64;
        let dur_ns = dur.as_nanos() as u64;
        let name = self.name;
        with_local(|l| {
            l.hists.entry(name).or_default().record(dur_ns);
            if trace {
                if TRACE_TOTAL.fetch_add(1, Ordering::Relaxed) < TRACE_CAP {
                    l.events.push(TraceEvent { name, ts_ns, dur_ns, tid: l.tid });
                } else {
                    *l.counters.entry("obs.trace.dropped").or_insert(0) += 1;
                }
            }
        });
    }
}

/// Open a named span for the rest of the enclosing scope:
/// `span!("gemm.pack_b");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Current nesting depth of this thread's span stack (test hook).
pub fn span_depth() -> usize {
    SPAN_STACK.try_with(|s| s.borrow().len()).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Aggregation and export.

/// Drain every thread's local state into the cumulative aggregate and
/// return a copy. Monotonic: each call reflects everything recorded so
/// far, regardless of which threads have exited.
pub fn snapshot() -> Snapshot {
    let mut cum = lock(cumulative());
    for state in lock(registry()).iter() {
        let mut l = lock(state);
        let part = Snapshot {
            counters: std::mem::take(&mut l.counters),
            gauges: std::mem::take(&mut l.gauges),
            hists: std::mem::take(&mut l.hists),
        };
        cum.merge(&part);
    }
    cum.clone()
}

/// Drain all buffered Chrome trace events, sorted by
/// `(start, tid, name)` so serialization order is deterministic.
pub fn take_trace() -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for state in lock(registry()).iter() {
        events.append(&mut lock(state).events);
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid, e.name));
    events
}

/// Write the configured outputs (report always, Chrome trace at `trace`
/// level) and return the paths written. A no-op at `Off`.
pub fn finish() -> io::Result<Vec<PathBuf>> {
    let cfg = lock(config_slot()).clone();
    if !enabled() {
        return Ok(Vec::new());
    }
    let mut written = Vec::new();
    let report = cfg.report_path.unwrap_or_else(|| PathBuf::from("OBS_report.json"));
    snapshot().write_report(&report)?;
    written.push(report);
    if cfg.level == ObsLevel::Trace {
        let path = cfg.trace_path.unwrap_or_else(|| PathBuf::from("OBS_trace.json"));
        write_trace_file(&path)?;
        written.push(path);
    }
    Ok(written)
}

fn write_trace_file(path: &Path) -> io::Result<()> {
    write_chrome_trace(path, &take_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_specs() {
        assert_eq!(ObsConfig::parse("off").unwrap().level, ObsLevel::Off);
        assert_eq!(ObsConfig::parse("").unwrap().level, ObsLevel::Off);
        assert_eq!(ObsConfig::parse("counters").unwrap().level, ObsLevel::Counters);
        assert_eq!(ObsConfig::parse("trace").unwrap().level, ObsLevel::Trace);
        let cfg = ObsConfig::parse("trace:/tmp/t.json").unwrap();
        assert_eq!(cfg.level, ObsLevel::Trace);
        assert_eq!(cfg.trace_path.as_deref(), Some(Path::new("/tmp/t.json")));
        assert!(ObsConfig::parse("verbose").is_err());
        assert!(ObsConfig::parse("trace:").is_err());
    }

    #[test]
    fn off_guards_are_inert() {
        init(&ObsConfig::off());
        let depth = span_depth();
        let _g = span("inert");
        assert_eq!(span_depth(), depth, "off-level span must not touch the stack");
    }
}
