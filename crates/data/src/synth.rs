//! Deterministic synthetic stand-ins for MNIST / CIFAR10 / CIFAR100.
//!
//! The reproduced paper's techniques (robust quantization, weight clipping,
//! random bit error training) act on *weights*; the datasets' role in the
//! evaluation is to provide three difficulty levels (MNIST ≪ CIFAR10 <
//! CIFAR100) on which clean accuracy and robust accuracy can be traded
//! off. These generators preserve that structure without requiring dataset
//! downloads: each class is a smooth random prototype field; samples are
//! prototypes under amplitude jitter, spatial shifts, optional flips,
//! smooth distractor fields, and pixel noise. CIFAR100 prototypes are drawn
//! from 10 superclass clusters, making classes mutually confusable.

use bitrobust_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;

use crate::Dataset;

/// Which synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthDataset {
    /// 1×14×14, 10 well-separated classes (stands in for MNIST).
    Mnist,
    /// 3×16×16, 10 moderately confusable classes (stands in for CIFAR10).
    Cifar10,
    /// 3×16×16, 100 clustered classes (stands in for CIFAR100).
    Cifar100,
}

/// Generation parameters for one synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SynthSpec {
    /// Image channels.
    pub channels: usize,
    /// Image height and width.
    pub size: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training examples.
    pub train: usize,
    /// Test examples.
    pub test: usize,
    /// Pixel noise standard deviation.
    pub noise: f32,
    /// Amplitude of the per-sample smooth distractor field.
    pub distractor: f32,
    /// Maximum spatial shift (pixels) applied as nuisance.
    pub max_shift: isize,
    /// Whether horizontal flips are part of the data distribution.
    pub flips: bool,
    /// Number of superclass clusters (1 = independent prototypes).
    pub clusters: usize,
    /// Prototype share drawn from the cluster center (vs class-specific).
    pub cluster_mix: f32,
}

impl SynthDataset {
    /// The generation parameters for this dataset.
    pub fn spec(self) -> SynthSpec {
        match self {
            SynthDataset::Mnist => SynthSpec {
                channels: 1,
                size: 14,
                n_classes: 10,
                train: 2000,
                test: 1000,
                noise: 0.40,
                distractor: 0.35,
                max_shift: 1,
                flips: false,
                clusters: 1,
                cluster_mix: 0.0,
            },
            SynthDataset::Cifar10 => SynthSpec {
                channels: 3,
                size: 16,
                n_classes: 10,
                train: 3000,
                test: 1000,
                noise: 0.45,
                distractor: 0.75,
                max_shift: 2,
                flips: true,
                clusters: 1,
                cluster_mix: 0.0,
            },
            SynthDataset::Cifar100 => SynthSpec {
                channels: 3,
                size: 16,
                n_classes: 100,
                train: 6000,
                test: 1500,
                noise: 0.32,
                distractor: 0.45,
                max_shift: 2,
                flips: true,
                clusters: 10,
                cluster_mix: 0.20,
            },
        }
    }

    /// Canonical name (`"synth-mnist"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            SynthDataset::Mnist => "synth-mnist",
            SynthDataset::Cifar10 => "synth-cifar10",
            SynthDataset::Cifar100 => "synth-cifar100",
        }
    }

    /// Generates the train/test pair deterministically from `seed`.
    pub fn generate(self, seed: u64) -> (Dataset, Dataset) {
        let spec = self.spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7 ^ (self as u64) << 32);

        // Class prototypes: smooth fields, optionally clustered.
        let centers: Vec<Vec<f32>> = (0..spec.clusters)
            .map(|_| smooth_field(spec.channels, spec.size, 3, 1.0, &mut rng))
            .collect();
        let prototypes: Vec<Vec<f32>> = (0..spec.n_classes)
            .map(|class| {
                let own = smooth_field(spec.channels, spec.size, 4, 1.0, &mut rng);
                if spec.clusters > 1 {
                    let center = &centers[class % spec.clusters];
                    own.iter()
                        .zip(center)
                        .map(|(o, c)| spec.cluster_mix * c + (1.0 - spec.cluster_mix) * o)
                        .collect()
                } else {
                    own
                }
            })
            .collect();

        let train = self.sample_split("train", &spec, &prototypes, spec.train, &mut rng);
        let test = self.sample_split("test", &spec, &prototypes, spec.test, &mut rng);
        (train, test)
    }

    fn sample_split(
        self,
        split: &str,
        spec: &SynthSpec,
        prototypes: &[Vec<f32>],
        n: usize,
        rng: &mut impl Rng,
    ) -> Dataset {
        let sample_len = spec.channels * spec.size * spec.size;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.n_classes; // balanced classes
            labels.push(class);
            let amplitude = 0.8 + 0.4 * rng.gen::<f32>();
            let dx = rng.gen_range(-spec.max_shift..=spec.max_shift);
            let dy = rng.gen_range(-spec.max_shift..=spec.max_shift);
            let flip = spec.flips && rng.gen::<bool>();
            let distractor = smooth_field(spec.channels, spec.size, 4, spec.distractor, rng);
            let proto = &prototypes[class];
            for c in 0..spec.channels {
                for y in 0..spec.size {
                    for x in 0..spec.size {
                        let sx = if flip { spec.size - 1 - x } else { x };
                        let py = y as isize + dy;
                        let px = sx as isize + dx;
                        let base = if (0..spec.size as isize).contains(&py)
                            && (0..spec.size as isize).contains(&px)
                        {
                            proto[(c * spec.size + py as usize) * spec.size + px as usize]
                        } else {
                            0.0
                        };
                        let d = distractor[(c * spec.size + y) * spec.size + x];
                        let noise = spec.noise * gaussian(rng);
                        data.push(amplitude * base + d + noise);
                    }
                }
            }
        }
        let images = Tensor::from_vec(vec![n, spec.channels, spec.size, spec.size], data);
        Dataset::new(format!("{}/{split}", self.name()), images, labels, spec.n_classes)
    }
}

/// A smooth random field: coarse Gaussian grid, bilinearly upsampled.
fn smooth_field(
    channels: usize,
    size: usize,
    grid: usize,
    amplitude: f32,
    rng: &mut impl Rng,
) -> Vec<f32> {
    let mut out = vec![0f32; channels * size * size];
    for c in 0..channels {
        let coarse: Vec<f32> = (0..grid * grid).map(|_| amplitude * gaussian(rng)).collect();
        for y in 0..size {
            for x in 0..size {
                // Map pixel to coarse-grid coordinates.
                let gy = y as f32 / (size - 1) as f32 * (grid - 1) as f32;
                let gx = x as f32 / (size - 1) as f32 * (grid - 1) as f32;
                let (y0, x0) = (gy.floor() as usize, gx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(grid - 1), (x0 + 1).min(grid - 1));
                let (fy, fx) = (gy - y0 as f32, gx - x0 as f32);
                let v = coarse[y0 * grid + x0] * (1.0 - fy) * (1.0 - fx)
                    + coarse[y0 * grid + x1] * (1.0 - fy) * fx
                    + coarse[y1 * grid + x0] * fy * (1.0 - fx)
                    + coarse[y1 * grid + x1] * fy * fx;
                out[(c * size + y) * size + x] = v;
            }
        }
    }
    out
}

fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let (a_train, _) = SynthDataset::Cifar10.generate(7);
        let (b_train, _) = SynthDataset::Cifar10.generate(7);
        assert_eq!(a_train.images(), b_train.images());
        assert_eq!(a_train.labels(), b_train.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = SynthDataset::Mnist.generate(1);
        let (b, _) = SynthDataset::Mnist.generate(2);
        assert_ne!(a.images(), b.images());
    }

    #[test]
    fn specs_have_expected_shapes() {
        let (train, test) = SynthDataset::Mnist.generate(0);
        assert_eq!(train.image_shape(), [1, 14, 14]);
        assert_eq!(train.len(), 2000);
        assert_eq!(test.len(), 1000);
        assert_eq!(train.n_classes(), 10);

        let (train, _) = SynthDataset::Cifar100.generate(0);
        assert_eq!(train.image_shape(), [3, 16, 16]);
        assert_eq!(train.n_classes(), 100);
    }

    #[test]
    fn classes_are_balanced() {
        let (train, _) = SynthDataset::Cifar10.generate(3);
        let mut counts = [0usize; 10];
        for &l in train.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 300));
    }

    #[test]
    fn nearest_prototype_classification_beats_chance() {
        // The class signal must be recoverable: classify test samples by
        // correlation with per-class training means.
        let (train, test) = SynthDataset::Cifar10.generate(5);
        let [c, h, w] = train.image_shape();
        let dim = c * h * w;
        let mut means = vec![vec![0f32; dim]; 10];
        let mut counts = vec![0usize; 10];
        for i in 0..train.len() {
            let label = train.labels()[i];
            counts[label] += 1;
            let sample = &train.images().data()[i * dim..(i + 1) * dim];
            for (m, &v) in means[label].iter_mut().zip(sample) {
                *m += v;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= cnt as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img = &test.images().data()[i * dim..(i + 1) * dim];
            let mut best = 0;
            let mut best_score = f32::NEG_INFINITY;
            for (k, m) in means.iter().enumerate() {
                let score: f32 = img.iter().zip(m).map(|(a, b)| a * b).sum();
                if score > best_score {
                    best_score = score;
                    best = k;
                }
            }
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.3, "nearest-mean accuracy {acc} too close to chance (0.1)");
    }

    #[test]
    fn cifar100_is_harder_than_cifar10_for_nearest_mean() {
        // Confusable clustered prototypes + 100 classes must reduce the
        // linear separability relative to cifar10.
        fn nearest_mean_acc(ds: SynthDataset, seed: u64) -> f64 {
            let (train, test) = ds.generate(seed);
            let [c, h, w] = train.image_shape();
            let dim = c * h * w;
            let k = train.n_classes();
            let mut means = vec![vec![0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for i in 0..train.len() {
                let label = train.labels()[i];
                counts[label] += 1;
                let sample = &train.images().data()[i * dim..(i + 1) * dim];
                for (m, &v) in means[label].iter_mut().zip(sample) {
                    *m += v;
                }
            }
            for (m, &cnt) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= cnt.max(1) as f32;
                }
            }
            let mut correct = 0;
            for i in 0..test.len() {
                let img = &test.images().data()[i * dim..(i + 1) * dim];
                let mut best = 0;
                let mut best_score = f32::NEG_INFINITY;
                for (kk, m) in means.iter().enumerate() {
                    let score: f32 = img.iter().zip(m).map(|(a, b)| a * b).sum();
                    if score > best_score {
                        best_score = score;
                        best = kk;
                    }
                }
                if best == test.labels()[i] {
                    correct += 1;
                }
            }
            correct as f64 / test.len() as f64
        }
        let c10 = nearest_mean_acc(SynthDataset::Cifar10, 9);
        let c100 = nearest_mean_acc(SynthDataset::Cifar100, 9);
        assert!(c100 < c10, "cifar100 ({c100}) must be harder than cifar10 ({c10})");
    }
}
