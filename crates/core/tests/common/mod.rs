//! Helpers shared between the core integration-test suites.

use bitrobust_nn::Model;

/// FNV-1a over all parameter bits: a byte-exact weights fingerprint.
///
/// Used by both the determinism thread matrix and the golden pinning
/// tests — the committed `GOLDEN_DP_WEIGHTS_HASH` is a value of this
/// function, so any change here invalidates that constant.
pub fn weights_fingerprint(model: &Model) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for t in model.param_tensors() {
        for v in t.data() {
            for byte in v.to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    hash
}
