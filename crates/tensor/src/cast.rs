//! Checked numeric conversions for the quantization boundary.
//!
//! The int8 path's correctness argument leans on every int→float
//! conversion being *exact*: an `i32` accumulator or element count maps to
//! `f32` losslessly only while its magnitude stays within f32's 24-bit
//! mantissa. A bare `as` cast silently rounds past that point and the
//! golden bit-pattern tests would drift on larger shapes. These helpers
//! make the precondition explicit and assert it, and the `cast-boundary`
//! lint in `bitrobust-analyze` forbids bare `as` casts in boundary files
//! so conversions are forced through here (or through `From` when the
//! widening is inherently lossless).

/// Largest magnitude exactly representable in f32 at integer granularity
/// (2^24): past this, consecutive integers collide.
pub const F32_EXACT_INT_MAX: i32 = 1 << 24;

/// Converts an `i32` to `f32`, asserting the value is exactly
/// representable. Use for int8 GEMM accumulators and row/column sums,
/// whose worst case (`127 * 127 * k`) stays below 2^24 for every shape
/// this workspace runs.
#[inline]
pub fn exact_i32_to_f32(v: i32) -> f32 {
    assert!(
        v.abs() <= F32_EXACT_INT_MAX,
        "i32 -> f32 would round: |{v}| > 2^24; accumulate in i64 or rescale first"
    );
    v as f32
}

/// Converts an element count to `f32` exactly (for averages such as
/// global pooling denominators).
#[inline]
pub fn exact_count_to_f32(n: usize) -> f32 {
    assert!(n <= F32_EXACT_INT_MAX as usize, "count -> f32 would round: {n} > 2^24");
    n as f32
}

/// Quantizes one value to i8 with round-half-away-from-zero and symmetric
/// clamping to `[-127, 127]` — the repo-wide quantization rounding rule
/// (see `bitrobust-quant`). `inv_scale` is `1 / scale`, precomputed by the
/// caller so a whole tensor shares one reciprocal.
#[inline]
pub fn quantize_round_i8(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_i32_round_trips_through_f32() {
        for v in [0, 1, -1, 127 * 127, 1 << 20, F32_EXACT_INT_MAX, -F32_EXACT_INT_MAX] {
            let f = exact_i32_to_f32(v);
            assert_eq!(f as i64, i64::from(v), "{v} must convert exactly");
        }
    }

    #[test]
    #[should_panic(expected = "would round")]
    fn exact_i32_rejects_values_past_the_mantissa() {
        exact_i32_to_f32(F32_EXACT_INT_MAX + 1);
    }

    #[test]
    fn exact_count_matches_direct_conversion_in_range() {
        for n in [0usize, 1, 49, 4096, 1 << 24] {
            assert_eq!(exact_count_to_f32(n), n as f32);
        }
    }

    #[test]
    #[should_panic(expected = "would round")]
    fn exact_count_rejects_oversized_counts() {
        exact_count_to_f32((1 << 24) + 1);
    }

    #[test]
    fn quantize_round_clamps_symmetrically_and_rounds_half_away() {
        assert_eq!(quantize_round_i8(0.0, 1.0), 0);
        assert_eq!(quantize_round_i8(0.5, 1.0), 1);
        assert_eq!(quantize_round_i8(-0.5, 1.0), -1);
        assert_eq!(quantize_round_i8(1000.0, 1.0), 127);
        assert_eq!(quantize_round_i8(-1000.0, 1.0), -127, "never -128: symmetric range");
        assert_eq!(quantize_round_i8(3.0, 10.0), 30);
    }
}
