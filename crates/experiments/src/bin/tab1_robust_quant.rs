//! **Tab. 1 / Tab. 8** — Quantization choice impacts robustness.
//!
//! Trains one model per quantization scheme along the paper's lattice
//! (global → per-layer → +asymmetric → +unsigned → +rounding = RQuant) and
//! reports clean Err plus RErr across bit error rates. Also reproduces the
//! 4-bit truncation-vs-rounding contrast (trained with clipping 0.1, as in
//! the paper's footnote).

use bitrobust_core::TrainMethod;
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, rerr_sweep, zoo_model, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let ps = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1.5e-2];

    let schemes8: Vec<(&str, QuantScheme)> = vec![
        ("Eq.(1), global", QuantScheme::eq1_global(8)),
        ("Eq.(1), per-layer (NORMAL)", QuantScheme::normal(8)),
        ("+asymmetric", QuantScheme::asymmetric_signed(8)),
        ("+unsigned", QuantScheme::asymmetric_unsigned(8)),
        ("+rounding (RQUANT)", QuantScheme::rquant(8)),
    ];

    let mut header = vec!["scheme (m=8)".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.2}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (name, scheme) in &schemes8 {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(*scheme), TrainMethod::Normal);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let sweep = rerr_sweep(&model, *scheme, &test_ds, &ps, opts.chips);
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 1 / Tab. 8 (m = 8 bit):\n{}", table.render());

    // The 4-bit truncation-vs-rounding contrast.
    let schemes4: Vec<(&str, QuantScheme)> = vec![
        ("4 bit w/o rounding", QuantScheme::asymmetric_unsigned(4)),
        ("4 bit w/ rounding", QuantScheme::rquant(4)),
    ];
    let mut table = Table::new(&header_refs);
    for (name, scheme) in &schemes4 {
        let mut spec =
            ZooSpec::new(DatasetKind::Cifar10, Some(*scheme), TrainMethod::Clipping { wmax: 0.1 });
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let sweep = rerr_sweep(&model, *scheme, &test_ds, &ps, opts.chips);
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 1 (m = 4 bit, trained with CLIPPING 0.1):\n{}", table.render());
    println!(
        "Expected shape (paper): global catastrophic even at tiny p; per-layer fixes small p;"
    );
    println!("asymmetric+signed degrades at large p; unsigned + rounding (RQuant) is most robust.");
}
