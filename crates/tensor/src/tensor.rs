//! The dense row-major `f32` tensor used throughout the workspace.

use rand::Rng;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is deliberately simple: it owns its data, has no strides or
/// views, and every operation either consumes, borrows, or copies. This keeps
/// the hand-written backprop in `bitrobust-nn` easy to audit, which matters
/// more here than zero-copy slicing — the models are small and the inner
/// loops (matmul, im2col) operate on raw slices anyway.
///
/// # Examples
///
/// ```
/// use bitrobust_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{}, {}, ... ({} values)]", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; numel] }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {:?} implies {} elements but buffer holds {}",
            shape,
            numel,
            data.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel = shape.iter().product();
        Self { shape: shape.to_vec(), data: (0..numel).map(&mut f).collect() }
    }

    /// Samples i.i.d. `N(0, std^2)` entries.
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| std * gaussian(rng)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {} out of range for dim {} of size {}", i, d, s);
            flat = flat * s + i;
        }
        flat
    }

    /// Borrow of row `r` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// `self += alpha * other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero, preserving the allocation.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows() requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(cols > 0, "argmax_rows() requires at least one column");
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

impl std::ops::Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }
}

impl std::ops::Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect();
        Tensor { shape: self.shape.clone(), data }
    }
}

impl std::ops::Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "mul shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a * b).collect();
        Tensor { shape: self.shape.clone(), data }
    }
}

/// Standard normal sample via Box-Muller, using only `Rng::gen`.
fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_accessors() {
        let z = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(z.numel(), 24);
        assert_eq!(z.ndim(), 3);
        assert_eq!(z.dim(2), 4);
        assert_eq!(z.sum(), 0.0);

        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);

        let g = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(g.at(&[1, 1]), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[3, 4, 5]);
        t.set(&[2, 1, 3], 7.0);
        assert_eq!(t.at(&[2, 1, 3]), 7.0);
        assert_eq!(t.data()[2 * 20 + 5 + 3], 7.0); // strides [20, 5, 1]
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn reshape_rejects_size_change() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);

        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[9.0, 12.0, 15.0]);
        c.scale(0.5);
        assert_eq!(c.data(), &[4.5, 6.0, 7.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![2, 2], vec![-1.0, 3.0, 0.5, -2.0]);
        assert_eq!(t.sum(), 0.5);
        assert_eq!(t.mean(), 0.125);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.abs_max(), 3.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 5.0, 5.0, -1.0, -3.0, -2.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn randn_is_roughly_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|v| v * v).sum::<f32>() / 10_000.0;
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn rand_uniform_stays_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000], -0.25, 0.25, &mut rng);
        assert!(t.min() >= -0.25 && t.max() < 0.25);
    }

    #[test]
    fn map_and_fill() {
        let mut t = Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0]);
        let abs = t.map(f32::abs);
        assert_eq!(abs.data(), &[1.0, 2.0, 3.0]);
        t.map_inplace(|v| v * 2.0);
        assert_eq!(t.data(), &[2.0, -4.0, 6.0]);
        t.fill(0.0);
        assert_eq!(t.sum(), 0.0);
    }
}
