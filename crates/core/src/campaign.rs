//! Parallel fault-injection campaign engine.
//!
//! The paper's evaluation protocol measures `RErr` on ~50 simulated chips
//! per bit error rate, and the follow-up work multiplies that by rate
//! grids, voltages, and quantization schemes — so *robust evaluation*, not
//! training, dominates experiment wall-clock. This module turns those
//! nested serial loops into one data-parallel campaign, built on the
//! shared [`crate::scheduler`] executor.
//!
//! # The `Campaign` builder
//!
//! [`Campaign`] is the single entry point: configure once, then pick the
//! image source that fits:
//!
//! ```no_run
//! # use bitrobust_core::{build, ArchKind, Campaign, NormKind, QuantizedModel};
//! # use bitrobust_data::SynthDataset;
//! # use bitrobust_quant::QuantScheme;
//! # use rand::SeedableRng;
//! # let (_, test_ds) = SynthDataset::Cifar10.generate(0);
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! # let model = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng).model;
//! # let images: Vec<QuantizedModel> = vec![];
//! let results = Campaign::new(&model, &test_ds)
//!     .on_cell(|i, r| eprintln!("pattern {i}: {:.2}%", 100.0 * r.error))
//!     .run(&images);
//! ```
//!
//! * [`Campaign::run`] — evaluate pre-built quantized images;
//! * [`Campaign::run_lazy`] — build each image on demand, one wave at a
//!   time (large grids);
//! * [`Campaign::run_cells`] — lazy images that each name their own
//!   template model (the multi-model sweep fan-out);
//! * [`Campaign::serial`] — the one-batch-at-a-time reference path,
//!   bit-identical to the parallel engine (determinism suite, benchmarks).
//!
//! ## Migration from the pre-builder entry points
//!
//! The seven historical free functions are deprecated thin wrappers; the
//! builder spelling is:
//!
//! | deprecated | builder |
//! |---|---|
//! | `eval_images(t, imgs, ds, b, m)` | `Campaign::new(t, ds).batch_size(b).mode(m).run(imgs)` |
//! | `eval_images_sized(.., sizing)` | `….sizing(sizing).run(imgs)` |
//! | `eval_images_with(t, n, make, ..)` | `….run_lazy(n, make)` |
//! | `eval_images_streaming(.., cb)` | `….on_cell(cb).run(imgs)` |
//! | `eval_images_streaming_with(..)` | `….on_cell(cb).run_lazy(n, make)` |
//! | `eval_cells_streaming_with(ts, ..)` | `Campaign::multi(ts, ds)….on_cell(cb).run_cells(n, make)` |
//! | `eval_images_serial(..)` | `….serial().run(imgs)` |
//!
//! Defaults: `batch_size = EVAL_BATCH`, `mode = Mode::Eval`,
//! `sizing = ItemSizing::Adaptive`. All paths return byte-identical
//! results for the same cells, so migration never changes numbers.
//!
//! # Work-item granularity
//!
//! A campaign is a set of **quantized images** (one [`QuantizedModel`] per
//! error pattern — i.e. per grid cell) evaluated over a dataset. The unit
//! of parallel work is a `(pattern, batch)` pair: every test batch of
//! every pattern is an independent item, fanned out over the
//! `bitrobust-tensor` thread pool by [`crate::scheduler::execute`]. Fine
//! granularity keeps all cores busy even when the pattern count is small
//! (e.g. 3 profiled-chip offsets) or the dataset is large, and the pool's
//! self-scheduling balances uneven batch costs. The layers' own
//! `parallel_for` calls nest harmlessly: the pool runs nested submissions
//! inline on the claiming worker.
//!
//! When the item count far exceeds the pool parallelism (50 chips × 8
//! rates × many batches), per-batch items only add scheduling overhead;
//! [`ItemSizing::Adaptive`] (the default) merges runs of contiguous
//! batches of one pattern into larger items. Sizing never changes
//! results: items only decide *which worker computes which per-batch
//! partials* — the partials themselves and their reduction order are
//! fixed.
//!
//! The same engine also serves **clean evaluation**: a single-pattern
//! campaign whose one "replica" is the caller's model itself
//! (`N patterns = 1`, batches fan out), which is what
//! [`crate::evaluate`] runs on. And for long sweeps, [`Campaign::on_cell`]
//! processes patterns in small waves and hands each cell's result to the
//! callback, in cell order, as soon as its wave completes — progress
//! reporting without giving up byte-identical results.
//!
//! # Replica strategy
//!
//! Evaluating a pattern takes a model whose parameters hold the pattern's
//! dequantized (bit-error-perturbed) weights. Replicas are immutable once
//! built — workers evaluate batches through [`Model::infer`], which takes
//! `&self` and touches no activation caches — and [`ReplicaStrategy`]
//! picks how they are materialized:
//!
//! * [`ReplicaStrategy::SharedImage`] (the default) — patterns exist only
//!   as their **quantized integer images** (~4× smaller than an `f32`
//!   replica); each work item checks an `f32` scratch replica out of a
//!   [`crate::scheduler::ScratchReplicas`] pool, writes its pattern's
//!   image over the parameters, evaluates its batches, and parks the
//!   replica again. Live `f32` replicas are bounded by the pool
//!   parallelism instead of the pattern count, so eager campaigns run as
//!   **one wave of all cells** — no [`MAX_REPLICAS`] chunking.
//! * [`ReplicaStrategy::PerPattern`] — the historical layout: one
//!   persistent replica per wave pattern in a
//!   [`crate::scheduler::ReplicaPool`], at most [`MAX_REPLICAS`] alive at
//!   a time, larger campaigns chunked. Kept as the reference layout the
//!   determinism suite compares against.
//!
//! Both strategies are **byte-identical**: the image write overwrites
//! every parameter tensor and evaluation reads nothing else, so each
//! `(pattern, batch)` partial is computed from identical bytes either
//! way. The lazy entry points build the perturbed *quantized images* one
//! wave at a time under both strategies, so peak memory stays at one wave
//! of images for model-zoo-sized grids.
//!
//! # Determinism guarantee
//!
//! Campaign results are **bit-identical to the serial reference path**
//! ([`Campaign::serial`]) regardless of thread count or scheduling, and
//! the per-pattern `error` values are additionally bit-identical to the
//! historical quantize → inject → `write_to` → `forward` loop (they come
//! from integer miss counts; mean *confidence* may differ from the legacy
//! loop in the last ULP because f64 partial sums regroup at batch
//! boundaries). This holds because:
//!
//! * `infer` produces bit-identical outputs to an eval-mode `forward`;
//! * every batch's partial statistics are computed independently and
//!   written to that item's dedicated slot (no shared accumulators);
//! * partials are reduced serially in `(pattern, batch)` order.
//!
//! Same seeds ⇒ identical per-chip `errors`, so results stay comparable
//! across machines, thread counts, and the serial/parallel boundary.
//!
//! # Examples
//!
//! ```no_run
//! use bitrobust_core::{build, run_grid, ArchKind, CampaignGrid, NormKind, EVAL_BATCH};
//! use bitrobust_data::SynthDataset;
//! use bitrobust_nn::Mode;
//! use bitrobust_quant::QuantScheme;
//! use rand::SeedableRng;
//!
//! let (_, test_ds) = SynthDataset::Cifar10.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng).model;
//!
//! // One campaign: 2 rates x 50 chips = 100 grid cells, all parallel.
//! // Evaluation is read-only: a shared `&Model` is all the engine needs.
//! let grid = CampaignGrid::uniform(QuantScheme::rquant(8), vec![1e-3, 1e-2], 50, 1000);
//! let sweep = run_grid(&model, &grid, &test_ds, EVAL_BATCH, Mode::Eval).remove(0);
//! println!("RErr at p=1%: {:.2}%", 100.0 * sweep[1].mean_error);
//! ```

use bitrobust_biterror::{ProfiledAxis, ProfiledChip, UniformChip};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::softmax_rows;

use crate::eval::{EvalResult, RobustEval, EVAL_BATCH};
use crate::scheduler::{self, ReplicaPool, ScratchReplicas};
use crate::QuantizedModel;

pub use crate::scheduler::{ItemSizing, MAX_REPLICAS};

/// How a campaign materializes the model replicas its patterns are
/// evaluated through. See the [module docs](self) for the full contract;
/// the strategies are byte-identical and differ only in memory profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplicaStrategy {
    /// Patterns stay as shared quantized integer images; `f32` scratch
    /// replicas are checked out per work item, bounded by the pool
    /// parallelism (the default).
    #[default]
    SharedImage,
    /// One persistent `f32` replica per wave pattern, campaigns chunked at
    /// [`MAX_REPLICAS`] (the historical layout).
    PerPattern,
}

/// Per-`(pattern, batch)` partial statistics.
struct BatchPartial {
    wrong: usize,
    conf: f64,
}

/// Evaluates one test batch against one replica.
fn eval_batch(
    replica: &Model,
    dataset: &Dataset,
    start: usize,
    end: usize,
    mode: Mode,
) -> BatchPartial {
    let (x, labels) = dataset.batch_range(start, end);
    let logits = replica.infer(&x, mode);
    let probs = softmax_rows(&logits);
    let preds = probs.argmax_rows();
    let mut wrong = 0usize;
    let mut conf = 0f64;
    for (row, (&label, &pred)) in labels.iter().zip(&preds).enumerate() {
        if pred != label {
            wrong += 1;
        }
        conf += probs.row(row)[pred] as f64;
    }
    BatchPartial { wrong, conf }
}

/// Serially reduces one pattern's batch partials (in batch order) into its
/// [`EvalResult`] over an `n`-sample dataset.
fn reduce_pattern(partials: &[BatchPartial], n: usize) -> EvalResult {
    let mut wrong = 0usize;
    let mut conf = 0f64;
    for part in partials {
        wrong += part.wrong;
        conf += part.conf;
    }
    EvalResult { error: wrong as f32 / n as f32, confidence: (conf / n as f64) as f32 }
}

/// Builds the per-pattern replica: template clone + dequantized weights.
fn build_replica(template: &Model, image: &QuantizedModel) -> Model {
    let mut replica = template.clone();
    image.write_to(&mut replica);
    replica
}

/// A quantized image a campaign cell evaluates: borrowed from the caller
/// (eager runs never deep-copy) or built lazily for the current wave.
enum CellImage<'i> {
    Borrowed(&'i QuantizedModel),
    Owned(QuantizedModel),
}

impl CellImage<'_> {
    fn image(&self) -> &QuantizedModel {
        match self {
            CellImage::Borrowed(q) => q,
            CellImage::Owned(q) => q,
        }
    }
}

/// Builder-style configuration of one fault-injection campaign: the
/// single public entry point to the engine.
///
/// Construct with [`Campaign::new`] (one template model) or
/// [`Campaign::multi`] (per-cell templates, for multi-model sweeps),
/// adjust the optional knobs, then run via [`Campaign::run`],
/// [`Campaign::run_lazy`], or [`Campaign::run_cells`]. See the
/// [module docs](self) for the configuration defaults and the migration
/// table from the deprecated free functions.
///
/// All run paths — eager, lazy, streaming, serial, any
/// [`ItemSizing`] — return byte-identical results for the same cells.
pub struct Campaign<'a> {
    templates: Vec<&'a Model>,
    dataset: &'a Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
    replicas: ReplicaStrategy,
    serial: bool,
    #[allow(clippy::type_complexity)]
    on_cell: Option<Box<dyn FnMut(usize, &EvalResult) + 'a>>,
}

impl<'a> Campaign<'a> {
    /// A campaign whose every cell evaluates against `template` (which
    /// supplies the architecture and any non-parameter state such as
    /// BatchNorm running statistics; its own weights are irrelevant and it
    /// is never mutated).
    pub fn new(template: &'a Model, dataset: &'a Dataset) -> Self {
        Self::multi(&[template], dataset)
    }

    /// A campaign spanning several template models: cells built by
    /// [`Campaign::run_cells`] name their template by index into
    /// `templates` (the sweep orchestrator's multi-model fan-out).
    pub fn multi(templates: &[&'a Model], dataset: &'a Dataset) -> Self {
        Self {
            templates: templates.to_vec(),
            dataset,
            batch_size: EVAL_BATCH,
            mode: Mode::Eval,
            sizing: ItemSizing::Adaptive,
            replicas: ReplicaStrategy::default(),
            serial: false,
            on_cell: None,
        }
    }

    /// Test batch size (default [`EVAL_BATCH`]). Affects wall-clock and
    /// the f64 confidence regrouping documented in the module docs, never
    /// the per-cell error counts.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Inference mode (default [`Mode::Eval`]; [`Mode::Train`] is
    /// rejected at run time).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Work-item sizing (default [`ItemSizing::Adaptive`]). Results are
    /// byte-identical across sizings; the knob only trades scheduling
    /// overhead against load balance (and lets the determinism suite pin
    /// that claim).
    pub fn sizing(mut self, sizing: ItemSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Replica materialization strategy (default
    /// [`ReplicaStrategy::SharedImage`]). Results are byte-identical
    /// across strategies; the knob only trades `f32` replica memory
    /// against per-item image writes (and lets the determinism suite pin
    /// that claim).
    pub fn replicas(mut self, replicas: ReplicaStrategy) -> Self {
        self.replicas = replicas;
        self
    }

    /// Run the serial reference path: one pattern and one batch at a time
    /// on the calling thread, bit-identical to the parallel engine. Exists
    /// for determinism tests and the serial-vs-campaign benchmark.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Streams per-cell results: `on_cell(index, result)` fires for every
    /// cell — in index order — as soon as its wave completes, so long
    /// campaigns can report progress while running. Never changes the
    /// returned results.
    pub fn on_cell(mut self, callback: impl FnMut(usize, &EvalResult) + 'a) -> Self {
        self.on_cell = Some(Box::new(callback));
        self
    }

    /// Evaluates every pre-built quantized image over the dataset,
    /// returning one [`EvalResult`] per image, in order. Images are
    /// borrowed — no per-wave deep copies.
    ///
    /// # Panics
    ///
    /// Panics if the configured batch size is 0, the dataset is empty, or
    /// the mode is [`Mode::Train`]; or if an image's shapes do not match
    /// its template.
    pub fn run(self, images: &[QuantizedModel]) -> Vec<EvalResult> {
        self.drive(images.len(), |i| (0, CellImage::Borrowed(&images[i])), true)
    }

    /// Like [`Campaign::run`], but builds the quantized images **lazily**,
    /// one wave of patterns at a time: `make_image(i)` is called for
    /// `i in 0..n_images` as each wave starts, so at most one wave of
    /// images (plus its replicas, never more than
    /// [`MAX_REPLICAS`]) is alive at a
    /// time. Use this for large grids where materializing every perturbed
    /// weight copy up front would dominate memory.
    ///
    /// # Panics
    ///
    /// As [`Campaign::run`].
    pub fn run_lazy(
        self,
        n_images: usize,
        make_image: impl Fn(usize) -> QuantizedModel,
    ) -> Vec<EvalResult> {
        self.drive(n_images, |i| (0, CellImage::Owned(make_image(i))), false)
    }

    /// The multi-model fan-out: evaluates `n_cells` lazily built images,
    /// where `make_cell(i)` returns `(template_index, image)` and the cell
    /// is evaluated against `templates[template_index]` from
    /// [`Campaign::multi`] — so one campaign can span **several models'**
    /// cells (the sweep orchestrator's engine entry point).
    ///
    /// Each cell's result is **byte-identical** to evaluating the same
    /// image through a single-template campaign of its own model: cells
    /// never share state, so neither the cohort of cells in the fan-out
    /// nor their order affects any individual result (which is what lets a
    /// resumed sweep skip already-stored cells without perturbing the
    /// rest).
    ///
    /// # Panics
    ///
    /// Panics if a cell's template index is out of range, or on the
    /// [`Campaign::run`] conditions.
    pub fn run_cells(
        self,
        n_cells: usize,
        make_cell: impl Fn(usize) -> (usize, QuantizedModel),
    ) -> Vec<EvalResult> {
        self.drive(
            n_cells,
            |i| {
                let (template, image) = make_cell(i);
                (template, CellImage::Owned(image))
            },
            false,
        )
    }

    /// The one driver behind every run path: waves of cells through a
    /// persistent replica pool and the shared scheduler.
    fn drive<'i>(
        self,
        n_cells: usize,
        make: impl Fn(usize) -> (usize, CellImage<'i>),
        eager: bool,
    ) -> Vec<EvalResult> {
        let Campaign {
            templates,
            dataset,
            batch_size,
            mode,
            sizing,
            replicas: strategy,
            serial,
            mut on_cell,
        } = self;
        validate(dataset, batch_size, mode);
        let n = dataset.len();
        let mut results = Vec::with_capacity(n_cells);

        if serial {
            for i in 0..n_cells {
                bitrobust_obs::span!("campaign.cell");
                bitrobust_obs::counter_add("campaign.cells", 1);
                let (template, cell) = make(i);
                let replica = build_replica(templates[template], cell.image());
                let partials = scheduler::execute_serial(1, n.div_ceil(batch_size), |_, batch| {
                    let start = batch * batch_size;
                    eval_batch(&replica, dataset, start, (start + batch_size).min(n), mode)
                });
                results.push(reduce_pattern(&partials, n));
                if let Some(callback) = on_cell.as_mut() {
                    callback(i, &results[i]);
                }
            }
            return results;
        }

        // Wave sizing. Shared-image replicas are bounded by parallelism,
        // so eager silent runs take all cells in one wave; per-pattern
        // replicas chunk eager runs at MAX_REPLICAS. Lazy and streaming
        // runs use pool-sized waves under both strategies so image
        // construction stays bounded and cells land promptly. The split
        // never changes bytes — cells are independent — only the memory
        // and delivery profile.
        let n_batches = n.div_ceil(batch_size);
        let wave = if eager && on_cell.is_none() {
            match strategy {
                ReplicaStrategy::SharedImage => n_cells.max(1),
                ReplicaStrategy::PerPattern => scheduler::MAX_REPLICAS,
            }
        } else {
            scheduler::wave_size(n_batches)
        };
        let mut pool = ReplicaPool::new();
        let scratch = ScratchReplicas::new();
        let mut start = 0;
        while start < n_cells {
            let end = (start + wave).min(n_cells);
            // Per-wave timing and throughput accounting (write-only).
            bitrobust_obs::span!("campaign.wave");
            bitrobust_obs::counter_add("campaign.cells", (end - start) as u64);
            bitrobust_obs::record("campaign.wave_cells", (end - start) as u64);
            let cells: Vec<(usize, CellImage)> = (start..end).map(&make).collect();
            match strategy {
                ReplicaStrategy::PerPattern => {
                    pool.prepare(
                        cells.len(),
                        |i| {
                            let template = cells[i].0;
                            assert!(
                                template < templates.len(),
                                "cell {} template index {template} out of range",
                                start + i
                            );
                            (template, templates[template])
                        },
                        |i, replica| cells[i].1.image().write_to(replica),
                    );
                    let replicas: Vec<&Model> = (0..cells.len()).map(|i| pool.replica(i)).collect();
                    eval_replicas(&replicas, dataset, batch_size, mode, sizing, &mut results);
                }
                ReplicaStrategy::SharedImage => {
                    let partials = scheduler::execute_tracked(
                        cells.len(),
                        n_batches,
                        sizing,
                        |track| {
                            let (template, ref cell) = cells[track];
                            assert!(
                                template < templates.len(),
                                "cell {} template index {template} out of range",
                                start + track
                            );
                            let tag = start + track;
                            // The guard rides in the item context, so its
                            // drop in `done` times the whole work item
                            // (checkout through give-back) — per-cell
                            // latency for shared-image campaigns.
                            let item_span = bitrobust_obs::span("campaign.item");
                            let replica = match scratch.checkout(template) {
                                Some((last, replica)) if last == tag => replica,
                                Some((_, mut replica)) => {
                                    cell.image().write_to(&mut replica);
                                    replica
                                }
                                None => build_replica(templates[template], cell.image()),
                            };
                            (template, tag, replica, item_span)
                        },
                        |(_, _, replica, _), _, batch| {
                            let first = batch * batch_size;
                            eval_batch(replica, dataset, first, (first + batch_size).min(n), mode)
                        },
                        |_, (template, tag, replica, item_span)| {
                            scratch.give_back(template, tag, replica);
                            drop(item_span);
                        },
                    );
                    for per_pattern in partials.chunks(n_batches) {
                        results.push(reduce_pattern(per_pattern, n));
                    }
                }
            }
            if let Some(callback) = on_cell.as_mut() {
                for (i, result) in results.iter().enumerate().take(end).skip(start) {
                    callback(i, result);
                }
            }
            start = end;
        }
        results
    }
}

/// Evaluates one model directly (no quantized image, no replica build):
/// the single-pattern campaign behind [`crate::evaluate`]'s batch-parallel
/// clean-eval path.
pub(crate) fn eval_model(
    model: &Model,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    validate(dataset, batch_size, mode);
    let mut results = Vec::with_capacity(1);
    eval_replicas(&[model], dataset, batch_size, mode, ItemSizing::Adaptive, &mut results);
    results.pop().expect("single-pattern campaign yields one result")
}

fn validate(dataset: &Dataset, batch_size: usize, mode: Mode) {
    assert!(batch_size > 0, "batch size must be positive");
    mode.assert_inference();
    assert!(!dataset.is_empty(), "dataset must not be empty");
}

/// The engine core: evaluates shared model replicas over `dataset` via the
/// scheduler's `(pattern, batch)` grid, appending one [`EvalResult`] per
/// replica in order. Per-batch partials land in dedicated slots and are
/// reduced serially in `(pattern, batch)` order — results are independent
/// of thread count, scheduling, *and* work-item sizing.
fn eval_replicas(
    replicas: &[&Model],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
    results: &mut Vec<EvalResult>,
) {
    let n = dataset.len();
    let n_batches = n.div_ceil(batch_size);
    let partials = scheduler::execute(replicas.len(), n_batches, sizing, |pattern, batch| {
        let start = batch * batch_size;
        let end = (start + batch_size).min(n);
        eval_batch(replicas[pattern], dataset, start, end, mode)
    });
    for per_pattern in partials.chunks(n_batches) {
        results.push(reduce_pattern(per_pattern, n));
    }
}

/// Evaluates every quantized image over `dataset`, in parallel.
#[deprecated(note = "use `Campaign::new(template, dataset).batch_size(..).mode(..).run(images)`")]
pub fn eval_images(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    Campaign::new(template, dataset).batch_size(batch_size).mode(mode).run(images)
}

/// [`Campaign::run`] with explicit work-item [`ItemSizing`].
#[deprecated(note = "use `Campaign::new(template, dataset)…sizing(sizing).run(images)`")]
pub fn eval_images_sized(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    sizing: ItemSizing,
) -> Vec<EvalResult> {
    Campaign::new(template, dataset).batch_size(batch_size).mode(mode).sizing(sizing).run(images)
}

/// Lazily built images, one wave at a time.
#[deprecated(note = "use `Campaign::new(template, dataset)…run_lazy(n_images, make_image)`")]
pub fn eval_images_with(
    template: &Model,
    n_images: usize,
    make_image: impl Fn(usize) -> QuantizedModel,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    Campaign::new(template, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .run_lazy(n_images, make_image)
}

/// Streaming per-cell delivery over pre-built images.
#[deprecated(note = "use `Campaign::new(template, dataset)…on_cell(cb).run(images)`")]
pub fn eval_images_streaming(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    Campaign::new(template, dataset).batch_size(batch_size).mode(mode).on_cell(on_cell).run(images)
}

/// Lazy image construction *and* per-cell streaming delivery.
#[deprecated(note = "use `Campaign::new(template, dataset)…on_cell(cb).run_lazy(n, make_image)`")]
pub fn eval_images_streaming_with(
    template: &Model,
    n_images: usize,
    make_image: impl Fn(usize) -> QuantizedModel,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    Campaign::new(template, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .on_cell(on_cell)
        .run_lazy(n_images, make_image)
}

/// The multi-model streaming campaign.
#[deprecated(
    note = "use `Campaign::multi(templates, dataset)…on_cell(cb).run_cells(n, make_cell)`"
)]
pub fn eval_cells_streaming_with(
    templates: &[&Model],
    n_cells: usize,
    make_cell: impl Fn(usize) -> (usize, QuantizedModel),
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    on_cell: impl FnMut(usize, &EvalResult),
) -> Vec<EvalResult> {
    Campaign::multi(templates, dataset)
        .batch_size(batch_size)
        .mode(mode)
        .on_cell(on_cell)
        .run_cells(n_cells, make_cell)
}

/// The serial reference implementation: one pattern and one batch at a
/// time on the calling thread, bit-identical results.
#[deprecated(note = "use `Campaign::new(template, dataset)…serial().run(images)`")]
pub fn eval_images_serial(
    template: &Model,
    images: &[QuantizedModel],
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<EvalResult> {
    Campaign::new(template, dataset).batch_size(batch_size).mode(mode).serial().run(images)
}

/// A grid of fault-injection campaign cells: every combination of
/// quantization scheme, bit error rate, and simulated uniform chip.
///
/// Chip seeds are `chip_seed_base + chip_index`, matching the paper's
/// protocol of fixing the same chips across all models and rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Quantization schemes to evaluate (each gets its own quantization).
    pub schemes: Vec<QuantScheme>,
    /// Bit error rates `p`.
    pub rates: Vec<f64>,
    /// Number of simulated chips per (scheme, rate) cell.
    pub n_chips: usize,
    /// Seed of chip 0; chip `c` uses `chip_seed_base + c`.
    pub chip_seed_base: u64,
}

impl CampaignGrid {
    /// A single-scheme grid (the common rate-sweep shape).
    pub fn uniform(
        scheme: QuantScheme,
        rates: Vec<f64>,
        n_chips: usize,
        chip_seed_base: u64,
    ) -> Self {
        Self { schemes: vec![scheme], rates, n_chips, chip_seed_base }
    }

    /// Total number of grid cells (= quantized images evaluated).
    pub fn n_cells(&self) -> usize {
        self.schemes.len() * self.rates.len() * self.n_chips
    }
}

/// Identifies one cell of a [`CampaignGrid`] by its indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into [`CampaignGrid::schemes`].
    pub scheme: usize,
    /// Index into [`CampaignGrid::rates`].
    pub rate: usize,
    /// Chip index in `0..n_chips`.
    pub chip: usize,
}

/// One heterogeneous injection axis: the generalization of
/// [`CampaignGrid`]'s uniform-chips-only span to *any* family of error
/// patterns the paper evaluates. An axis is a grid of **groups** (one per
/// bit error rate) times **points per group** (simulated chips, or
/// weight-to-memory mapping offsets), and every point deterministically
/// yields one perturbed quantized image.
///
/// Axes are pure descriptions — cheap to clone, compare, and hash into
/// persistent identities ([`ChipAxis::key`]) — and are *prepared* once per
/// campaign (profiled-chip synthesis, rate→voltage resolution) before any
/// cell is built.
///
/// Uniform grids are not a separate code path: `robust_eval_uniform`,
/// [`run_grid`], and the sweep orchestrator all drive
/// [`ChipAxis::Uniform`] through [`run_axis`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChipAxis {
    /// Uniform random chips: `rates × n_chips` cells with chip `c` seeded
    /// `chip_seed_base + c` — exactly [`CampaignGrid`]'s span, same seeds,
    /// same cell order (rate-major, then chip).
    Uniform {
        /// Bit error rates `p`.
        rates: Vec<f64>,
        /// Simulated chips per rate.
        n_chips: usize,
        /// Seed of chip 0; chip `c` uses `chip_seed_base + c`.
        chip_seed_base: u64,
    },
    /// A profiled chip's voltage/offset span (Tab. 5): rates resolved to
    /// operating voltages, crossed with mapping offsets.
    Profiled(ProfiledAxis),
}

impl ChipAxis {
    /// The uniform axis matching `CampaignGrid { rates, n_chips,
    /// chip_seed_base }`.
    pub fn uniform(rates: Vec<f64>, n_chips: usize, chip_seed_base: u64) -> Self {
        ChipAxis::Uniform { rates, n_chips, chip_seed_base }
    }

    /// The bit error rates spanned (one per group; for profiled axes these
    /// are the *target* rates the voltages were resolved from).
    pub fn rates(&self) -> &[f64] {
        match self {
            ChipAxis::Uniform { rates, .. } => rates,
            ChipAxis::Profiled(axis) => &axis.rates,
        }
    }

    /// Number of groups (= rates).
    pub fn n_groups(&self) -> usize {
        self.rates().len()
    }

    /// Points per group (chips for uniform axes, mapping offsets for
    /// profiled ones).
    pub fn group_size(&self) -> usize {
        match self {
            ChipAxis::Uniform { n_chips, .. } => *n_chips,
            ChipAxis::Profiled(axis) => axis.n_offsets,
        }
    }

    /// Total number of axis points (`n_groups × group_size`).
    pub fn n_points(&self) -> usize {
        self.n_groups() * self.group_size()
    }

    /// A stable identity string covering every input that shapes the
    /// injected patterns (seeds, rates in exact round-trip encoding, group
    /// geometry). Sweep-store cell keys hash this, so two axes with equal
    /// keys must produce byte-identical cells.
    pub fn key(&self) -> String {
        match self {
            ChipAxis::Uniform { rates, n_chips, chip_seed_base } => {
                let rates: Vec<String> = rates.iter().map(|r| format!("{r:e}")).collect();
                format!("uniform-s{chip_seed_base}-c{n_chips}-r[{}]", rates.join(","))
            }
            ChipAxis::Profiled(axis) => axis.key(),
        }
    }

    /// Resolves the axis for cell construction: synthesizes the profiled
    /// chip and its per-rate operating voltages once, so per-point image
    /// building is cheap. Deterministic — preparing twice yields
    /// byte-identical cells.
    pub(crate) fn prepare(&self) -> PreparedAxis<'_> {
        match self {
            ChipAxis::Uniform { rates, n_chips, chip_seed_base } => {
                PreparedAxis::Uniform { rates, n_chips: *n_chips, chip_seed_base: *chip_seed_base }
            }
            ChipAxis::Profiled(axis) => {
                let chip = axis.synthesize();
                let voltages = axis.voltages(&chip);
                PreparedAxis::Profiled { axis, chip, voltages }
            }
        }
    }
}

/// A [`ChipAxis`] with its per-campaign state resolved (synthesized chip,
/// rate→voltage table). Built once per sweep/campaign; shared by all of
/// the axis's cells.
pub(crate) enum PreparedAxis<'a> {
    Uniform { rates: &'a [f64], n_chips: usize, chip_seed_base: u64 },
    Profiled { axis: &'a ProfiledAxis, chip: ProfiledChip, voltages: Vec<f64> },
}

impl PreparedAxis<'_> {
    /// Builds the perturbed quantized image of axis point `point` from the
    /// clean quantized image `q0`.
    pub(crate) fn make_image(&self, q0: &QuantizedModel, point: usize) -> QuantizedModel {
        let mut q = q0.clone();
        match self {
            PreparedAxis::Uniform { rates, n_chips, chip_seed_base } => {
                let p = rates[point / n_chips];
                let c = point % n_chips;
                q.inject(&UniformChip::new(chip_seed_base + c as u64).at_rate(p));
            }
            PreparedAxis::Profiled { axis, chip, voltages } => {
                q.inject(&axis.injector(chip, voltages, point));
            }
        }
        q
    }
}

/// Identifies one cell of a [`run_axis`] campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxisCell {
    /// Index into the campaign's scheme list.
    pub scheme: usize,
    /// Group (= rate) index within the axis.
    pub group: usize,
    /// Point index within the group (chip or mapping offset).
    pub point: usize,
}

/// Runs `schemes × axis` as **one** parallel campaign: quantizes the model
/// once per scheme, builds every axis point's perturbed image lazily, and
/// fans all cells out together. Returns `[scheme][group]` [`RobustEval`]s.
///
/// This is the one axis-based evaluation surface: uniform grids
/// ([`run_grid`], `robust_eval_uniform`) and profiled Tab. 5-style
/// voltage/offset sweeps are both [`ChipAxis`] variants driven through
/// here.
///
/// # Panics
///
/// Panics if `schemes` or the axis is empty in any dimension, or on the
/// [`Campaign::run`] conditions.
pub fn run_axis(
    model: &Model,
    schemes: &[QuantScheme],
    axis: &ChipAxis,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<Vec<RobustEval>> {
    run_axis_streaming(model, schemes, axis, dataset, batch_size, mode, |_, _| {})
}

/// [`run_axis`] with a per-cell progress callback: `on_cell(cell, result)`
/// fires for every (scheme, group, point) cell — scheme-major, then
/// group-major, then point order — as soon as its wave completes. The
/// returned grid is byte-identical to [`run_axis`]'s.
///
/// # Panics
///
/// As [`run_axis`].
pub fn run_axis_streaming(
    model: &Model,
    schemes: &[QuantScheme],
    axis: &ChipAxis,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(AxisCell, &EvalResult),
) -> Vec<Vec<RobustEval>> {
    assert!(!schemes.is_empty(), "campaign needs at least one scheme");
    assert!(axis.n_groups() > 0, "campaign axis needs at least one rate");
    assert!(axis.group_size() > 0, "campaign axis needs at least one point per rate");

    let prepared = axis.prepare();
    let group = axis.group_size();
    schemes
        .iter()
        .enumerate()
        .map(|(scheme_index, &scheme)| {
            // Quantize once per scheme; build each point's image lazily as
            // its wave is reached, so peak memory stays at one wave of
            // images + replicas however large the axis.
            let q0 = QuantizedModel::quantize(model, scheme);
            let cells = Campaign::new(model, dataset)
                .batch_size(batch_size)
                .mode(mode)
                .on_cell(|point, result| {
                    let id = AxisCell {
                        scheme: scheme_index,
                        group: point / group,
                        point: point % group,
                    };
                    on_cell(id, result);
                })
                .run_lazy(axis.n_points(), |point| prepared.make_image(&q0, point));
            cells.chunks(group).map(RobustEval::from_results).collect()
        })
        .collect()
}

/// Runs a whole [`CampaignGrid`] as **one** parallel campaign.
///
/// A thin uniform-axis spelling of [`run_axis`]: quantizes the model once
/// per scheme, injects every (rate, chip) pattern, and evaluates all cells
/// in a single fan-out. Returns `[scheme][rate]` [`RobustEval`]s whose
/// per-chip `errors` are bit-identical to running `robust_eval_uniform`
/// serially per rate with the same seeds.
///
/// The model is only read; its weights are never touched (patterns live in
/// per-pattern replicas).
///
/// # Panics
///
/// Panics if the grid is empty in any dimension, or on the
/// [`Campaign::run`] conditions.
pub fn run_grid(
    model: &Model,
    grid: &CampaignGrid,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> Vec<Vec<RobustEval>> {
    run_grid_streaming(model, grid, dataset, batch_size, mode, |_, _| {})
}

/// [`run_grid`] with a per-cell progress callback: `on_cell(cell, result)`
/// fires for every (scheme, rate, chip) cell — in scheme-major, then
/// rate-major, then chip order — as soon as the cell's wave of the
/// campaign completes. The returned grid is byte-identical to
/// [`run_grid`]'s; the callback only adds observability (long sweeps use
/// it for progress output).
///
/// # Panics
///
/// As [`run_grid`].
pub fn run_grid_streaming(
    model: &Model,
    grid: &CampaignGrid,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
    mut on_cell: impl FnMut(GridCell, &EvalResult),
) -> Vec<Vec<RobustEval>> {
    let axis = ChipAxis::uniform(grid.rates.clone(), grid.n_chips, grid.chip_seed_base);
    run_axis_streaming(model, &grid.schemes, &axis, dataset, batch_size, mode, |cell, result| {
        on_cell(GridCell { scheme: cell.scheme, rate: cell.group, chip: cell.point }, result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use crate::{evaluate, robust_eval_uniform, EVAL_BATCH};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn tiny_setup() -> (Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let (_, test) = SynthDataset::Mnist.generate(0);
        (built.model, test)
    }

    fn uniform_images(model: &mut Model, n_chips: usize, p: f64) -> Vec<QuantizedModel> {
        let q0 = QuantizedModel::quantize(model, QuantScheme::rquant(8));
        (0..n_chips)
            .map(|c| {
                let mut q = q0.clone();
                q.inject(&UniformChip::new(1000 + c as u64).at_rate(p));
                q
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 6, 0.02);
        let parallel = Campaign::new(&model, &test).run(&images);
        let serial = Campaign::new(&model, &test).serial().run(&images);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn engine_matches_legacy_mutate_and_forward_loop() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 4, 0.01);
        let engine = Campaign::new(&model, &test).run(&images);

        // The pre-engine path: write each image into the model and run the
        // cached-forward evaluator.
        let snapshot = model.param_tensors();
        let legacy: Vec<EvalResult> = images
            .iter()
            .map(|q| {
                q.write_to(&mut model);
                evaluate(&model, &test, EVAL_BATCH, Mode::Eval)
            })
            .collect();
        model.set_param_tensors(&snapshot);

        for (e, l) in engine.iter().zip(&legacy) {
            assert_eq!(e.error, l.error, "error must be bit-identical to the legacy loop");
        }
    }

    #[test]
    fn robust_eval_uniform_is_deterministic_across_calls() {
        let (model, test) = tiny_setup();
        let a = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        let b = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.mean_confidence, b.mean_confidence);
    }

    #[test]
    fn run_grid_groups_cells_by_scheme_and_rate() {
        let (model, test) = tiny_setup();
        let grid = CampaignGrid {
            schemes: vec![QuantScheme::rquant(8), QuantScheme::rquant(4)],
            rates: vec![0.001, 0.01],
            n_chips: 3,
            chip_seed_base: 1000,
        };
        let out = run_grid(&model, &grid, &test, EVAL_BATCH, Mode::Eval);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|per_rate| per_rate.len() == 2));
        assert!(out.iter().flatten().all(|r| r.errors.len() == 3));

        // Each grid cell must equal the standalone uniform evaluation.
        let standalone = robust_eval_uniform(
            &model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(out[0][1].errors, standalone.errors);
    }

    #[test]
    fn shared_image_matches_per_pattern_bit_for_bit() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 6, 0.02);
        let shared =
            Campaign::new(&model, &test).replicas(ReplicaStrategy::SharedImage).run(&images);
        let per_pattern =
            Campaign::new(&model, &test).replicas(ReplicaStrategy::PerPattern).run(&images);
        let serial = Campaign::new(&model, &test).serial().run(&images);
        assert_eq!(shared, per_pattern, "replica strategies must be byte-identical");
        assert_eq!(shared, serial, "shared-image engine must match the serial reference");
    }

    #[test]
    fn shared_image_streaming_and_multi_template_match_per_pattern() {
        let (mut model_a, test) = tiny_setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut model_b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let images_a = uniform_images(&mut model_a, 2, 0.01);
        let images_b = uniform_images(&mut model_b, 2, 0.02);
        let all: Vec<(usize, QuantizedModel)> = vec![
            (0, images_a[0].clone()),
            (1, images_b[0].clone()),
            (0, images_a[1].clone()),
            (1, images_b[1].clone()),
        ];
        let templates = [&model_a, &model_b];

        let mut seen = Vec::new();
        let shared = Campaign::multi(&templates, &test)
            .replicas(ReplicaStrategy::SharedImage)
            .on_cell(|i, r| seen.push((i, r.error)))
            .run_cells(all.len(), |i| all[i].clone());
        let per_pattern = Campaign::multi(&templates, &test)
            .replicas(ReplicaStrategy::PerPattern)
            .run_cells(all.len(), |i| all[i].clone());
        assert_eq!(shared, per_pattern);
        let expected: Vec<(usize, f32)> =
            shared.iter().enumerate().map(|(i, r)| (i, r.error)).collect();
        assert_eq!(seen, expected, "every cell must stream exactly once, in order");
    }

    #[test]
    fn lazy_image_construction_matches_eager() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 5, 0.02);
        let eager = Campaign::new(&model, &test).run(&images);
        let lazy = Campaign::new(&model, &test).run_lazy(images.len(), |i| images[i].clone());
        assert_eq!(eager, lazy);
    }

    #[test]
    fn chunked_campaign_matches_unchunked() {
        let (mut model, test) = tiny_setup();
        // More images than MAX_REPLICAS would be slow here; instead check
        // that splitting a campaign in two yields the same cells.
        let images = uniform_images(&mut model, 6, 0.02);
        let whole = Campaign::new(&model, &test).run(&images);
        let mut split = Campaign::new(&model, &test).run(&images[..2]);
        split.extend(Campaign::new(&model, &test).run(&images[2..]));
        assert_eq!(whole, split);
    }

    #[test]
    fn multi_template_cells_match_single_template_campaigns() {
        let (mut model_a, test) = tiny_setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model_b = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng).model;
        let images_a = uniform_images(&mut model_a, 2, 0.01);
        let images_b = uniform_images(&mut model_b, 2, 0.02);

        // Interleave the two models' cells in one multi-template campaign.
        let all: Vec<(usize, QuantizedModel)> = vec![
            (0, images_a[0].clone()),
            (1, images_b[0].clone()),
            (0, images_a[1].clone()),
            (1, images_b[1].clone()),
        ];
        let templates = [&model_a, &model_b];
        let mixed = Campaign::multi(&templates, &test).run_cells(all.len(), |i| all[i].clone());

        let solo_a = Campaign::new(&model_a, &test).run(&images_a);
        let solo_b = Campaign::new(&model_b, &test).run(&images_b);
        assert_eq!(mixed[0], solo_a[0]);
        assert_eq!(mixed[2], solo_a[1]);
        assert_eq!(mixed[1], solo_b[0]);
        assert_eq!(mixed[3], solo_b[1]);
    }

    #[test]
    fn streaming_delivers_every_cell_in_order() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 4, 0.01);
        let mut seen = Vec::new();
        let silent = Campaign::new(&model, &test).run(&images);
        let streamed =
            Campaign::new(&model, &test).on_cell(|i, r| seen.push((i, r.error))).run(&images);
        assert_eq!(silent, streamed, "streaming must not change results");
        let expected: Vec<(usize, f32)> =
            streamed.iter().enumerate().map(|(i, r)| (i, r.error)).collect();
        assert_eq!(seen, expected, "every cell must stream exactly once, in order");
    }

    #[test]
    #[should_panic(expected = "non-training mode")]
    fn rejects_training_mode() {
        let (mut model, test) = tiny_setup();
        let images = uniform_images(&mut model, 1, 0.0);
        let _ = Campaign::new(&model, &test).mode(Mode::Train).run(&images);
    }
}
