//! Bit error injection throughput: uniform chips vs profiled chips.

use bitrobust_biterror::{ChipKind, ErrorInjector, ProfiledChip, UniformChip};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform_inject_64k_words");
    group.throughput(Throughput::Elements(65_536));
    for p in [0.001, 0.01, 0.1] {
        let chip = UniformChip::new(7);
        group.bench_with_input(BenchmarkId::from_parameter(format!("p{p}")), &p, |b, &p| {
            let mut words = vec![0x5Au8; 65_536];
            b.iter(|| chip.at_rate(p).inject(std::hint::black_box(&mut words), 8, 0))
        });
    }
    group.finish();
}

fn bench_profiled(c: &mut Criterion) {
    let chip = ProfiledChip::synthesize(ChipKind::Chip1, 1);
    let v = chip.voltage_for_rate(0.01);
    let mut group = c.benchmark_group("profiled_inject_64k_words");
    group.throughput(Throughput::Elements(65_536));
    group.bench_function("chip1_p1pct", |b| {
        let mut words = vec![0x5Au8; 65_536];
        b.iter(|| chip.at_voltage(v, 0, false).inject(std::hint::black_box(&mut words), 8, 0))
    });
    group.finish();
}

fn bench_chip_synthesis(c: &mut Criterion) {
    c.bench_function("synthesize_chip1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ProfiledChip::synthesize(ChipKind::Chip1, std::hint::black_box(seed))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_uniform, bench_profiled, bench_chip_synthesis
}
criterion_main!(benches);
