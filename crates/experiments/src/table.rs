//! Plain-text table formatting in the style of the paper's tables.

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use bitrobust_experiments::Table;
///
/// let mut t = Table::new(&["Model", "Err", "RErr p=1%"]);
/// t.row(&["RQuant", "4.32", "32.05"]);
/// t.row(&["Clipping 0.1", "4.82", "8.93"]);
/// println!("{}", t.render());
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row/header column mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header column mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals (`4.32`).
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats `mean ± std` percentages (`32.05±6.00`).
pub fn pct_pm(mean: f64, std: f64) -> String {
    format!("{:.2}±{:.2}", 100.0 * mean, 100.0 * std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["A", "Longer"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["only one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0432), "4.32");
        assert_eq!(pct_pm(0.3205, 0.06), "32.05±6.00");
    }
}
