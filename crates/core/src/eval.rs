//! Clean and robust evaluation (`Err` and `RErr`, Sec. 5 "Metrics").

use bitrobust_biterror::{ErrorInjector, UniformChip};
use bitrobust_data::Dataset;
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::softmax_rows;

use crate::QuantizedModel;

/// Default evaluation batch size.
pub const EVAL_BATCH: usize = 128;

/// Result of a single (clean or perturbed) evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Classification error in `[0, 1]`.
    pub error: f32,
    /// Mean confidence (softmax probability of the predicted class).
    pub confidence: f32,
}

/// Evaluates the model as-is on a dataset.
pub fn evaluate(model: &mut Model, dataset: &Dataset, batch_size: usize, mode: Mode) -> EvalResult {
    assert!(batch_size > 0, "batch size must be positive");
    let mut wrong = 0usize;
    let mut conf_sum = 0f64;
    let n = dataset.len();
    let mut index = 0;
    while index < n {
        let end = (index + batch_size).min(n);
        let (x, labels) = dataset.batch_range(index, end);
        let logits = model.forward(&x, mode);
        let probs = softmax_rows(&logits);
        let preds = probs.argmax_rows();
        for (row, (&label, &pred)) in labels.iter().zip(&preds).enumerate() {
            if pred != label {
                wrong += 1;
            }
            conf_sum += probs.row(row)[pred] as f64;
        }
        index = end;
    }
    EvalResult { error: wrong as f32 / n as f32, confidence: (conf_sum / n as f64) as f32 }
}

/// Evaluates the model after quantization (the clean `Err` the paper
/// reports for quantized DNNs). Restores the float weights afterwards.
pub fn quantized_error(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    batch_size: usize,
    mode: Mode,
) -> EvalResult {
    let snapshot = model.param_tensors();
    let q = QuantizedModel::quantize(model, scheme);
    q.write_to(model);
    let result = evaluate(model, dataset, batch_size, mode);
    model.set_param_tensors(&snapshot);
    result
}

/// Robust test error over a set of error-pattern samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEval {
    /// Mean `RErr` over patterns, in `[0, 1]`.
    pub mean_error: f32,
    /// Sample standard deviation of `RErr` over patterns (what the paper's
    /// `±` columns report); `0` for a single pattern.
    pub std_error: f32,
    /// Mean confidence under errors.
    pub mean_confidence: f32,
    /// Per-pattern errors.
    pub errors: Vec<f32>,
}

impl RobustEval {
    /// Aggregates per-pattern results into the paper's `RErr ± std` summary.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn from_results(results: &[EvalResult]) -> Self {
        assert!(!results.is_empty(), "need at least one error pattern");
        let n = results.len() as f64;
        let mean = results.iter().map(|r| r.error as f64).sum::<f64>() / n;
        let std = if results.len() > 1 {
            let var =
                results.iter().map(|r| (r.error as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        let conf = results.iter().map(|r| r.confidence as f64).sum::<f64>() / n;
        Self {
            mean_error: mean as f32,
            std_error: std as f32,
            mean_confidence: conf as f32,
            errors: results.iter().map(|r| r.error).collect(),
        }
    }
}

/// Evaluates `RErr`: quantizes the model, then for each injector clones the
/// quantized image, injects bit errors, and measures test error.
///
/// A thin wrapper over the parallel campaign engine
/// ([`crate::eval_images`]): all (pattern, batch) work items fan out over
/// the workspace thread pool, and the per-chip `errors` are bit-identical
/// to the historical serial loop. The model's weights are left untouched
/// (patterns are written into per-pattern replicas, never the model).
///
/// The injectors are the "chips": for the paper's headline numbers these
/// are [`UniformChip`]s at a common rate `p` (see [`robust_eval_uniform`]);
/// for the generalization experiments they are profiled chips at an
/// operating voltage with varying memory offsets.
pub fn robust_eval<I: ErrorInjector>(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    injectors: &[I],
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let q0 = QuantizedModel::quantize(model, scheme);
    let results = crate::campaign::eval_images_with(
        model,
        injectors.len(),
        |i| {
            let mut q = q0.clone();
            q.inject(&injectors[i]);
            q
        },
        dataset,
        batch_size,
        mode,
    );
    RobustEval::from_results(&results)
}

/// [`robust_eval`] against `n_chips` uniform random chips at rate `p`
/// (the paper's default protocol: 50 chips, fixed seeds, shared across all
/// models and rates so results are comparable).
#[allow(clippy::too_many_arguments)] // mirrors the paper's evaluation protocol knobs
pub fn robust_eval_uniform(
    model: &mut Model,
    scheme: QuantScheme,
    dataset: &Dataset,
    p: f64,
    n_chips: usize,
    chip_seed_base: u64,
    batch_size: usize,
    mode: Mode,
) -> RobustEval {
    let injectors: Vec<_> =
        (0..n_chips).map(|c| UniformChip::new(chip_seed_base + c as u64).at_rate(p)).collect();
    robust_eval(model, scheme, dataset, &injectors, batch_size, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use bitrobust_data::SynthDataset;
    use rand::SeedableRng;

    fn tiny_setup() -> (Model, Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let (_, test) = SynthDataset::Mnist.generate(0);
        (built.model, test)
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let (mut model, test) = tiny_setup();
        let r = evaluate(&mut model, &test, EVAL_BATCH, Mode::Eval);
        assert!(r.error > 0.6, "untrained error {} should be near chance", r.error);
        assert!(r.confidence > 0.0 && r.confidence <= 1.0);
    }

    #[test]
    fn quantized_error_restores_weights() {
        let (mut model, test) = tiny_setup();
        let before = model.param_tensors();
        let _ = quantized_error(&mut model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let after = model.param_tensors();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a, b, "float weights must be restored");
        }
    }

    #[test]
    fn robust_eval_produces_one_result_per_chip() {
        let (mut model, test) = tiny_setup();
        let r = robust_eval_uniform(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            0.01,
            5,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(r.errors.len(), 5);
        assert!(r.mean_error >= 0.0 && r.mean_error <= 1.0);
        assert!(r.std_error >= 0.0);
    }

    #[test]
    fn from_results_reports_sample_standard_deviation() {
        let results: Vec<EvalResult> =
            [0.1f32, 0.2, 0.3].iter().map(|&error| EvalResult { error, confidence: 0.5 }).collect();
        let r = RobustEval::from_results(&results);
        assert!((r.mean_error - 0.2).abs() < 1e-7);
        // Sample std: sqrt(((0.1)^2 + 0 + (0.1)^2) / (3 - 1)) = 0.1.
        assert!((r.std_error - 0.1).abs() < 1e-6, "std {}", r.std_error);
        assert!((r.mean_confidence - 0.5).abs() < 1e-7);
    }

    #[test]
    fn from_results_single_pattern_has_zero_std() {
        let r = RobustEval::from_results(&[EvalResult { error: 0.4, confidence: 0.9 }]);
        assert_eq!(r.std_error, 0.0);
        assert_eq!(r.errors, vec![0.4]);
    }

    #[test]
    fn robust_eval_leaves_model_weights_untouched() {
        let (mut model, test) = tiny_setup();
        let before = model.param_tensors();
        let _ = robust_eval_uniform(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            0.05,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert_eq!(before, model.param_tensors());
    }

    #[test]
    fn zero_rate_matches_quantized_error() {
        let (mut model, test) = tiny_setup();
        let clean =
            quantized_error(&mut model, QuantScheme::rquant(8), &test, EVAL_BATCH, Mode::Eval);
        let robust = robust_eval_uniform(
            &mut model,
            QuantScheme::rquant(8),
            &test,
            0.0,
            3,
            1000,
            EVAL_BATCH,
            Mode::Eval,
        );
        assert!((robust.mean_error - clean.error).abs() < 1e-6);
        assert_eq!(robust.std_error, 0.0);
    }
}
