//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored so the workspace builds without network access.
//!
//! Only the surface actually used by the `bitrobust-*` crates is provided:
//!
//! * [`SeedableRng`] / [`RngCore`] / [`Rng`] with `gen`, `gen_range`,
//!   `gen_bool`, and `fill_bytes`;
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator;
//! * [`seq::SliceRandom`] with `shuffle` and `choose`;
//! * [`distributions::Standard`] for the primitive types.
//!
//! The generator is seed-stable across runs and platforms, but its streams
//! are **not** bit-identical to the real `rand::rngs::StdRng` (which is
//! ChaCha12-based). All workspace code treats RNG output statistically, so
//! swapping in the real crate later only changes the sampled values, not
//! correctness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard, UniformSampleRange};

/// A random number generator core: the entropy source every other method
/// derives from.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformSampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with values sampled from the [`Standard`] distribution.
    fn fill<T>(&mut self, dest: &mut [T])
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        for slot in dest.iter_mut() {
            *slot = Standard.sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded with SplitMix64
    /// (matching the upstream `rand` convention).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
