//! SRAM model costs: rate queries, inverse solves, array sampling and
//! characterization.

use bitrobust_sram::{characterize, CellProfile, SramArray, VoltageErrorModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench_sram(c: &mut Criterion) {
    let model = VoltageErrorModel::chandramoorthy14nm();
    c.bench_function("rate_at", |b| b.iter(|| model.rate_at(std::hint::black_box(0.85))));
    c.bench_function("voltage_for_rate", |b| {
        b.iter(|| model.voltage_for_rate(std::hint::black_box(0.01)))
    });

    let mut group = c.benchmark_group("arrays");
    group.sample_size(10);
    group.bench_function("sample_512x64", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        b.iter(|| SramArray::sample(512, 64, &model, &CellProfile::uniform(), &mut rng))
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let arrays: Vec<SramArray> = (0..4)
        .map(|_| SramArray::sample(512, 64, &model, &CellProfile::uniform(), &mut rng))
        .collect();
    group.bench_function("characterize_4x512x64_11v", |b| {
        let voltages: Vec<f64> = (0..11).map(|i| 0.75 + 0.025 * i as f64).collect();
        b.iter(|| characterize(std::hint::black_box(&arrays), &voltages))
    });
    group.finish();
}

criterion_group!(benches, bench_sram);
criterion_main!(benches);
