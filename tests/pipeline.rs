//! End-to-end pipeline tests: train → quantize → inject → evaluate,
//! exercising every crate in the workspace together.

use bitrobust_biterror::UniformChip;
use bitrobust_core::{
    build, evaluate, quantized_error, robust_eval_uniform, train, ArchKind, NormKind,
    QuantizedModel, TrainConfig, TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn trained_mnist_model() -> (Model, Dataset) {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(11);
    let subset: Vec<usize> = (0..800).collect();
    let (x, y) = train_ds.batch(&subset);
    let small_train = Dataset::new("train", x, y, 10);

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), TrainMethod::Normal);
    cfg.epochs = 6;
    cfg.augment = AugmentConfig::none();
    let report = train(&mut model, &small_train, &test_ds, &cfg);
    assert!(report.clean_error < 0.15, "model must learn, got {}", report.clean_error);
    (model, test_ds)
}

#[test]
fn rerr_grows_with_bit_error_rate() {
    let (model, test_ds) = trained_mnist_model();
    let scheme = QuantScheme::rquant(8);
    let mut last = 0.0f32;
    let mut increased = 0;
    for p in [0.0, 0.01, 0.05, 0.15] {
        let r = robust_eval_uniform(&model, scheme, &test_ds, p, 5, 42, EVAL_BATCH, Mode::Eval);
        assert!(
            r.mean_error >= last - 0.02,
            "RErr should not drop much: {} -> {}",
            last,
            r.mean_error
        );
        if r.mean_error > last {
            increased += 1;
        }
        last = r.mean_error;
    }
    assert!(increased >= 2, "RErr must grow over the sweep");
    assert!(last > 0.3, "p = 15% should be devastating for a normally-trained model, got {last}");
}

#[test]
fn quantization_loses_little_accuracy_at_8_bit() {
    let (model, test_ds) = trained_mnist_model();
    let float_err = evaluate(&model, &test_ds, EVAL_BATCH, Mode::Eval).error;
    let q8 =
        quantized_error(&model, QuantScheme::rquant(8), &test_ds, EVAL_BATCH, Mode::Eval).error;
    assert!(
        (q8 - float_err).abs() < 0.02,
        "8-bit quantization must be nearly free: {float_err} vs {q8}"
    );
}

#[test]
fn robust_eval_restores_float_weights_exactly() {
    let (model, test_ds) = trained_mnist_model();
    let before = model.param_tensors();
    let _ = robust_eval_uniform(
        &model,
        QuantScheme::rquant(8),
        &test_ds,
        0.05,
        3,
        7,
        EVAL_BATCH,
        Mode::Eval,
    );
    let after = model.param_tensors();
    assert_eq!(before, after);
}

#[test]
fn model_level_subset_property() {
    // Flips at p' <= p on the same chip are a subset at the whole-model
    // level, so raising the voltage can only remove errors.
    let (model, _) = trained_mnist_model();
    let scheme = QuantScheme::rquant(8);
    let q0 = QuantizedModel::quantize(&model, scheme);
    let chip = UniformChip::new(1234);
    let mut q_low = q0.clone();
    q_low.inject(&chip.at_rate(0.01));
    let mut q_high = q0.clone();
    q_high.inject(&chip.at_rate(0.05));
    for ((t0, tl), th) in q0.tensors().iter().zip(q_low.tensors()).zip(q_high.tensors()) {
        let mask = t0.live_mask();
        for ((w0, wl), wh) in t0.words().iter().zip(tl.words()).zip(th.words()) {
            let low_flips = (w0 ^ wl) & mask;
            let high_flips = (w0 ^ wh) & mask;
            assert_eq!(low_flips & !high_flips, 0, "low-rate flips must be a subset");
        }
    }
}

#[test]
fn different_chips_give_different_rerr_samples() {
    let (model, test_ds) = trained_mnist_model();
    let r = robust_eval_uniform(
        &model,
        QuantScheme::rquant(8),
        &test_ds,
        0.1,
        8,
        999,
        EVAL_BATCH,
        Mode::Eval,
    );
    assert_eq!(r.errors.len(), 8);
    let distinct: std::collections::HashSet<u32> = r.errors.iter().map(|e| e.to_bits()).collect();
    assert!(distinct.len() > 1, "chips must produce varied errors");
    assert!(r.std_error > 0.0);
}

#[test]
fn lower_precision_is_not_more_robust_for_a_normal_model() {
    // At the same p, a 4-bit quantization of an 8-bit-trained model suffers
    // at least comparably — each flip is a larger fraction of the range.
    let (model, test_ds) = trained_mnist_model();
    let r8 = robust_eval_uniform(
        &model,
        QuantScheme::rquant(8),
        &test_ds,
        0.05,
        5,
        77,
        EVAL_BATCH,
        Mode::Eval,
    );
    let r4 = robust_eval_uniform(
        &model,
        QuantScheme::rquant(4),
        &test_ds,
        0.05,
        5,
        77,
        EVAL_BATCH,
        Mode::Eval,
    );
    assert!(
        r4.mean_error > r8.mean_error - 0.05,
        "4-bit should not be much more robust: {} vs {}",
        r4.mean_error,
        r8.mean_error
    );
}
