//! Quickstart: train a small DNN with random bit error training (RandBET),
//! then measure its robustness to low-voltage bit errors.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bitrobust_core::{
    build, robust_eval_uniform, train, ArchKind, NormKind, RandBetVariant, TrainConfig,
    TrainMethod, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, SynthDataset};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn main() {
    // 1. Data: a synthetic MNIST-like task (deterministic from the seed).
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(0);

    // 2. Model: a small conv net with GroupNorm (BatchNorm is fragile under
    //    weight bit errors — see the tab10_batchnorm experiment).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::SimpleNet, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;

    // 3. Train with the full stack: robust quantization (RQuant), weight
    //    clipping (wmax = 0.1), and random bit errors at p = 5% per step.
    let scheme = QuantScheme::rquant(8);
    let method =
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.05, variant: RandBetVariant::Standard };
    let mut cfg = TrainConfig::new(Some(scheme), method);
    cfg.epochs = 10;
    cfg.augment = AugmentConfig::mnist();
    println!("training (10 epochs)...");
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    println!(
        "clean test error {:.2}% (confidence {:.1}%)\n",
        100.0 * report.clean_error,
        100.0 * report.clean_confidence
    );

    // 4. Evaluate robustness: inject random bit errors into the quantized
    //    weights of 10 simulated chips per rate.
    println!("bit error rate p -> robust test error (RErr):");
    for p in [0.001, 0.01, 0.05, 0.1] {
        let r = robust_eval_uniform(&model, scheme, &test_ds, p, 10, 42, EVAL_BATCH, Mode::Eval);
        println!(
            "  p = {:>5.1}% -> RErr {:.2}% ± {:.2}",
            100.0 * p,
            100.0 * r.mean_error,
            100.0 * r.std_error
        );
    }
    println!("\nA normally trained model collapses near p = 5%; RandBET holds.");
}
