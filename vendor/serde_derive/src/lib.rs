//! Offline stub of `serde_derive`, vendored so the workspace builds without
//! network access.
//!
//! The derives parse just enough of the item (without `syn`) to recover the
//! type name and generics, then emit marker `impl`s of the stub traits in
//! the vendored `serde` crate. No serialization code is generated; the stub
//! exists so `#[derive(Serialize, Deserialize)]` in downstream crates
//! compiles and the trait bounds stay checkable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emits `impl ::serde::{trait} for {Name} {}` (lifetime-parameterless
/// types only; anything more exotic gets an empty expansion, which still
/// compiles because the traits are pure markers).
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// Walks the item's tokens to find the identifier after `struct`/`enum`,
/// bailing out (→ `None`) when the type is generic.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        match tree {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        // Generic types would need bound plumbing; skip them.
                        if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            return None;
                        }
                        return Some(name.to_string());
                    }
                    return None;
                }
            }
            _ => {}
        }
    }
    None
}
