//! Training-time augmentation (the paper's crop + Cutout setup, scaled to
//! the synthetic images; AutoAugment's learned policies are out of scope
//! and orthogonal to weight robustness).

use bitrobust_tensor::Tensor;
use rand::Rng;

/// Augmentation configuration.
#[derive(Debug, Clone, Copy)]
pub struct AugmentConfig {
    /// Random-crop padding in pixels (0 disables).
    pub crop_pad: usize,
    /// Whether to apply random horizontal flips.
    pub flip: bool,
    /// Cutout square side length (0 disables).
    pub cutout: usize,
}

impl AugmentConfig {
    /// The CIFAR-style recipe: 2-pixel shifts, flips, 4×4 cutout.
    pub fn cifar() -> Self {
        Self { crop_pad: 2, flip: true, cutout: 4 }
    }

    /// The MNIST-style recipe: small shifts only.
    pub fn mnist() -> Self {
        Self { crop_pad: 1, flip: false, cutout: 0 }
    }

    /// No augmentation.
    pub fn none() -> Self {
        Self { crop_pad: 0, flip: false, cutout: 0 }
    }
}

/// Applies the augmentation in place to a `[batch, c, h, w]` tensor.
///
/// # Panics
///
/// Panics if `images` is not 4-D.
pub fn augment_batch(images: &mut Tensor, cfg: &AugmentConfig, rng: &mut impl Rng) {
    assert_eq!(images.ndim(), 4, "augment_batch expects [batch, c, h, w]");
    let (batch, c, h, w) = (images.dim(0), images.dim(1), images.dim(2), images.dim(3));
    let sample = c * h * w;
    let data = images.data_mut();
    let mut scratch = vec![0f32; sample];
    for b in 0..batch {
        let img = &mut data[b * sample..(b + 1) * sample];
        if cfg.crop_pad > 0 {
            let pad = cfg.crop_pad as isize;
            let dy = rng.gen_range(-pad..=pad);
            let dx = rng.gen_range(-pad..=pad);
            if dy != 0 || dx != 0 {
                shift_into(img, &mut scratch, c, h, w, dy, dx);
                img.copy_from_slice(&scratch);
            }
        }
        if cfg.flip && rng.gen::<bool>() {
            flip_horizontal(img, c, h, w);
        }
        if cfg.cutout > 0 {
            let cy = rng.gen_range(0..h);
            let cx = rng.gen_range(0..w);
            cutout(img, c, h, w, cy, cx, cfg.cutout);
        }
    }
}

/// Shifts an image by `(dy, dx)`, zero-filling exposed borders.
fn shift_into(src: &[f32], dst: &mut [f32], c: usize, h: usize, w: usize, dy: isize, dx: isize) {
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = y as isize - dy;
                let sx = x as isize - dx;
                dst[(ch * h + y) * w + x] =
                    if (0..h as isize).contains(&sy) && (0..w as isize).contains(&sx) {
                        src[(ch * h + sy as usize) * w + sx as usize]
                    } else {
                        0.0
                    };
            }
        }
    }
}

fn flip_horizontal(img: &mut [f32], c: usize, h: usize, w: usize) {
    for ch in 0..c {
        for y in 0..h {
            let row = &mut img[(ch * h + y) * w..(ch * h + y + 1) * w];
            row.reverse();
        }
    }
}

/// Zeroes a `size × size` square centred at `(cy, cx)` (clipped to bounds).
fn cutout(img: &mut [f32], c: usize, h: usize, w: usize, cy: usize, cx: usize, size: usize) {
    let half = size / 2;
    let y0 = cy.saturating_sub(half);
    let x0 = cx.saturating_sub(half);
    let y1 = (cy + half).min(h);
    let x1 = (cx + half).min(w);
    for ch in 0..c {
        for y in y0..y1 {
            for x in x0..x1 {
                img[(ch * h + y) * w + x] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_config_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let orig = Tensor::from_fn(&[2, 1, 4, 4], |i| i as f32);
        let mut img = orig.clone();
        augment_batch(&mut img, &AugmentConfig::none(), &mut rng);
        assert_eq!(img, orig);
    }

    #[test]
    fn flip_is_an_involution() {
        let mut img: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let orig = img.clone();
        flip_horizontal(&mut img, 1, 4, 4);
        assert_ne!(img, orig);
        flip_horizontal(&mut img, 1, 4, 4);
        assert_eq!(img, orig);
    }

    #[test]
    fn shift_moves_content() {
        let src: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut dst = vec![0f32; 9];
        shift_into(&src, &mut dst, 1, 3, 3, 1, 0); // down by 1
        assert_eq!(dst[3], src[0]);
        assert_eq!(&dst[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cutout_zeroes_a_region() {
        let mut img = vec![1f32; 36];
        cutout(&mut img, 1, 6, 6, 3, 3, 4);
        let zeros = img.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 16);
    }

    #[test]
    fn cutout_clips_at_borders() {
        let mut img = vec![1f32; 16];
        cutout(&mut img, 1, 4, 4, 0, 0, 4);
        let zeros = img.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 4); // 2x2 survives clipping
    }

    #[test]
    fn augment_changes_most_images_with_cifar_recipe() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let orig = Tensor::from_fn(&[8, 3, 8, 8], |i| (i % 97) as f32);
        let mut img = orig.clone();
        augment_batch(&mut img, &AugmentConfig::cifar(), &mut rng);
        assert_ne!(img, orig);
    }
}
