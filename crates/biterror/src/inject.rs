//! The injection abstraction shared by all error models.

/// Injects bit errors into quantized weight words.
///
/// `words` holds one weight per `u8` with the low `bits` bits live (see
/// `bitrobust_quant::QuantizedTensor`); implementations must not touch the
/// dead high bits. `word_offset` is the index of `words[0]` within the
/// network's global, linearized weight vector — passing each parameter
/// tensor with its running offset makes the whole network see one
/// consistent chip-wide error pattern (the paper's linear weight-to-memory
/// mapping, Sec. 3).
pub trait ErrorInjector {
    /// XORs the model's bit errors into `words`.
    fn inject(&self, words: &mut [u8], bits: u8, word_offset: usize);
}

impl<T: ErrorInjector + ?Sized> ErrorInjector for &T {
    fn inject(&self, words: &mut [u8], bits: u8, word_offset: usize) {
        (**self).inject(words, bits, word_offset);
    }
}

/// An injector that does nothing (clean evaluation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoErrors;

impl ErrorInjector for NoErrors {
    fn inject(&self, _words: &mut [u8], _bits: u8, _word_offset: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_errors_is_identity() {
        let mut words = vec![0x3Au8; 16];
        NoErrors.inject(&mut words, 8, 0);
        assert!(words.iter().all(|&w| w == 0x3A));
    }
}
