//! Property-based pinning of the packed, cache-blocked GEMM against the
//! naive reference kernels.
//!
//! Shapes are drawn to straddle every tile-edge regime of the blocking
//! (`MR`/`NR` microtile remainders, `MC`/`KC`/`NC` partial blocks, 1×1,
//! K = 1, and empty-tile edges): the packed path must agree with the
//! reference kernels to rounding (the reduction shapes differ) and with
//! itself bit-for-bit across repeated calls.

use bitrobust_tensor::gemm::{KC, MC, MR, NC, NR};
use bitrobust_tensor::{
    matmul, matmul_nt, matmul_nt_reference, matmul_reference, matmul_tn, matmul_tn_reference,
    Tensor,
};
use proptest::prelude::*;

/// Dimension sizes that exercise tile edges: 1, exact register-tile
/// multiples, off-by-one remainders around them, and partial cache blocks.
fn edge_dims(tile: usize, block: usize) -> Vec<usize> {
    vec![1, 2, tile - 1, tile, tile + 1, 2 * tile, 2 * tile + 3, block - 1, block, block + tile - 1]
}

/// A deterministic, non-trivial fill keyed by `seed` (mirrors the pattern
/// used by the unit tests in `bitrobust_tensor::gemm`).
fn tensor_from_seed(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_add(seed).wrapping_mul(2654435761);
            ((h % 2000) as f32 - 1000.0) / 500.0
        })
        .collect();
    Tensor::from_vec(vec![rows, cols], data)
}

/// Agreement tolerance between reduction shapes, scaled by the K extent.
fn close(x: f32, y: f32, k: usize) -> bool {
    (x - y).abs() <= 1e-5 * (k as f32).max(1.0) * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    /// `matmul` (packed) vs the naive triple loop, over irregular shapes.
    #[test]
    fn packed_nn_matches_reference(
        (m, k, n) in (
            prop::sample::select(edge_dims(MR, MC)),
            prop::sample::select(edge_dims(MR, KC)),
            prop::sample::select(edge_dims(NR, NC)),
        ),
        seed in any::<u64>(),
    ) {
        let a = tensor_from_seed(m, k, seed);
        let b = tensor_from_seed(k, n, seed ^ 0x9e3779b97f4a7c15);
        let packed = matmul(&a, &b);
        let reference = matmul_reference(&a, &b);
        prop_assert_eq!(packed.shape(), &[m, n]);
        for (x, y) in packed.data().iter().zip(reference.data()) {
            prop_assert!(close(*x, *y, k), "nn {}x{}x{}: {} vs {}", m, k, n, x, y);
        }
        // Bit-exact vs itself: repeated calls take identical reduction paths.
        prop_assert_eq!(packed.data(), matmul(&a, &b).data());
    }

    /// `matmul_nt` (packed, B stored transposed) vs its naive reference.
    #[test]
    fn packed_nt_matches_reference(
        (m, k, n) in (
            prop::sample::select(edge_dims(MR, MC)),
            prop::sample::select(edge_dims(MR, KC)),
            prop::sample::select(edge_dims(NR, NC)),
        ),
        seed in any::<u64>(),
    ) {
        let a = tensor_from_seed(m, k, seed);
        let b = tensor_from_seed(n, k, seed ^ 0x9e3779b97f4a7c15);
        let packed = matmul_nt(&a, &b);
        let reference = matmul_nt_reference(&a, &b);
        prop_assert_eq!(packed.shape(), &[m, n]);
        for (x, y) in packed.data().iter().zip(reference.data()) {
            prop_assert!(close(*x, *y, k), "nt {}x{}x{}: {} vs {}", m, k, n, x, y);
        }
        prop_assert_eq!(packed.data(), matmul_nt(&a, &b).data());
    }

    /// `matmul_tn` (packed, A stored transposed) vs its naive reference.
    #[test]
    fn packed_tn_matches_reference(
        (m, k, n) in (
            prop::sample::select(edge_dims(MR, MC)),
            prop::sample::select(edge_dims(MR, KC)),
            prop::sample::select(edge_dims(NR, NC)),
        ),
        seed in any::<u64>(),
    ) {
        let a = tensor_from_seed(k, m, seed);
        let b = tensor_from_seed(k, n, seed ^ 0x9e3779b97f4a7c15);
        let packed = matmul_tn(&a, &b);
        let reference = matmul_tn_reference(&a, &b);
        prop_assert_eq!(packed.shape(), &[m, n]);
        for (x, y) in packed.data().iter().zip(reference.data()) {
            prop_assert!(close(*x, *y, k), "tn {}x{}x{}: {} vs {}", m, k, n, x, y);
        }
        prop_assert_eq!(packed.data(), matmul_tn(&a, &b).data());
    }
}

/// Deterministic sweep of the degenerate corners random sampling might
/// miss: 1×1, K = 1, and single-row/column strips along every tile edge.
#[test]
fn degenerate_corners_match_reference() {
    let shapes = [
        (1, 1, 1),
        (1, 1, NR),
        (MR, 1, 1),
        (1, KC, 1),
        (MR + 1, 1, NR + 1),
        (MC, 1, NC),
        (1, KC + 1, 1),
        (MR - 1, 2, NR - 1),
    ];
    for &(m, k, n) in &shapes {
        let a = tensor_from_seed(m, k, 7);
        let b = tensor_from_seed(k, n, 13);
        let packed = matmul(&a, &b);
        let reference = matmul_reference(&a, &b);
        for (x, y) in packed.data().iter().zip(reference.data()) {
            assert!(close(*x, *y, k), "{m}x{k}x{n}: {x} vs {y}");
        }
    }
}
