//! Serialization round-trips across the workspace: tensors, models, and
//! the quantized-weight path.

use bitrobust_core::{build, ArchKind, NormKind, QuantizedModel};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use bitrobust_tensor::{read_tensors, write_tensors, Tensor};
use rand::SeedableRng;

#[test]
fn model_save_load_preserves_outputs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let built = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
    let y_before = model.forward(&x, Mode::Eval);

    let mut buf = Vec::new();
    model.save_params(&mut buf).unwrap();

    let mut rng2 = rand::rngs::StdRng::seed_from_u64(999); // different init
    let built2 = build(ArchKind::SimpleNet, [3, 16, 16], 10, NormKind::Group, &mut rng2);
    let mut model2 = built2.model;
    model2.load_params(&buf[..]).unwrap();
    let y_after = model2.forward(&x, Mode::Eval);
    assert_eq!(y_before, y_after);
}

#[test]
fn quantized_weights_survive_save_load() {
    // Quantize → save float params → load → quantize again: identical words.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let model = built.model;
    let q1 = QuantizedModel::quantize(&model, QuantScheme::rquant(8));

    let mut buf = Vec::new();
    model.save_params(&mut buf).unwrap();
    let built2 = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model2 = built2.model;
    model2.load_params(&buf[..]).unwrap();
    let q2 = QuantizedModel::quantize(&model2, QuantScheme::rquant(8));
    assert_eq!(q1.hamming_distance(&q2), 0);
}

#[test]
fn tensor_file_round_trip_with_many_entries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let entries: Vec<(String, Tensor)> = (0..20)
        .map(|i| {
            let shape = vec![1 + i % 4, 2 + i % 3];
            (format!("tensor{i}"), Tensor::randn(&shape, 1.0, &mut rng))
        })
        .collect();
    let mut buf = Vec::new();
    write_tensors(&mut buf, &entries).unwrap();
    let back = read_tensors(&buf[..]).unwrap();
    assert_eq!(entries.len(), back.len());
    for ((n0, t0), (n1, t1)) in entries.iter().zip(&back) {
        assert_eq!(n0, n1);
        assert_eq!(t0, t1);
    }
}

#[test]
fn load_rejects_model_shape_mismatch() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let model = built.model;
    let mut buf = Vec::new();
    model.save_params(&mut buf).unwrap();

    let built_other = build(ArchKind::Mlp, [3, 16, 16], 10, NormKind::Group, &mut rng);
    let mut other = built_other.model;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        other.load_params(&buf[..]).unwrap();
    }));
    assert!(result.is_err(), "shape mismatch must be rejected");
}
