//! Property-based tests of the SRAM voltage/energy models.

use bitrobust_sram::{EnergyModel, VoltageErrorModel};
use proptest::prelude::*;

proptest! {
    /// Bit error rate is monotone decreasing in voltage.
    #[test]
    fn rate_monotone_in_voltage(v1 in 0.6f64..1.1, v2 in 0.6f64..1.1) {
        let m = VoltageErrorModel::chandramoorthy14nm();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(m.rate_at(lo) >= m.rate_at(hi));
    }

    /// voltage_for_rate inverts rate_at wherever the rate is in range.
    #[test]
    fn inverse_round_trip(p in 1e-6f64..0.2) {
        let m = VoltageErrorModel::chandramoorthy14nm();
        let v = m.voltage_for_rate(p);
        prop_assert!((m.rate_at(v) - p).abs() / p < 1e-6);
    }

    /// Threshold sampling respects the survival function: a cell with
    /// latent u is faulty at v iff u <= rate(v).
    #[test]
    fn threshold_sampling_consistent(u in 1e-9f64..1.0, v in 0.7f64..1.05) {
        let m = VoltageErrorModel::chandramoorthy14nm();
        let vth = m.sample_threshold(u);
        let faulty = vth >= v;
        let should_be = u <= m.rate_at(v);
        prop_assert_eq!(faulty, should_be, "u={}, v={}, vth={}", u, v, vth);
    }

    /// Energy is monotone increasing in voltage and bounded by [c, 1] on
    /// [0, 1].
    #[test]
    fn energy_monotone_and_bounded(v1 in 0.0f64..1.0, v2 in 0.0f64..1.0) {
        let e = EnergyModel::default();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(e.energy_at(lo) <= e.energy_at(hi));
        prop_assert!(e.energy_at(lo) >= e.leakage_frac());
        prop_assert!(e.energy_at(hi) <= 1.0 + 1e-12);
    }

    /// Tolerating a higher error rate always saves at least as much energy.
    #[test]
    fn saving_monotone_in_rate(p1 in 1e-6f64..0.2, p2 in 1e-6f64..0.2) {
        let volts = VoltageErrorModel::chandramoorthy14nm();
        let energy = EnergyModel::default();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(energy.saving_at_rate(lo, &volts) <= energy.saving_at_rate(hi, &volts) + 1e-12);
    }
}
