//! The model registry: named, versioned models behind `Arc` swaps.
//!
//! Keys are free-form strings; by convention the zoo's `ZooSpec::key()`
//! (or a quantization scheme's `QuantScheme::key()` suffix) so serving,
//! caching, and sweep plans all agree on what a model is called.
//! [`ModelRegistry::publish`] replaces the `Arc` for a key and bumps that
//! key's version — in-flight requests keep the [`ServedModel`] they
//! resolved at submit time, which is what makes a publish under live
//! traffic a zero-downtime hot-swap.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use bitrobust_nn::Model;

/// One published model: its registry key, a per-key monotonically
/// increasing version, and the model itself. Shared immutably (`Arc`)
/// between the registry, queued requests, and the engine.
#[derive(Debug)]
pub struct ServedModel {
    key: String,
    version: u64,
    model: Model,
}

impl ServedModel {
    /// The registry key this model was published under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The per-key publish version (1 for the first publish of a key).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The model itself.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

/// A concurrent map of key → current [`ServedModel`].
///
/// Reads ([`ModelRegistry::get`]) take a shared lock and clone an `Arc`;
/// writes ([`ModelRegistry::publish`]) swap the `Arc`. Neither blocks
/// in-flight inference, which holds its own `Arc` clones.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServedModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `model` under `key`, replacing any previous version, and
    /// returns the new version number (the previous version plus one, or
    /// 1 for a fresh key). Requests that already resolved the old version
    /// are served by it; subsequent submissions resolve the new one.
    pub fn publish(&self, key: impl Into<String>, model: Model) -> u64 {
        let key = key.into();
        let mut models = self.models.write().expect("registry lock poisoned");
        let version = models.get(&key).map_or(1, |m| m.version + 1);
        models.insert(key.clone(), Arc::new(ServedModel { key, version, model }));
        version
    }

    /// The current model for `key`, if one has been published.
    pub fn get(&self, key: &str) -> Option<Arc<ServedModel>> {
        self.models.read().expect("registry lock poisoned").get(key).cloned()
    }

    /// Number of published keys.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether no model has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All published keys, sorted (for stable listings).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> =
            self.models.read().expect("registry lock poisoned").keys().cloned().collect();
        keys.sort();
        keys
    }

    /// `(key, current version)` for every published model, sorted by key
    /// — the live registry gauge reported by `InferenceService::stats`.
    pub fn versions(&self) -> Vec<(String, u64)> {
        let mut versions: Vec<(String, u64)> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .values()
            .map(|m| (m.key.clone(), m.version))
            .collect();
        versions.sort();
        versions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitrobust_nn::Sequential;

    fn empty_model(name: &str) -> Model {
        Model::new(name, Sequential::new())
    }

    #[test]
    fn publish_bumps_version_per_key() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.publish("a", empty_model("a1")), 1);
        assert_eq!(registry.publish("b", empty_model("b1")), 1);
        assert_eq!(registry.publish("a", empty_model("a2")), 2);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(registry.versions(), vec![("a".to_string(), 2), ("b".to_string(), 1)]);

        let a = registry.get("a").expect("a is published");
        assert_eq!((a.key(), a.version()), ("a", 2));
        assert_eq!(a.model().name(), "a2");
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn old_version_survives_swap_through_held_arcs() {
        let registry = ModelRegistry::new();
        registry.publish("m", empty_model("v1"));
        let v1 = registry.get("m").unwrap();
        registry.publish("m", empty_model("v2"));
        assert_eq!(v1.model().name(), "v1", "held Arc must keep serving the old version");
        assert_eq!(registry.get("m").unwrap().model().name(), "v2");
    }
}
