//! Integration tests of the energy/robustness trade-off analysis (the
//! Fig. 1 + Fig. 2 combination behind the paper's headline claims).

use bitrobust_core::{best_saving_within, deviation_bound, energy_tradeoff};
use bitrobust_sram::{characterize, CellProfile, EnergyModel, SramArray, VoltageErrorModel};
use rand::SeedableRng;

#[test]
fn fig1_curves_have_the_published_shape() {
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();
    // Exponential: each 0.05 V drop multiplies the rate by a constant.
    let r1 = volts.rate_at(0.90) / volts.rate_at(0.95);
    let r2 = volts.rate_at(0.85) / volts.rate_at(0.90);
    assert!((r1 - r2).abs() / r1 < 1e-6, "log-linear rate curve");
    // Energy falls roughly quadratically: ~40% lower at 0.75 Vmin.
    let e = energy.energy_at(0.75);
    assert!((0.55..0.65).contains(&e));
}

#[test]
fn headline_savings_match_the_paper() {
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();
    // "DNNs robust to p = 1% allow to reduce SRAM energy by roughly 30%".
    let saving_1pct = energy.saving_at_rate(0.01, &volts);
    assert!((0.25..0.40).contains(&saving_1pct), "saving at p=1%: {saving_1pct}");
    // Around p ~ 0.1%, savings are ~20%.
    let saving_01pct = energy.saving_at_rate(0.001, &volts);
    assert!((0.15..0.30).contains(&saving_01pct), "saving at p=0.1%: {saving_01pct}");
}

#[test]
fn measured_arrays_track_the_analytic_curve() {
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let arrays: Vec<SramArray> = (0..8)
        .map(|_| SramArray::sample(512, 64, &volts, &CellProfile::uniform(), &mut rng))
        .collect();
    for (v, measured) in characterize(&arrays, &[0.78, 0.82, 0.86]) {
        let expected = volts.rate_at(v);
        assert!(
            (measured - expected).abs() < expected * 0.3 + 1e-4,
            "v={v}: {measured} vs {expected}"
        );
    }
}

#[test]
fn tradeoff_pipeline_finds_the_knee() {
    let volts = VoltageErrorModel::chandramoorthy14nm();
    let energy = EnergyModel::default();
    // A plausible RErr curve: flat until ~0.5%, then rising sharply.
    let curve = [(1e-4, 0.050), (1e-3, 0.055), (5e-3, 0.065), (1e-2, 0.075), (2.5e-2, 0.200)];
    let points = energy_tradeoff(&curve, &volts, &energy);
    // Budget 3%: should pick p=1%, not the catastrophic 2.5%.
    let best = best_saving_within(&points, 0.05, 0.03).unwrap();
    assert_eq!(best.p, 1e-2);
    assert!(best.energy_saving > 0.25);
    // Tiny budget: much smaller saving.
    let tight = best_saving_within(&points, 0.05, 0.006).unwrap();
    assert!(tight.p < best.p && tight.energy_saving < best.energy_saving);
}

#[test]
fn guarantee_bound_is_meaningful_at_experiment_scale() {
    // At our evaluation scale (1000 test examples, 10-500 chips) the Prop. 1
    // bound is loose but finite and improves with more patterns.
    let b10 = deviation_bound(1000, 10, 0.01);
    let b500 = deviation_bound(1000, 500, 0.01);
    assert!(b500 < b10);
    // With only 10 patterns the bound is vacuous (> 1); 500 patterns make
    // it informative.
    assert!(b500 > 0.0 && b500 < 1.0);
}
