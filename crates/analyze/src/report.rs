//! Human and JSON rendering of an analysis run.
//!
//! The JSON writer is hand-rolled like the sweep store's (the vendored
//! `serde` is an offline marker stub): a single stable-shaped document,
//! with full string escaping since finding messages quote arbitrary
//! source text.

use crate::baseline::{BaselineEntry, BaselineError};
use crate::rules::Finding;

/// Everything one run produced, ready to render.
pub struct Report {
    /// Findings not covered by the baseline (these fail `--deny`).
    pub fresh: Vec<Finding>,
    /// Findings grandfathered by a baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing (violations: delete them).
    pub stale: Vec<BaselineEntry>,
    /// Baseline lines that failed to parse (violations).
    pub baseline_errors: Vec<BaselineError>,
    /// Findings masked by inline `analyze:allow`s.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Total count of conditions that fail a `--deny` run.
    pub fn violations(&self) -> usize {
        self.fresh.len() + self.stale.len() + self.baseline_errors.len()
    }

    /// The human-readable listing printed to stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.fresh {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.path, f.line, f.rule, f.message, f.snippet
            ));
        }
        for f in &self.baselined {
            out.push_str(&format!(
                "{}:{}: [{}] baselined: {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "ANALYZE_baseline.txt:{}: stale entry ({} in {}): the finding no longer \
                 exists — delete the line\n",
                e.file_line, e.rule, e.path
            ));
        }
        for e in &self.baseline_errors {
            out.push_str(&format!("ANALYZE_baseline.txt:{}: {}\n", e.file_line, e.message));
        }
        out.push_str(&format!(
            "bitrobust-analyze: {} file(s), {} violation(s) ({} fresh, {} stale baseline, \
             {} baseline error(s)); {} baselined, {} suppressed by analyze:allow\n",
            self.files_scanned,
            self.violations(),
            self.fresh.len(),
            self.stale.len(),
            self.baseline_errors.len(),
            self.baselined.len(),
            self.suppressed,
        ));
        out
    }

    /// The machine-readable document uploaded as the CI artifact.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"violations\": {},\n", self.violations()));
        s.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));

        s.push_str("  \"findings\": [");
        let all =
            self.fresh.iter().map(|f| (f, false)).chain(self.baselined.iter().map(|f| (f, true)));
        let mut first = true;
        for (f, baselined) in all {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"baselined\": {}, \
                 \"message\": {}, \"snippet\": {}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                baselined,
                json_str(&f.message),
                json_str(&f.snippet),
            ));
        }
        s.push_str(if first { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"stale_baseline\": [");
        for (i, e) in self.stale.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"file_line\": {}}}",
                json_str(&e.rule),
                json_str(&e.path),
                e.file_line
            ));
        }
        s.push_str(if self.stale.is_empty() { "],\n" } else { "\n  ],\n" });

        // Per-rule counts over all findings (fresh + baselined), so the
        // artifact graphs rule activity even when CI is green.
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for f in self.fresh.iter().chain(&self.baselined) {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        s.push_str("  \"counts\": {");
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(rule), n));
        }
        s.push_str("}\n}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(fresh: Vec<Finding>) -> Report {
        Report {
            fresh,
            baselined: Vec::new(),
            stale: Vec::new(),
            baseline_errors: Vec::new(),
            suppressed: 0,
            files_scanned: 3,
        }
    }

    fn finding(snippet: &str) -> Finding {
        Finding {
            rule: "cast-boundary",
            path: "crates/quant/src/scheme.rs".to_string(),
            line: 9,
            message: "bare `as f32`".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn json_escapes_quotes_and_backslashes_in_snippets() {
        let r = report_with(vec![finding(r#"let s = "a\"b" as f32; \ tab:	end"#)]);
        let json = r.render_json();
        assert!(json.contains(r#"\"a\\\"b\""#), "{json}");
        assert!(json.contains("\\t"), "{json}");
        // No raw control characters or unescaped quotes survive.
        assert!(!json.contains('\t'));
    }

    #[test]
    fn empty_report_renders_valid_empty_arrays() {
        let r = report_with(Vec::new());
        let json = r.render_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"stale_baseline\": []"));
        assert!(json.contains("\"violations\": 0"));
    }

    #[test]
    fn violations_count_includes_stale_and_errors() {
        let mut r = report_with(vec![finding("x as f32")]);
        r.stale.push(crate::baseline::BaselineEntry {
            rule: "det-rng".into(),
            path: "a.rs".into(),
            hash: 1,
            reason: "r".into(),
            file_line: 4,
        });
        r.baseline_errors
            .push(crate::baseline::BaselineError { file_line: 9, message: "bad".into() });
        assert_eq!(r.violations(), 3);
        let text = r.render_text();
        assert!(text.contains("3 violation(s)"));
        assert!(text.contains("stale entry"));
    }

    #[test]
    fn counts_aggregate_fresh_and_baselined_by_rule() {
        let mut r = report_with(vec![finding("a as f32"), finding("b as f32")]);
        r.baselined.push(finding("c as f32"));
        let json = r.render_json();
        assert!(json.contains("\"cast-boundary\": 3"), "{json}");
    }
}
