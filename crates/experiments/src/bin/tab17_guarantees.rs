//! **Tab. 17 / Prop. 1 / App. C.2 + G.6** — Generalization guarantees for
//! the empirical RErr.
//!
//! Evaluates RErr with the standard number of error patterns and with a
//! stress-test number of patterns, and prints the Prop. 1 deviation bound
//! for the actual `(n, l)`; the paper's observation is that the empirical
//! estimate barely moves when `l` grows, well within the bound.

use bitrobust_core::{
    deviation_bound, robust_eval_uniform, RandBetVariant, TrainMethod, EVAL_BATCH,
};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct_pm, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let p = 0.01;
    let l_small = opts.chips;
    let l_large = if opts.quick { 50 } else { 500 };

    let methods: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT", TrainMethod::Normal),
        ("CLIPPING 0.05", TrainMethod::Clipping { wmax: 0.05 }),
        (
            "RANDBET 0.05 p=2%",
            TrainMethod::RandBet { wmax: Some(0.05), p: 0.02, variant: RandBetVariant::Standard },
        ),
    ];

    let mut table =
        Table::new(&["model", &format!("RErr l={l_small}"), &format!("RErr l={l_large}")]);
    for (name, method) in methods {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, _) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let small = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            p,
            l_small,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        let large = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            p,
            l_large,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        table.row_owned(vec![
            name.into(),
            pct_pm(small.mean_error as f64, small.std_error as f64),
            pct_pm(large.mean_error as f64, large.std_error as f64),
        ]);
    }
    println!("Tab. 17 (p = 1%, n = {} test examples):\n{}", test_ds.len(), table.render());

    println!("Prop. 1 deviation bounds at 99% confidence:");
    let mut table = Table::new(&["n", "l", "bound ε %"]);
    for (n, l) in [
        (test_ds.len(), l_small),
        (test_ds.len(), l_large),
        (10_000, 1_000_000),
        (100_000, 1_000_000),
    ] {
        table.row_owned(vec![
            format!("{n}"),
            format!("{l}"),
            format!("{:.1}", 100.0 * deviation_bound(n, l, 0.01)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: n=10^4, l=10^6 gives 4.1%; n=10^5 gives 1.7%. Empirical RErr is stable in l.");
}
