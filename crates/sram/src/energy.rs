//! Voltage → energy-per-access model (Fig. 1, red curve).
//!
//! Dynamic SRAM power scales with `V²`; a small voltage-independent floor
//! accounts for leakage and peripheral overhead at constant clock frequency
//! (the paper's energy numbers come from Cadence Spectre simulations at a
//! fixed clock — see App. A). `E(V)/E(Vmin) = c + (1-c)(V/Vmin)²` with
//! `c = 0.1` matches the published curve within reading accuracy.

use crate::VoltageErrorModel;

/// Normalized SRAM energy-per-access model.
///
/// # Examples
///
/// ```
/// use bitrobust_sram::{EnergyModel, VoltageErrorModel};
///
/// let energy = EnergyModel::default();
/// let volts = VoltageErrorModel::chandramoorthy14nm();
/// // Tolerating p = 1% bit errors buys roughly 30% energy per access.
/// let saving = energy.saving_at_rate(0.01, &volts);
/// assert!((0.25..0.40).contains(&saving), "saving = {saving}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    leakage_frac: f64,
}

impl EnergyModel {
    /// Creates an energy model with the given leakage/overhead floor
    /// (fraction of the `Vmin` energy that does not scale with `V²`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= leakage_frac < 1`.
    pub fn new(leakage_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&leakage_frac), "leakage fraction must be in [0, 1)");
        Self { leakage_frac }
    }

    /// Energy per access at normalized voltage `v`, relative to `Vmin`.
    pub fn energy_at(&self, v: f64) -> f64 {
        self.leakage_frac + (1.0 - self.leakage_frac) * v * v
    }

    /// Relative energy saving from operating at normalized voltage `v`
    /// instead of `Vmin` (positive = saving).
    pub fn saving_at(&self, v: f64) -> f64 {
        1.0 - self.energy_at(v)
    }

    /// Relative energy saving available to a DNN robust to bit error rate
    /// `p`: the saving at the lowest voltage whose error rate is `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn saving_at_rate(&self, p: f64, voltage_model: &VoltageErrorModel) -> f64 {
        self.saving_at(voltage_model.voltage_for_rate(p))
    }

    /// The leakage/overhead floor.
    pub fn leakage_frac(&self) -> f64 {
        self.leakage_frac
    }
}

impl Default for EnergyModel {
    /// The Fig. 1 calibration (`c = 0.1`).
    fn default() -> Self {
        Self::new(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_one_at_vmin() {
        let e = EnergyModel::default();
        assert!((e.energy_at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_fig1_at_low_voltage() {
        // Fig. 1 shows ~0.6 normalized energy at 0.75 Vmin.
        let e = EnergyModel::default();
        let val = e.energy_at(0.75);
        assert!((0.55..0.65).contains(&val), "energy {val}");
    }

    #[test]
    fn saving_is_monotone_in_error_rate() {
        let e = EnergyModel::default();
        let v = VoltageErrorModel::chandramoorthy14nm();
        let mut last = 0.0;
        for &p in &[1e-4, 1e-3, 1e-2, 0.05, 0.1] {
            let s = e.saving_at_rate(p, &v);
            assert!(s > last, "tolerating more errors must save more energy");
            last = s;
        }
    }

    #[test]
    fn twenty_percent_saving_around_p_between_01_and_1_percent() {
        // Fig. 2's headline: <1% accuracy loss at ~20% energy saving.
        let e = EnergyModel::default();
        let v = VoltageErrorModel::chandramoorthy14nm();
        let s_low = e.saving_at_rate(0.001, &v);
        let s_high = e.saving_at_rate(0.01, &v);
        assert!(s_low < 0.20 + 0.08 && s_high > 0.20, "{s_low} .. {s_high}");
    }

    #[test]
    #[should_panic(expected = "leakage fraction")]
    fn rejects_invalid_leakage() {
        let _ = EnergyModel::new(1.0);
    }
}
